//! Morsel-driven intra-atom parallel kernels with deterministic merge.
//!
//! PR 1 parallelized *across* task atoms (wave scheduling); this module
//! parallelizes *inside* one atom: the input batch is split into fixed-size
//! **morsels** that run on scoped worker threads, and the per-morsel results
//! are merged back in a canonical order. Every kernel here is a drop-in
//! twin of a sequential kernel in [`super`] (the parent `kernels` module)
//! and produces **byte-identical output at any thread count**:
//!
//! - `map` / `flat_map` / `filter` / `project` are embarrassingly parallel:
//!   morsels are processed independently and concatenated in morsel order,
//!   which is input order.
//! - `hash_group` and `reduce_by_key` run on the vectorized hash engine
//!   ([`super::hash`]): the local phase per contiguous chunk hashes keys
//!   once, assigns dense slots through an open-addressing table, and emits
//!   its groups *scattered by radix bucket* (key-sorted within each
//!   bucket). The merge phase then folds **per radix bucket** across
//!   chunks — a key lives wholly in one bucket, so the 64 bucket folds are
//!   independent and run on worker threads, while each fold still walks
//!   chunks left-to-right so group members (and reduce application order)
//!   follow input order — exactly the sequential kernels' contract. A
//!   final key sort over the folded groups erases bucket order from the
//!   output. `reduce_by_key` merges chunk accumulators with the reduce UDF
//!   itself, relying on the associativity contract
//!   [`crate::udf::ReduceUdf`] already demands for partitioned platforms.
//! - `hash_join` uses the same engine for a radix-partitioned build
//!   (per-chunk group indexes scattered by bucket, folded per bucket in
//!   chunk order so each key's match list is in right-input order) and a
//!   morsel-parallel probe — each probe key hashed once, routed to its
//!   bucket's table — concatenated in left order.
//! - `sort_group` keeps the ordered two-phase merge (its local phase is a
//!   comparison sort, not a hash build).
//! - `sort_merge_join` and `sort` sort contiguous chunks in parallel and
//!   merge them stably (ties resolve to the lower chunk, i.e. earlier
//!   input), reproducing the sequential stable sort byte for byte.
//!
//! No `unsafe`: workers are `std::thread::scope` threads pulling morsel
//! indices off an atomic cursor and parking results in per-slot mutexed
//! cells — the same pattern the wave executor uses.

use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::data::{Chunk, Record, Value};
use crate::error::Result;
use crate::fault::CancelToken;
use crate::physical::PipelineStage;
use crate::udf::{FilterUdf, FlatMapUdf, KeyUdf, MapUdf, ReduceUdf};

use super::{chunked, hash};

thread_local! {
    /// The ambient morsel-loop cancellation scope. Kernels have no
    /// `ExecutionContext` parameter (and adding one would break every
    /// direct caller), so the executor installs the job's token here
    /// around each atom invocation; [`run_ranges`] picks it up at entry
    /// and checks it before every morsel pull.
    static CANCEL_SCOPE: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` as the ambient morsel-cancellation scope while `f`
/// runs on this thread (see `DESIGN.md` §14). Nested scopes restore the
/// previous token on exit, panic included. Once `token` fires, every
/// parallel kernel invoked under the scope degenerates to empty-range
/// morsels — its (truncated) output must be discarded by a caller-level
/// [`CancelToken::check`], which the interpreter performs per operator.
pub fn with_cancel_scope<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CANCEL_SCOPE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CANCEL_SCOPE.with(|c| c.borrow_mut().replace(token.clone())));
    f()
}

/// The token installed by [`with_cancel_scope`] on this thread, if any.
fn ambient_cancel() -> Option<CancelToken> {
    CANCEL_SCOPE.with(|c| c.borrow().clone())
}

/// Checkpoint against the ambient scope: `Err(Cancelled)` once the
/// installed token has fired.
fn ambient_check() -> Result<()> {
    match ambient_cancel() {
        Some(token) => token.check(),
        None => Ok(()),
    }
}

/// Environment variable overriding the default kernel thread count.
pub const KERNEL_THREADS_ENV: &str = "RHEEM_KERNEL_THREADS";

/// Per-context degree-of-parallelism knob for intra-atom kernels.
///
/// Lives on [`crate::platform::ExecutionContext`] next to the storage
/// service, and is documented alongside
/// [`crate::RheemContext::with_max_parallel_atoms`]: the wave scheduler
/// divides the kernel thread budget by the number of concurrently running
/// atoms (see [`KernelParallelism::share`]), so `atoms × kernel-threads`
/// never oversubscribes the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParallelism {
    /// Maximum worker threads one kernel invocation may use.
    pub threads: usize,
    /// Records per morsel for embarrassingly-parallel kernels.
    pub morsel_size: usize,
    /// Inputs smaller than this stay on the sequential kernels.
    pub min_rows: usize,
}

impl Default for KernelParallelism {
    fn default() -> Self {
        KernelParallelism::from_env()
    }
}

impl KernelParallelism {
    /// Default morsel size (records per parallel work unit).
    pub const DEFAULT_MORSEL_SIZE: usize = 4096;
    /// Default sequential-fallback threshold.
    pub const DEFAULT_MIN_ROWS: usize = 4096;

    /// A knob that always uses the sequential kernels.
    pub fn sequential() -> Self {
        KernelParallelism {
            threads: 1,
            morsel_size: Self::DEFAULT_MORSEL_SIZE,
            min_rows: Self::DEFAULT_MIN_ROWS,
        }
    }

    /// The ambient default: thread count from [`KERNEL_THREADS_ENV`] when
    /// set (and parseable), otherwise the host's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(KERNEL_THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        KernelParallelism {
            threads: threads.max(1),
            morsel_size: Self::DEFAULT_MORSEL_SIZE,
            min_rows: Self::DEFAULT_MIN_ROWS,
        }
    }

    /// Set the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the morsel size (min 1).
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// Set the sequential-fallback threshold.
    pub fn with_min_rows(mut self, min_rows: usize) -> Self {
        self.min_rows = min_rows;
        self
    }

    /// Divide the thread budget among `workers` concurrently running
    /// atoms, so wave-parallel scheduling and intra-atom parallelism
    /// share one budget instead of multiplying.
    pub fn share(&self, workers: usize) -> Self {
        KernelParallelism {
            threads: (self.threads / workers.max(1)).max(1),
            ..*self
        }
    }

    /// Worker threads a kernel invocation over `len` records may use:
    /// 1 (sequential) below `min_rows`, otherwise capped by the number of
    /// morsels so tiny inputs never spawn idle threads.
    pub fn effective_threads(&self, len: usize) -> usize {
        if self.threads <= 1 || len < self.min_rows.max(1) {
            return 1;
        }
        self.threads.min(len.div_ceil(self.morsel_size.max(1)))
    }

    /// Morsel count for an embarrassingly-parallel kernel over `len`
    /// records (1 when the sequential path runs).
    pub fn morsels(&self, len: usize) -> u64 {
        if self.effective_threads(len) <= 1 {
            1
        } else {
            len.div_ceil(self.morsel_size.max(1)) as u64
        }
    }

    /// Parallel work units for a two-phase (chunked) kernel over `len`
    /// records (1 when the sequential path runs).
    pub fn chunks(&self, len: usize) -> u64 {
        self.effective_threads(len) as u64
    }

    /// Fixed-size morsel ranges covering `0..len`.
    fn morsel_ranges(&self, len: usize) -> Vec<Range<usize>> {
        let size = self.morsel_size.max(1);
        (0..len.div_ceil(size))
            .map(|i| i * size..((i + 1) * size).min(len))
            .collect()
    }

    /// `parts` balanced contiguous ranges covering `0..len` (first
    /// `len % parts` ranges get one extra record, like partition chunking).
    fn chunk_ranges(&self, len: usize, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.max(1).min(len.max(1));
        let base = len / parts;
        let extra = len % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let size = base + usize::from(i < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }
}

/// Run `f` over each range on up to `threads` scoped worker threads,
/// returning results in range order. Ranges are handed out through an
/// atomic cursor; each result lands in its own mutexed slot, so output
/// order is independent of completion order.
///
/// The ambient cancel scope is checked before every range is processed:
/// once the token fires, remaining ranges collapse to their empty prefix
/// (`start..start`), so every slot is still filled with a type-correct
/// value at near-zero cost and the kernel returns within one morsel of
/// the cancel point. The truncated result is garbage by construction —
/// callers surface [`crate::RheemError::Cancelled`] before consuming it.
fn run_ranges<T, F>(ranges: &[Range<usize>], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let n = ranges.len();
    let cancel = ambient_cancel();
    let pick = |r: &Range<usize>| {
        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            r.start..r.start
        } else {
            r.clone()
        }
    };
    if threads <= 1 || n <= 1 {
        return ranges.iter().map(|r| f(pick(r))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let out = f(pick(&ranges[i]));
                *cells[i].lock() = Some(out);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| c.into_inner().expect("every morsel slot is filled"))
        .collect()
}

/// Concatenate per-morsel outputs in morsel order.
fn concat(parts: Vec<Vec<Record>>) -> Vec<Record> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Morsel-parallel [`super::map`].
///
/// The sequential fast path is taken only when no cancel scope is
/// installed: under a scope even a one-thread invocation (thread-budget
/// sharing can drive `threads` to 1) runs morsel by morsel through
/// `run_ranges`, so a fired token still truncates within one morsel.
/// Morsel concatenation is byte-identical to the sequential kernel either
/// way. The same applies to the other UDF-bearing kernels below.
pub fn map(records: &[Record], udf: &MapUdf, p: &KernelParallelism) -> Vec<Record> {
    let t = p.effective_threads(records.len());
    if t <= 1 && ambient_cancel().is_none() {
        return super::map(records, udf);
    }
    concat(run_ranges(&p.morsel_ranges(records.len()), t, |r| {
        super::map(&records[r], udf)
    }))
}

/// Morsel-parallel [`super::flat_map`].
pub fn flat_map(records: &[Record], udf: &FlatMapUdf, p: &KernelParallelism) -> Vec<Record> {
    let t = p.effective_threads(records.len());
    if t <= 1 && ambient_cancel().is_none() {
        return super::flat_map(records, udf);
    }
    concat(run_ranges(&p.morsel_ranges(records.len()), t, |r| {
        super::flat_map(&records[r], udf)
    }))
}

/// Morsel-parallel [`super::filter`].
pub fn filter(records: &[Record], udf: &FilterUdf, p: &KernelParallelism) -> Vec<Record> {
    let t = p.effective_threads(records.len());
    if t <= 1 && ambient_cancel().is_none() {
        return super::filter(records, udf);
    }
    concat(run_ranges(&p.morsel_ranges(records.len()), t, |r| {
        super::filter(&records[r], udf)
    }))
}

/// Morsel-parallel [`super::project`]. Morsel results are inspected in
/// morsel order, so the reported error (if any) is the sequential one.
pub fn project(
    records: &[Record],
    indices: &[usize],
    p: &KernelParallelism,
) -> Result<Vec<Record>> {
    let t = p.effective_threads(records.len());
    if t <= 1 && ambient_cancel().is_none() {
        return super::project(records, indices);
    }
    let parts = run_ranges(&p.morsel_ranges(records.len()), t, |r| {
        super::project(&records[r], indices)
    });
    ambient_check()?;
    let mut out = Vec::with_capacity(records.len());
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// Merge two key-sorted group lists; equal keys concatenate members with
/// `a`'s first (chunk order = input order).
fn merge_groups(
    a: Vec<(Value, Vec<Record>)>,
    b: Vec<(Value, Vec<Record>)>,
) -> Vec<(Value, Vec<Record>)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut bi = b.into_iter().peekable();
    for (ka, mut va) in a {
        while bi.peek().is_some_and(|(kb, _)| *kb < ka) {
            out.push(bi.next().expect("peeked"));
        }
        if bi.peek().is_some_and(|(kb, _)| *kb == ka) {
            va.extend(bi.next().expect("peeked").1);
        }
        out.push((ka, va));
    }
    out.extend(bi);
    out
}

/// Two-phase parallel grouping: run `local` (a sequential grouping kernel
/// with the canonical key-sorted output contract) per contiguous chunk,
/// then merge the chunk results in order.
fn group_two_phase(
    records: &[Record],
    key: &KeyUdf,
    p: &KernelParallelism,
    t: usize,
    local: impl Fn(&[Record], &KeyUdf) -> Vec<(Value, Vec<Record>)> + Sync,
) -> Vec<(Value, Vec<Record>)> {
    let locals = run_ranges(&p.chunk_ranges(records.len(), t), t, |r| {
        local(&records[r], key)
    });
    locals.into_iter().reduce(merge_groups).unwrap_or_default()
}

/// One chunk's keys hashed through the engine into dense slots: the
/// materialized key column, its hash column (computed once), and the slot
/// assignment.
fn keyed_slots(records: &[Record], key: &KeyUdf) -> (Vec<Value>, Vec<u64>, hash::GroupIndex) {
    let keys: Vec<Value> = records.iter().map(|r| (key.f)(r)).collect();
    let hashes: Vec<u64> = keys.iter().map(hash::hash_value).collect();
    let index = hash::build_index(&hashes, |a, b| keys[a as usize] == keys[b as usize]);
    (keys, hashes, index)
}

/// Fold each radix bucket's chunk-ordered parts on up to `threads` worker
/// threads. A key lives wholly in one bucket (its bucket is a function of
/// its hash), so the [`hash::RADIX_BUCKETS`] folds are independent and
/// parallelize freely; each fold receives its bucket's parts in chunk
/// order, preserving the left-to-right merge contract. A fired cancel
/// token collapses a bucket to `U::default()` — type-correct garbage the
/// caller-level cancellation check discards.
fn fold_buckets<T, U>(
    by_bucket: Vec<Vec<T>>,
    threads: usize,
    fold: impl Fn(Vec<T>) -> U + Sync,
) -> Vec<U>
where
    T: Send,
    U: Send + Default,
{
    let cells: Vec<Mutex<Option<Vec<T>>>> = by_bucket
        .into_iter()
        .map(|parts| Mutex::new(Some(parts)))
        .collect();
    let ranges: Vec<Range<usize>> = (0..cells.len()).map(|b| b..b + 1).collect();
    run_ranges(&ranges, threads, |r| {
        if r.is_empty() {
            return U::default();
        }
        let parts = cells[r.start]
            .lock()
            .take()
            .expect("each bucket folds once");
        fold(parts)
    })
}

/// Transpose per-chunk bucket scatters into per-bucket chunk-ordered part
/// lists (empty parts dropped — they are no-op merges).
fn by_bucket<T>(locals: Vec<Vec<Vec<T>>>) -> Vec<Vec<Vec<T>>> {
    let mut out: Vec<Vec<Vec<T>>> = std::iter::repeat_with(Vec::new)
        .take(hash::RADIX_BUCKETS)
        .collect();
    for chunk in locals {
        for (b, part) in chunk.into_iter().enumerate() {
            if !part.is_empty() {
                out[b].push(part);
            }
        }
    }
    out
}

/// Local grouping phase: engine slots over one chunk, groups emitted
/// scattered by radix bucket and key-sorted within each bucket. Group
/// member `Vec`s are exactly pre-sized and filled in input order.
fn local_group_buckets(records: &[Record], key: &KeyUdf) -> Vec<Vec<(Value, Vec<Record>)>> {
    let (keys, hashes, index) = keyed_slots(records, key);
    let n = index.n_groups();
    let mut counts = vec![0usize; n];
    for &s in &index.slot_of_row {
        counts[s as usize] += 1;
    }
    let mut groups: Vec<(Value, Vec<Record>)> = index
        .first_row
        .iter()
        .zip(&counts)
        .map(|(&r, &c)| (keys[r as usize].clone(), Vec::with_capacity(c)))
        .collect();
    for (row, &s) in index.slot_of_row.iter().enumerate() {
        groups[s as usize].1.push(records[row].clone());
    }
    let mut buckets: Vec<Vec<(Value, Vec<Record>)>> = std::iter::repeat_with(Vec::new)
        .take(hash::RADIX_BUCKETS)
        .collect();
    for (s, g) in groups.into_iter().enumerate() {
        buckets[hash::radix_bucket(hashes[index.first_row[s] as usize])].push(g);
    }
    for b in &mut buckets {
        b.sort_by(|x, y| x.0.cmp(&y.0));
    }
    buckets
}

/// Morsel-parallel [`super::hash_group`]: engine-hashed local grouping per
/// chunk, per-radix-bucket merge folds, and a final key sort. Byte-
/// identical to the sequential kernel (and to [`sort_group`]: both share
/// one output contract — keys ascending, members in input order).
pub fn hash_group(
    records: &[Record],
    key: &KeyUdf,
    p: &KernelParallelism,
) -> Vec<(Value, Vec<Record>)> {
    let t = p.effective_threads(records.len());
    if t <= 1 {
        return super::hash_group(records, key);
    }
    let locals = run_ranges(&p.chunk_ranges(records.len(), t), t, |r| {
        local_group_buckets(&records[r], key)
    });
    let folded = fold_buckets(by_bucket(locals), t, |parts| {
        parts.into_iter().reduce(merge_groups).unwrap_or_default()
    });
    let mut out: Vec<(Value, Vec<Record>)> = folded.into_iter().flatten().collect();
    // Keys are distinct across buckets, so this sort fully determines the
    // output order regardless of bucket or thread scheduling.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Morsel-parallel [`super::sort_group`]: per-chunk sort grouping + merge.
pub fn sort_group(
    records: &[Record],
    key: &KeyUdf,
    p: &KernelParallelism,
) -> Vec<(Value, Vec<Record>)> {
    let t = p.effective_threads(records.len());
    if t <= 1 {
        return super::sort_group(records, key);
    }
    group_two_phase(records, key, p, t, super::sort_group)
}

/// Local reduce phase: engine slots over one chunk, accumulators folded in
/// input order, emitted scattered by radix bucket and key-sorted within
/// each bucket.
fn local_reduce_buckets(
    records: &[Record],
    key: &KeyUdf,
    reduce: &ReduceUdf,
) -> Vec<Vec<(Value, Record)>> {
    let (keys, hashes, index) = keyed_slots(records, key);
    let mut accs: Vec<Option<Record>> = vec![None; index.n_groups()];
    for (row, &s) in index.slot_of_row.iter().enumerate() {
        match &mut accs[s as usize] {
            slot @ None => *slot = Some(records[row].clone()),
            Some(a) => *a = (reduce.f)(std::mem::take(a), &records[row]),
        }
    }
    let mut buckets: Vec<Vec<(Value, Record)>> = std::iter::repeat_with(Vec::new)
        .take(hash::RADIX_BUCKETS)
        .collect();
    for (s, acc) in accs.into_iter().enumerate() {
        let first = index.first_row[s] as usize;
        buckets[hash::radix_bucket(hashes[first])]
            .push((keys[first].clone(), acc.expect("every slot has rows")));
    }
    for b in &mut buckets {
        b.sort_by(|x, y| x.0.cmp(&y.0));
    }
    buckets
}

/// Merge two key-sorted accumulator lists, combining equal keys with the
/// reduce UDF (`a` is the earlier chunk, so it is the left operand).
fn merge_reduced(
    a: Vec<(Value, Record)>,
    b: Vec<(Value, Record)>,
    reduce: &ReduceUdf,
) -> Vec<(Value, Record)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut bi = b.into_iter().peekable();
    for (ka, mut va) in a {
        while bi.peek().is_some_and(|(kb, _)| *kb < ka) {
            out.push(bi.next().expect("peeked"));
        }
        if bi.peek().is_some_and(|(kb, _)| *kb == ka) {
            va = (reduce.f)(va, &bi.next().expect("peeked").1);
        }
        out.push((ka, va));
    }
    out.extend(bi);
    out
}

/// Two-phase parallel [`super::reduce_by_key`]: engine-slotted local
/// accumulation per chunk, then per-radix-bucket merge folds combining
/// chunk accumulators with the (associative, per the
/// [`crate::udf::ReduceUdf`] contract) reduce UDF, and a final key sort.
pub fn reduce_by_key(
    records: &[Record],
    key: &KeyUdf,
    reduce: &ReduceUdf,
    p: &KernelParallelism,
) -> Vec<Record> {
    let t = p.effective_threads(records.len());
    if t <= 1 {
        return super::reduce_by_key(records, key, reduce);
    }
    let locals = run_ranges(&p.chunk_ranges(records.len(), t), t, |r| {
        local_reduce_buckets(&records[r], key, reduce)
    });
    let folded = fold_buckets(by_bucket(locals), t, |parts| {
        parts
            .into_iter()
            .reduce(|a, b| merge_reduced(a, b, reduce))
            .unwrap_or_default()
    });
    let mut keyed: Vec<(Value, Record)> = folded.into_iter().flatten().collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, r)| r).collect()
}

/// One radix bucket of a join build: an engine slot table over the
/// bucket's distinct keys plus, per key, its match list in right-input
/// order.
#[derive(Default)]
struct BuildBucket<'a> {
    table: hash::SlotTable,
    keys: Vec<Value>,
    matches: Vec<Vec<&'a Record>>,
}

/// Local join-build phase: engine slots over one right-side chunk, one
/// `(hash, key, members)` entry per distinct key, scattered by radix
/// bucket. Member lists are in input order (CSR scatter).
fn local_build_buckets<'a>(
    records: &'a [Record],
    key: &KeyUdf,
) -> Vec<Vec<(u64, Value, Vec<&'a Record>)>> {
    let (keys, hashes, index) = keyed_slots(records, key);
    let (offsets, rows) = hash::member_lists(&index.slot_of_row, index.n_groups());
    let mut buckets: Vec<Vec<(u64, Value, Vec<&Record>)>> = std::iter::repeat_with(Vec::new)
        .take(hash::RADIX_BUCKETS)
        .collect();
    for s in 0..index.n_groups() {
        let first = index.first_row[s] as usize;
        let members: Vec<&Record> = rows[offsets[s]..offsets[s + 1]]
            .iter()
            .map(|&r| &records[r as usize])
            .collect();
        buckets[hash::radix_bucket(hashes[first])].push((
            hashes[first],
            keys[first].clone(),
            members,
        ));
    }
    buckets
}

/// Radix-partitioned build + parallel hash-memoized probe
/// [`super::hash_join`].
///
/// Build: each chunk of the right input assigns engine slots and scatters
/// its per-key match lists by radix bucket; each bucket folds its chunks
/// in order into one pre-sized `BuildBucket`, so every key's match list
/// is in right-input order (the sequential build order) and the 64 folds
/// run on worker threads. Probe: the left input is probed per morsel —
/// each probe key hashed once, routed to its bucket's table — and
/// concatenated in left order.
pub fn hash_join(
    left: &[Record],
    right: &[Record],
    left_key: &KeyUdf,
    right_key: &KeyUdf,
    p: &KernelParallelism,
) -> Vec<Record> {
    let t = p.effective_threads(left.len().max(right.len()));
    if t <= 1 {
        return super::hash_join(left, right, left_key, right_key);
    }
    let bt = p.effective_threads(right.len());
    let locals = run_ranges(&p.chunk_ranges(right.len(), bt), bt, |rng| {
        local_build_buckets(&right[rng], right_key)
    });
    let buckets: Vec<BuildBucket> = fold_buckets(by_bucket(locals), t, |parts| {
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut table = hash::SlotTable::with_capacity(total);
        let mut keys: Vec<Value> = Vec::with_capacity(total);
        let mut matches: Vec<Vec<&Record>> = Vec::with_capacity(total);
        for part in parts {
            for (h, k, members) in part {
                let (slot, inserted) =
                    table.find_or_insert(h, |s| keys[s as usize] == k, keys.len() as u32);
                if inserted {
                    keys.push(k);
                    matches.push(members);
                } else {
                    matches[slot as usize].extend(members);
                }
            }
        }
        BuildBucket {
            table,
            keys,
            matches,
        }
    });
    let pt = p.effective_threads(left.len()).max(1);
    concat(run_ranges(&p.morsel_ranges(left.len()), pt, |rng| {
        let mut out = Vec::new();
        for l in &left[rng] {
            let k = (left_key.f)(l);
            let h = hash::hash_value(&k);
            let b = &buckets[hash::radix_bucket(h)];
            if let Some(s) = b.table.find(h, |s| b.keys[s as usize] == k) {
                for r in &b.matches[s as usize] {
                    out.push(l.concat(r));
                }
            }
        }
        out
    }))
}

/// Stable merge of two key-sorted keyed slices under `cmp`; ties take from
/// `a` first (the earlier chunk), preserving input order like the
/// sequential stable sort.
fn merge_keyed<'a>(
    a: Vec<(Value, &'a Record)>,
    b: Vec<(Value, &'a Record)>,
    cmp: &(dyn Fn(&Value, &Value) -> std::cmp::Ordering + Sync),
) -> Vec<(Value, &'a Record)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some((ka, _)), Some((kb, _))) => {
                if cmp(ka, kb) == std::cmp::Ordering::Greater {
                    out.push(bi.next().expect("peeked"));
                } else {
                    out.push(ai.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ai.next().expect("peeked")),
            (None, Some(_)) => out.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// Parallel partition sort + k-way merge: extract keys, sort contiguous
/// chunks on worker threads, and fold-merge in chunk order (stable).
fn sorted_keyed<'a>(
    records: &'a [Record],
    key: &KeyUdf,
    p: &KernelParallelism,
    cmp: &(dyn Fn(&Value, &Value) -> std::cmp::Ordering + Sync),
) -> Vec<(Value, &'a Record)> {
    let t = p.effective_threads(records.len());
    let chunks = run_ranges(&p.chunk_ranges(records.len(), t), t, |rng| {
        let mut keyed: Vec<(Value, &Record)> =
            records[rng].iter().map(|r| ((key.f)(r), r)).collect();
        keyed.sort_by(|a, b| cmp(&a.0, &b.0));
        keyed
    });
    chunks
        .into_iter()
        .reduce(|a, b| merge_keyed(a, b, cmp))
        .unwrap_or_default()
}

/// Parallel [`super::sort_merge_join`]: both sides get a parallel partition
/// sort + stable merge, the match rectangles are located with a sequential
/// scan (comparisons only), and the clone-heavy rectangle emission runs on
/// morsels balanced by output size.
pub fn sort_merge_join(
    left: &[Record],
    right: &[Record],
    left_key: &KeyUdf,
    right_key: &KeyUdf,
    p: &KernelParallelism,
) -> Vec<Record> {
    let t = p.effective_threads(left.len().max(right.len()));
    if t <= 1 {
        return super::sort_merge_join(left, right, left_key, right_key);
    }
    let asc: &(dyn Fn(&Value, &Value) -> std::cmp::Ordering + Sync) = &|a, b| a.cmp(b);
    let l = sorted_keyed(left, left_key, p, asc);
    let r = sorted_keyed(right, right_key, p, asc);

    // Locate match rectangles (key-equal runs on both sides).
    let mut rects: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = &l[i].0;
                let i_end = l[i..].iter().take_while(|(k, _)| k == key).count() + i;
                let j_end = r[j..].iter().take_while(|(k, _)| k == key).count() + j;
                rects.push((i..i_end, j..j_end));
                i = i_end;
                j = j_end;
            }
        }
    }

    // Emit rectangles in parallel, grouped into contiguous runs of
    // roughly equal output size so one hot key does not serialize the
    // wave. Rectangle order is preserved, so output order is sequential.
    let total: usize = rects.iter().map(|(a, b)| a.len() * b.len()).sum();
    let target = total.div_ceil(t).max(1);
    let mut groups: Vec<Range<usize>> = Vec::new();
    let mut start = 0;
    let mut size = 0;
    for (idx, (a, b)) in rects.iter().enumerate() {
        size += a.len() * b.len();
        if size >= target {
            groups.push(start..idx + 1);
            start = idx + 1;
            size = 0;
        }
    }
    if start < rects.len() {
        groups.push(start..rects.len());
    }
    concat(run_ranges(&groups, t, |g| {
        let mut out = Vec::new();
        for (li, ri) in &rects[g] {
            for (_, lrec) in &l[li.clone()] {
                for (_, rrec) in &r[ri.clone()] {
                    out.push(lrec.concat(rrec));
                }
            }
        }
        out
    }))
}

/// Morsel-parallel fused-pipeline runner for
/// [`crate::physical::PhysicalOp::ChunkPipeline`].
///
/// The record batch is converted to a [`Chunk`] **once**; each morsel is a
/// zero-copy [`Chunk::slice`] view that runs the whole stage chain
/// ([`chunked::run_stages`]) before the per-morsel results are converted
/// back and concatenated in morsel (= input) order. Every stage is
/// order-preserving within a morsel, so the output is byte-identical to
/// the sequential row-at-a-time reference
/// ([`chunked::run_stages_rows`]) at any thread count.
///
/// Ragged batches (records of differing widths) cannot be put in columnar
/// form and fall back to the row-at-a-time reference semantics.
pub fn run_pipeline(
    records: &[Record],
    stages: &[PipelineStage],
    p: &KernelParallelism,
) -> Result<Vec<Record>> {
    if records.is_empty() {
        return Ok(Vec::new());
    }
    ambient_check()?;
    let Some(chunk) = Chunk::from_records(records) else {
        return chunked::run_stages_rows(records, stages);
    };
    let t = p.effective_threads(records.len());
    if t <= 1 && ambient_cancel().is_none() {
        return Ok(chunked::run_stages(chunk, stages)?.to_records());
    }
    let parts = run_ranges(&p.morsel_ranges(records.len()), t, |r| {
        chunked::run_stages(chunk.slice(r.start, r.len()), stages)
    });
    ambient_check()?;
    let mut out = Vec::with_capacity(records.len());
    for part in parts {
        out.extend(part?.to_records());
    }
    Ok(out)
}

/// Parallel [`super::sort`]: partition sort + stable k-way merge, then a
/// single materialization pass.
pub fn sort(
    records: &[Record],
    key: &KeyUdf,
    descending: bool,
    p: &KernelParallelism,
) -> Vec<Record> {
    let t = p.effective_threads(records.len());
    if t <= 1 {
        return super::sort(records, key, descending);
    }
    let cmp: &(dyn Fn(&Value, &Value) -> std::cmp::Ordering + Sync) = if descending {
        &|a, b| b.cmp(a)
    } else {
        &|a, b| a.cmp(b)
    };
    sorted_keyed(records, key, p, cmp)
        .into_iter()
        .map(|(_, r)| r.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rec;

    fn par(threads: usize, morsel: usize) -> KernelParallelism {
        KernelParallelism {
            threads,
            morsel_size: morsel,
            min_rows: 0,
        }
    }

    fn data(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec![i % 7, i]).collect()
    }

    #[test]
    fn small_inputs_stay_sequential() {
        let p = KernelParallelism {
            threads: 8,
            morsel_size: 4,
            min_rows: 100,
        };
        assert_eq!(p.effective_threads(99), 1);
        assert_eq!(p.morsels(99), 1);
        assert!(p.effective_threads(100) > 1);
    }

    #[test]
    fn share_divides_the_thread_budget() {
        let p = par(8, 64);
        assert_eq!(p.share(4).threads, 2);
        assert_eq!(p.share(16).threads, 1);
        assert_eq!(p.share(0).threads, 8);
    }

    #[test]
    fn morsel_kernels_match_sequential() {
        let d = data(1000);
        let p = par(4, 37);
        let m = MapUdf::new("sq", |r| rec![r.int(1).unwrap() * r.int(1).unwrap()]);
        assert_eq!(map(&d, &m, &p), super::super::map(&d, &m));
        let f = FilterUdf::new("odd", |r| r.int(1).unwrap() % 2 == 1);
        assert_eq!(filter(&d, &f, &p), super::super::filter(&d, &f));
        let fm = FlatMapUdf::new("dup", |r| vec![r.clone(), r.clone()]);
        assert_eq!(flat_map(&d, &fm, &p), super::super::flat_map(&d, &fm));
        assert_eq!(
            project(&d, &[1], &p).unwrap(),
            super::super::project(&d, &[1]).unwrap()
        );
        assert!(project(&d, &[9], &p).is_err());
    }

    #[test]
    fn group_and_reduce_match_sequential() {
        let d = data(1003);
        let p = par(7, 11);
        let k = KeyUdf::field(0);
        assert_eq!(sort_group(&d, &k, &p), super::super::sort_group(&d, &k));
        assert_eq!(hash_group(&d, &k, &p), super::super::hash_group(&d, &k));
        let sum = ReduceUdf::new("sum", |a, b| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + b.int(1).unwrap()]
        });
        assert_eq!(
            reduce_by_key(&d, &k, &sum, &p),
            super::super::reduce_by_key(&d, &k, &sum)
        );
    }

    #[test]
    fn joins_and_sort_match_sequential() {
        let l = data(500);
        let r = data(311);
        let p = par(3, 17);
        let k = KeyUdf::field(0);
        assert_eq!(
            hash_join(&l, &r, &k, &k, &p),
            super::super::hash_join(&l, &r, &k, &k)
        );
        assert_eq!(
            sort_merge_join(&l, &r, &k, &k, &p),
            super::super::sort_merge_join(&l, &r, &k, &k)
        );
        assert_eq!(sort(&l, &k, false, &p), super::super::sort(&l, &k, false));
        assert_eq!(sort(&l, &k, true, &p), super::super::sort(&l, &k, true));
    }

    #[test]
    fn pipeline_matches_row_reference_at_any_thread_count() {
        use crate::expr::Expr;
        use crate::physical::{PipelineStage, StageKind};
        use std::sync::Arc;
        let d = data(1000);
        let stages = vec![
            PipelineStage {
                name: "f".into(),
                kind: StageKind::Filter {
                    expr: Arc::new(Expr::field(0).lt(Expr::lit(5i64))),
                    selectivity: 5.0 / 7.0,
                },
            },
            PipelineStage {
                name: "m".into(),
                kind: StageKind::Map {
                    exprs: vec![Expr::field(1).add(Expr::field(0)), Expr::field(0)].into(),
                },
            },
            PipelineStage {
                name: "p".into(),
                kind: StageKind::Project {
                    indices: vec![0].into(),
                },
            },
        ];
        let reference = chunked::run_stages_rows(&d, &stages).unwrap();
        assert!(!reference.is_empty());
        for p in [par(1, 64), par(4, 37), par(8, 16)] {
            assert_eq!(run_pipeline(&d, &stages, &p).unwrap(), reference);
        }
        assert!(run_pipeline(&[], &stages, &par(4, 16)).unwrap().is_empty());
        // Ragged input takes the row fallback instead of erroring.
        let ragged = vec![rec![1, 2], rec![3]];
        assert_eq!(
            run_pipeline(&ragged, &stages, &par(4, 1)).unwrap(),
            chunked::run_stages_rows(&ragged, &stages).unwrap()
        );
    }

    #[test]
    fn cancel_scope_stops_morsel_work_within_one_morsel() {
        use crate::error::CancelReason;
        use std::sync::atomic::AtomicUsize;

        // A pre-cancelled token: every morsel collapses to its empty
        // prefix, so the UDF never sees a record and run_pipeline errors.
        let d = data(1000);
        let token = CancelToken::new();
        token.cancel(CancelReason::Explicit);
        let touched = std::sync::Arc::new(AtomicUsize::new(0));
        let m = MapUdf::new("touch", {
            let touched = touched.clone();
            move |r| {
                touched.fetch_add(1, Ordering::SeqCst);
                r.clone()
            }
        });
        let out = with_cancel_scope(&token, || map(&d, &m, &par(4, 16)));
        assert!(out.is_empty(), "cancelled map produced {} rows", out.len());
        assert_eq!(touched.load(Ordering::SeqCst), 0);

        // Cancelling mid-run: a UDF that cancels at record 100 — every
        // later morsel is skipped, so well under the full input is mapped.
        let token = CancelToken::new();
        let seen = std::sync::Arc::new(AtomicUsize::new(0));
        let m = MapUdf::new("cancel-at-100", {
            let (token, seen) = (token.clone(), seen.clone());
            move |r| {
                if seen.fetch_add(1, Ordering::SeqCst) == 100 {
                    token.cancel(CancelReason::Explicit);
                }
                r.clone()
            }
        });
        let out = with_cancel_scope(&token, || map(&d, &m, &par(2, 16)));
        assert!(
            out.len() < d.len(),
            "cancellation did not truncate the morsel loop"
        );
        // Within one in-flight morsel per worker of the cancel point: the
        // two morsels running when the token fired finish, everything
        // after is empty (101 records seen + ≤ 2 × 16 completing).
        assert!(
            seen.load(Ordering::SeqCst) <= 160,
            "{}",
            seen.load(Ordering::SeqCst)
        );

        // Result-returning kernels surface the cancellation as an error.
        let token = CancelToken::new();
        token.cancel(CancelReason::DeadlineExceeded);
        let err = with_cancel_scope(&token, || project(&d, &[0], &par(4, 16))).unwrap_err();
        assert!(matches!(
            err,
            crate::RheemError::Cancelled {
                reason: CancelReason::DeadlineExceeded
            }
        ));

        // The scope restores the previous token on exit.
        assert!(ambient_cancel().is_none());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let p = par(8, 1);
        let k = KeyUdf::field(0);
        assert!(hash_group(&[], &k, &p).is_empty());
        assert!(sort_group(&[], &k, &p).is_empty());
        assert!(hash_join(&[], &[], &k, &k, &p).is_empty());
        assert!(sort_merge_join(&data(10), &[], &k, &k, &p).is_empty());
    }
}
