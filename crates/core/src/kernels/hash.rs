//! The vectorized hash engine: key hashing, radix partitioning, and
//! open-addressing slot tables shared by the keyed chunk kernels
//! ([`super::chunked`]) and the morsel layer ([`super::parallel`]).
//!
//! Three pieces compose (see `DESIGN.md` §15):
//!
//! 1. **Hashing** — a hand-rolled non-cryptographic hasher (FNV-1a over
//!    string bytes, a splitmix64-style finalizer over scalar payloads; no
//!    dependencies). The one invariant everything else rests on:
//!    *equal [`Value`]s hash equal*, where equality is `Value`'s
//!    variant-exact total order. `Float` hashes its `to_bits()`, exactly
//!    matching `total_cmp`-based equality: distinct NaN payloads are
//!    distinct values (and may hash apart), `-0.0` and `0.0` are distinct,
//!    and `Int(5)` never collides-by-contract with `Float(5.0)` because
//!    each variant folds in its own tag. The typed helpers ([`hash_i64`],
//!    [`hash_str`], ...) are the *same function* as [`hash_value`] on the
//!    corresponding variant, so a typed key lane and a materialized
//!    `Value` key always agree — which is what lets a dictionary-encoded
//!    string lane hash each distinct string once and join against an
//!    inline `Value::Str` probe.
//! 2. **Radix partitioning** — the top [`RADIX_BITS`] bits of each hash
//!    pick one of [`RADIX_BUCKETS`] buckets, so a large build splits into
//!    cache-sized sub-tables and parallel merges can fold per bucket. A
//!    key's bucket is a pure function of the key, and rows keep input
//!    order within a bucket, so partitioning can never change output
//!    bytes — only locality.
//! 3. **Slot tables** — power-of-two open-addressing tables
//!    ([`SlotTable`]) mapping hashes to dense `u32` group slots, pre-sized
//!    from input lengths and compared through caller-supplied closures so
//!    one table serves `i64` lanes, dict-code lanes, and generic `Value`
//!    keys without boxing.
//!
//! Determinism: hash values and bucket choices only ever decide *where a
//! key's state lives*, never what is emitted. Group membership comes from
//! key equality, member order from input-order scans of
//! [`GroupIndex::slot_of_row`], and output order from a final key sort —
//! so a different hash function, bucket count, or thread count yields
//! byte-identical results (the collision tests drive every key into one
//! bucket to prove it).

use crate::data::Value;

/// Radix bits taken from the top of each 64-bit hash.
pub const RADIX_BITS: u32 = 6;
/// Number of radix buckets (`2^RADIX_BITS`).
pub const RADIX_BUCKETS: usize = 1 << RADIX_BITS;

/// Inputs below this row count never take the partitioned path.
const RADIX_MIN_ROWS: usize = 1 << 16;
/// Sampled-distinct threshold above which a large input partitions.
const RADIX_MIN_DISTINCT: usize = 1024;
/// Rows probed by the cardinality sample that picks the path.
const SAMPLE_ROWS: usize = 4096;

// Per-variant seeds folded into the payload before mixing, so values of
// different variants live in unrelated hash families (variant-exact
// equality never needs cross-variant collisions resolved).
const TAG_NULL: u64 = 0x9ae1_6a3b_2f90_404f;
const TAG_BOOL: u64 = 0x3c79_ac49_2ba7_b653;
const TAG_INT: u64 = 0x1d8e_4e27_c47d_124f;
const TAG_FLOAT: u64 = 0x60be_e2be_e120_fc15;
const TAG_STR: u64 = 0xa3aa_c7cc_6b07_05d1;

/// splitmix64-style finalizer: full-avalanche mixing of one 64-bit word.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of `Value::Null`.
#[inline]
pub fn hash_null() -> u64 {
    mix(TAG_NULL)
}

/// Hash of `Value::Bool(b)`.
#[inline]
pub fn hash_bool(b: bool) -> u64 {
    mix(TAG_BOOL ^ u64::from(b))
}

/// Hash of `Value::Int(k)` — and of a typed `i64` key lane entry.
#[inline]
pub fn hash_i64(k: i64) -> u64 {
    mix(TAG_INT ^ k as u64)
}

/// Hash of `Value::Float(x)` — and of a typed `f64` key lane entry.
///
/// Hashes the raw bits, matching `Value` equality under `total_cmp`:
/// `-0.0`/`0.0` and distinct NaN payloads are *different* keys.
#[inline]
pub fn hash_f64(x: f64) -> u64 {
    mix(TAG_FLOAT ^ x.to_bits())
}

/// Hash of `Value::Str(s)` — and of a dictionary entry.
///
/// FNV-1a over the bytes, then finalized; content-addressed, so an
/// interned dictionary string and an inline `Arc<str>` with equal bytes
/// hash equal.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(TAG_STR ^ h)
}

/// Hash any [`Value`], consistent with `Value` equality: `a == b` implies
/// `hash_value(&a) == hash_value(&b)`, and each typed helper above equals
/// this function on the corresponding variant.
#[inline]
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => hash_null(),
        Value::Bool(b) => hash_bool(*b),
        Value::Int(k) => hash_i64(*k),
        Value::Float(x) => hash_f64(*x),
        Value::Str(s) => hash_str(s),
    }
}

/// The radix bucket of a hash: its top [`RADIX_BITS`] bits.
#[inline]
pub fn radix_bucket(hash: u64) -> usize {
    (hash >> (64 - RADIX_BITS)) as usize
}

/// An open-addressing hash table mapping 64-bit hashes to dense `u32`
/// slots, with linear probing over a power-of-two array.
///
/// The table stores no keys: callers resolve candidate slots through an
/// equality closure against their own key storage (an `i64` lane, a
/// dictionary code array, a `Vec<Value>`), so the table layout is one flat
/// `(hash, slot)` pair per entry regardless of key type.
#[derive(Debug)]
pub struct SlotTable {
    hashes: Vec<u64>,
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl Default for SlotTable {
    fn default() -> Self {
        SlotTable::with_capacity(0)
    }
}

impl SlotTable {
    /// A table pre-sized for about `n` distinct keys (load factor ≤ 1/2 at
    /// `n` inserts; grows past that, so `n` is a hint, not a cap).
    pub fn with_capacity(n: usize) -> SlotTable {
        let cap = (n.max(1) * 2).next_power_of_two().max(8);
        SlotTable {
            hashes: vec![0; cap],
            slots: vec![EMPTY; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no entries are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let cap = (self.mask + 1) * 2;
        let hashes = std::mem::replace(&mut self.hashes, vec![0; cap]);
        let slots = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.mask = cap - 1;
        for (h, s) in hashes.into_iter().zip(slots) {
            if s == EMPTY {
                continue;
            }
            let mut i = (h as usize) & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.hashes[i] = h;
            self.slots[i] = s;
        }
    }

    /// Find the slot whose entry matches `hash` and `is_same` (called with
    /// each candidate slot), or insert `new_slot` and return it. The bool
    /// is `true` iff an insert happened.
    #[inline]
    pub fn find_or_insert(
        &mut self,
        hash: u64,
        mut is_same: impl FnMut(u32) -> bool,
        new_slot: u32,
    ) -> (u32, bool) {
        if self.len * 2 > self.mask {
            self.grow();
        }
        let mut i = (hash as usize) & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                self.hashes[i] = hash;
                self.slots[i] = new_slot;
                self.len += 1;
                return (new_slot, true);
            }
            if self.hashes[i] == hash && is_same(s) {
                return (s, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Find the slot matching `hash` and `is_same` without inserting.
    #[inline]
    pub fn find(&self, hash: u64, mut is_same: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if self.hashes[i] == hash && is_same(s) {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// The result of hashing one key column into dense group slots: a slot id
/// per row plus, per slot, the first input row carrying that key. Retains
/// its tables so joins can probe it after the build.
#[derive(Debug)]
pub struct GroupIndex {
    tables: Vec<SlotTable>,
    partitioned: bool,
    /// Group slot of each input row.
    pub slot_of_row: Vec<u32>,
    /// First input row of each slot's key (slot-indexed).
    pub first_row: Vec<u32>,
}

impl GroupIndex {
    /// Number of distinct keys found.
    pub fn n_groups(&self) -> usize {
        self.first_row.len()
    }

    /// Probe for the slot of a key with hash `hash`; `is_same` receives
    /// candidate slots and compares the probe key against the build key at
    /// `first_row[slot]`.
    #[inline]
    pub fn lookup(&self, hash: u64, is_same: impl FnMut(u32) -> bool) -> Option<u32> {
        let b = if self.partitioned {
            radix_bucket(hash)
        } else {
            0
        };
        self.tables[b].find(hash, is_same)
    }

    /// Drop the probe tables, keeping only the grouping — for callers
    /// (grouping, reduction) that never look keys up again.
    pub fn into_groups(self) -> DenseGroups {
        DenseGroups {
            slot_of_row: self.slot_of_row,
            first_row: self.first_row,
        }
    }
}

/// The grouping a [`GroupIndex`] induces, without the probe tables: each
/// row's dense group slot and each slot's canonical first row. This is
/// all `hash_group` / `reduce_by_key` consume — and what the hash-free
/// direct-address builders below produce.
#[derive(Debug)]
pub struct DenseGroups {
    /// Group slot of each input row.
    pub slot_of_row: Vec<u32>,
    /// First input row of each slot's key (slot-indexed).
    pub first_row: Vec<u32>,
}

impl DenseGroups {
    /// Number of distinct keys found.
    pub fn n_groups(&self) -> usize {
        self.first_row.len()
    }
}

/// Largest `max - min + 1` range an integer lane may span and still take
/// the direct-address path (a `u32` table entry per possible key).
const DENSE_MAX_RANGE: i128 = 1 << 16;

/// Direct-address grouping for an integer key lane whose value range is
/// small: one table entry per possible key, no hashing, no collisions —
/// one pass after the min/max scan. Slots are assigned in first-encounter
/// order, exactly as [`build_index`] numbers them, so the two paths are
/// interchangeable for grouping. Returns `None` when the range exceeds
/// `DENSE_MAX_RANGE` (the caller falls back to the hash path).
pub fn dense_groups_i64(lane: &[i64]) -> Option<DenseGroups> {
    if lane.is_empty() {
        return Some(DenseGroups {
            slot_of_row: Vec::new(),
            first_row: Vec::new(),
        });
    }
    let (mut lo, mut hi) = (i64::MAX, i64::MIN);
    for &k in lane {
        lo = lo.min(k);
        hi = hi.max(k);
    }
    let range = i128::from(hi) - i128::from(lo) + 1;
    if range > DENSE_MAX_RANGE {
        return None;
    }
    let mut slot_of_key = vec![EMPTY; range as usize];
    let mut slot_of_row = vec![0u32; lane.len()];
    let mut first_row: Vec<u32> = Vec::new();
    for (row, &k) in lane.iter().enumerate() {
        let idx = (k - lo) as usize;
        let mut s = slot_of_key[idx];
        if s == EMPTY {
            s = first_row.len() as u32;
            slot_of_key[idx] = s;
            first_row.push(row as u32);
        }
        slot_of_row[row] = s;
    }
    Some(DenseGroups {
        slot_of_row,
        first_row,
    })
}

/// Direct-address grouping for a dictionary-code lane: codes are already
/// dense in `0..n_codes` (distinct code ⇔ distinct string), so the
/// dictionary *is* the perfect hash — no range check needed.
pub fn dense_groups_codes(codes: &[u32], n_codes: usize) -> DenseGroups {
    let mut slot_of_code = vec![EMPTY; n_codes];
    let mut slot_of_row = vec![0u32; codes.len()];
    let mut first_row: Vec<u32> = Vec::new();
    for (row, &c) in codes.iter().enumerate() {
        let mut s = slot_of_code[c as usize];
        if s == EMPTY {
            s = first_row.len() as u32;
            slot_of_code[c as usize] = s;
            first_row.push(row as u32);
        }
        slot_of_row[row] = s;
    }
    DenseGroups {
        slot_of_row,
        first_row,
    }
}

/// Distinct keys among the first [`SAMPLE_ROWS`] rows — the cheap
/// cardinality probe that picks direct vs. partitioned.
fn sample_distinct(hashes: &[u64], same_key: &mut impl FnMut(u32, u32) -> bool) -> usize {
    let n = hashes.len().min(SAMPLE_ROWS);
    let mut table = SlotTable::with_capacity(n);
    let mut first = Vec::new();
    for (row, &h) in hashes.iter().take(n).enumerate() {
        let row = row as u32;
        let (_, inserted) =
            table.find_or_insert(h, |s| same_key(first[s as usize], row), first.len() as u32);
        if inserted {
            first.push(row);
        }
    }
    first.len()
}

/// Assign every row a dense group slot by key.
///
/// `hashes[i]` must be the key hash of row `i`; `same_key(a, b)` decides
/// whether rows `a` and `b` carry equal keys (it is only called on rows
/// whose hashes collide). Large high-cardinality inputs take the radix-
/// partitioned path automatically; the choice affects locality only —
/// slot *numbering* differs between the paths, but the induced partition
/// of rows and each slot's `first_row` are identical, and every caller
/// orders output by key, not by slot.
pub fn build_index(hashes: &[u64], mut same_key: impl FnMut(u32, u32) -> bool) -> GroupIndex {
    let partitioned = hashes.len() >= RADIX_MIN_ROWS
        && sample_distinct(hashes, &mut same_key) > RADIX_MIN_DISTINCT;
    build_index_with(hashes, same_key, partitioned)
}

/// [`build_index`] with the partitioning decision forced — the test
/// surface for driving both paths over the same input.
pub fn build_index_with(
    hashes: &[u64],
    mut same_key: impl FnMut(u32, u32) -> bool,
    partitioned: bool,
) -> GroupIndex {
    let n = hashes.len();
    debug_assert!(u32::try_from(n).is_ok(), "chunk exceeds u32 rows");
    let mut slot_of_row = vec![0u32; n];
    let mut first_row: Vec<u32> = Vec::new();
    if !partitioned {
        let mut table = SlotTable::with_capacity(n.min(SAMPLE_ROWS * 2));
        for (row, &h) in hashes.iter().enumerate() {
            let row = row as u32;
            let (slot, inserted) = table.find_or_insert(
                h,
                |s| same_key(first_row[s as usize], row),
                first_row.len() as u32,
            );
            if inserted {
                first_row.push(row);
            }
            slot_of_row[row as usize] = slot;
        }
        return GroupIndex {
            tables: vec![table],
            partitioned: false,
            slot_of_row,
            first_row,
        };
    }
    // Stable counting sort of row ids by radix bucket: rows keep input
    // order within each bucket, so a key's first visit below is its first
    // input row.
    let mut counts = [0usize; RADIX_BUCKETS];
    for &h in hashes {
        counts[radix_bucket(h)] += 1;
    }
    let mut starts = [0usize; RADIX_BUCKETS];
    let mut acc = 0;
    for (b, &c) in counts.iter().enumerate() {
        starts[b] = acc;
        acc += c;
    }
    let mut rows_by_bucket = vec![0u32; n];
    let mut cursors = starts;
    for (row, &h) in hashes.iter().enumerate() {
        let b = radix_bucket(h);
        rows_by_bucket[cursors[b]] = row as u32;
        cursors[b] += 1;
    }
    let mut tables: Vec<SlotTable> = Vec::with_capacity(RADIX_BUCKETS);
    for (b, &c) in counts.iter().enumerate() {
        let mut table = SlotTable::with_capacity(c);
        for &row in &rows_by_bucket[starts[b]..starts[b] + c] {
            let h = hashes[row as usize];
            let (slot, inserted) = table.find_or_insert(
                h,
                |s| same_key(first_row[s as usize], row),
                first_row.len() as u32,
            );
            if inserted {
                first_row.push(row);
            }
            slot_of_row[row as usize] = slot;
        }
        tables.push(table);
    }
    GroupIndex {
        tables,
        partitioned: true,
        slot_of_row,
        first_row,
    }
}

/// CSR member lists: per-slot row lists in input order, as one offsets
/// array (`n_groups + 1` entries) over one row-id array.
pub fn member_lists(slot_of_row: &[u32], n_groups: usize) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; n_groups + 1];
    for &s in slot_of_row {
        offsets[s as usize + 1] += 1;
    }
    for g in 0..n_groups {
        offsets[g + 1] += offsets[g];
    }
    let mut rows = vec![0u32; slot_of_row.len()];
    let mut cursors = offsets.clone();
    for (row, &s) in slot_of_row.iter().enumerate() {
        rows[cursors[s as usize]] = row as u32;
        cursors[s as usize] += 1;
    }
    (offsets, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_helpers_agree_with_hash_value() {
        assert_eq!(hash_null(), hash_value(&Value::Null));
        for b in [false, true] {
            assert_eq!(hash_bool(b), hash_value(&Value::Bool(b)));
        }
        for k in [0i64, 1, -1, i64::MIN, i64::MAX, 42] {
            assert_eq!(hash_i64(k), hash_value(&Value::Int(k)));
        }
        for x in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY] {
            assert_eq!(hash_f64(x), hash_value(&Value::Float(x)));
        }
        for s in ["", "a", "hello world"] {
            assert_eq!(hash_str(s), hash_value(&Value::str(s)));
        }
    }

    #[test]
    fn equal_values_hash_equal_and_variants_differ() {
        // Same bits, same hash — including NaN payload classes.
        let nan_a = f64::from_bits(0x7ff8_0000_0000_0001);
        let nan_b = f64::from_bits(0x7ff8_0000_0000_0001);
        assert_eq!(hash_f64(nan_a), hash_f64(nan_b));
        // Distinct values (under total_cmp) are allowed to hash apart —
        // and with this mixer, they do.
        assert_ne!(hash_f64(0.0), hash_f64(-0.0));
        assert_ne!(
            hash_f64(f64::from_bits(0x7ff8_0000_0000_0001)),
            hash_f64(f64::from_bits(0x7ff8_0000_0000_0002))
        );
        // Variant tags separate equal payloads.
        assert_ne!(hash_i64(1), hash_f64(1.0f64));
        assert_ne!(hash_i64(0), hash_null());
        assert_ne!(hash_bool(false), hash_i64(0));
    }

    #[test]
    fn build_index_groups_by_key() {
        let keys = [3i64, 1, 3, 2, 1, 3];
        let hashes: Vec<u64> = keys.iter().map(|&k| hash_i64(k)).collect();
        let idx = build_index(&hashes, |a, b| keys[a as usize] == keys[b as usize]);
        assert_eq!(idx.n_groups(), 3);
        // First-appearance slots: 3 → 0, 1 → 1, 2 → 2.
        assert_eq!(idx.slot_of_row, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(idx.first_row, vec![0, 1, 3]);
        let (offsets, rows) = member_lists(&idx.slot_of_row, idx.n_groups());
        assert_eq!(offsets, vec![0, 3, 5, 6]);
        assert_eq!(rows, vec![0, 2, 5, 1, 4, 3]);
        // Probing finds the same slots.
        let slot = idx
            .lookup(hash_i64(2), |s| {
                keys[idx.first_row[s as usize] as usize] == 2
            })
            .unwrap();
        assert_eq!(slot, 2);
        assert!(idx.lookup(hash_i64(9), |_| true).is_none());
    }

    #[test]
    fn partitioned_and_direct_paths_induce_the_same_grouping() {
        let keys: Vec<i64> = (0..10_000).map(|i| (i * 37) % 501).collect();
        let hashes: Vec<u64> = keys.iter().map(|&k| hash_i64(k)).collect();
        let eq = |a: u32, b: u32| keys[a as usize] == keys[b as usize];
        let direct = build_index_with(&hashes, eq, false);
        let radix = build_index_with(&hashes, eq, true);
        assert_eq!(direct.n_groups(), radix.n_groups());
        // Slot numbering may differ; the induced row partition may not:
        // rows map to the same canonical representative (their key's first
        // input row) on both paths.
        let canon = |idx: &GroupIndex| -> Vec<u32> {
            idx.slot_of_row
                .iter()
                .map(|&s| idx.first_row[s as usize])
                .collect()
        };
        assert_eq!(canon(&direct), canon(&radix));
    }

    #[test]
    fn collision_pileup_stays_correct() {
        // Degenerate hash column: every row collides into one probe chain
        // (and one radix bucket). Grouping must fall back to key equality
        // and still be exact.
        let keys: Vec<i64> = (0..500).map(|i| i % 17).collect();
        let hashes = vec![0u64; keys.len()];
        for forced in [false, true] {
            let idx =
                build_index_with(&hashes, |a, b| keys[a as usize] == keys[b as usize], forced);
            assert_eq!(idx.n_groups(), 17);
            for (row, &s) in idx.slot_of_row.iter().enumerate() {
                assert_eq!(keys[idx.first_row[s as usize] as usize], keys[row]);
            }
        }
    }

    #[test]
    fn table_growth_preserves_entries() {
        let mut table = SlotTable::with_capacity(1);
        let keys: Vec<i64> = (0..1000).collect();
        for (i, &k) in keys.iter().enumerate() {
            let (slot, inserted) =
                table.find_or_insert(hash_i64(k), |s| keys[s as usize] == k, i as u32);
            assert!(inserted);
            assert_eq!(slot, i as u32);
        }
        assert_eq!(table.len(), 1000);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                table.find(hash_i64(k), |s| keys[s as usize] == k),
                Some(i as u32)
            );
        }
        assert!(table.find(hash_i64(5000), |_| true).is_none());
    }

    #[test]
    fn dense_i64_matches_hash_path_exactly() {
        // Negative keys, gaps, skew — all within the direct-address range.
        let keys: Vec<i64> = (0..500).map(|i| ((i * 37) % 90) - 45).collect();
        let hashes: Vec<u64> = keys.iter().map(|&k| hash_i64(k)).collect();
        let hashed = build_index(&hashes, |a, b| keys[a as usize] == keys[b as usize]);
        let dense = dense_groups_i64(&keys).expect("small range");
        assert_eq!(dense.first_row, hashed.first_row);
        assert_eq!(dense.slot_of_row, hashed.slot_of_row);
        assert_eq!(dense.n_groups(), hashed.n_groups());
    }

    #[test]
    fn dense_i64_rejects_wide_ranges_and_handles_edges() {
        assert!(dense_groups_i64(&[i64::MIN, i64::MAX]).is_none());
        assert!(dense_groups_i64(&[0, 1 << 20]).is_none());
        assert_eq!(dense_groups_i64(&[]).unwrap().n_groups(), 0);
        let single = dense_groups_i64(&[i64::MIN; 4]).unwrap();
        assert_eq!(single.n_groups(), 1);
        assert_eq!(single.slot_of_row, vec![0, 0, 0, 0]);
    }

    #[test]
    fn dense_codes_group_by_dictionary_entry() {
        let codes = vec![2u32, 0, 2, 1, 0];
        let dense = dense_groups_codes(&codes, 3);
        assert_eq!(dense.n_groups(), 3);
        assert_eq!(dense.first_row, vec![0, 1, 3]);
        assert_eq!(dense.slot_of_row, vec![0, 1, 0, 2, 1]);
    }
}
