//! LIBSVM-format dataset generation and parsing.
//!
//! The paper's Figure 2 runs SVM "on different datasets from LIBSVM with
//! only one hundred iterations". We cannot ship those datasets, but the
//! experiment only needs a *size sweep* of binary classification data, so
//! [`generate`] produces linearly separable (plus label noise) datasets of
//! any size, and [`to_text`]/[`parse`] speak the actual LIBSVM text format
//! (`label idx:value idx:value ...`, 1-based indices) for interoperability
//! with the real files.
//!
//! Record layout: `[label(Float ∈ {-1.0, +1.0}), x_1(Float), ..., x_d(Float)]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};

/// Configuration of the synthetic LIBSVM generator.
#[derive(Clone, Debug)]
pub struct LibsvmConfig {
    /// Number of examples.
    pub rows: usize,
    /// Number of features.
    pub dims: usize,
    /// Fraction of labels flipped (noise; 0.0 = separable).
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LibsvmConfig {
    /// A small default: 1000 × 20, 5% noise.
    pub fn new(rows: usize, dims: usize) -> Self {
        LibsvmConfig {
            rows,
            dims,
            label_noise: 0.05,
            seed: 42,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the label noise.
    pub fn with_noise(mut self, label_noise: f64) -> Self {
        self.label_noise = label_noise;
        self
    }
}

/// Generate a synthetic binary-classification dataset.
///
/// Points are drawn uniformly from `[-1, 1]^d`; the true concept is the
/// sign of `w*·x` for a hidden unit vector `w*`, with `label_noise`
/// flipping. Deterministic in the seed.
pub fn generate(config: &LibsvmConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Hidden separating direction.
    let mut w: Vec<f64> = (0..config.dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    for x in &mut w {
        *x /= norm;
    }

    let mut out = Vec::with_capacity(config.rows);
    for _ in 0..config.rows {
        let x: Vec<f64> = (0..config.dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let margin: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        let mut label = if margin >= 0.0 { 1.0 } else { -1.0 };
        if rng.gen_bool(config.label_noise.clamp(0.0, 1.0)) {
            label = -label;
        }
        let mut fields = Vec::with_capacity(config.dims + 1);
        fields.push(Value::Float(label));
        fields.extend(x.into_iter().map(Value::Float));
        out.push(Record::new(fields));
    }
    out
}

/// Render records in LIBSVM text format (dense; zero features skipped).
pub fn to_text(records: &[Record]) -> Result<String> {
    let mut out = String::new();
    for r in records {
        let label = r.float(0)?;
        out.push_str(&format_number(label));
        for i in 1..r.width() {
            let v = r.float(i)?;
            if v != 0.0 {
                out.push_str(&format!(" {}:{}", i, format_number(v)));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

fn format_number(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Parse LIBSVM text into records of width `dims + 1` (absent features 0.0).
pub fn parse(text: &str, dims: usize) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let label: f64 = tokens
            .next()
            .expect("non-empty line has a first token")
            .parse()
            .map_err(|_| bad(lineno, "label"))?;
        let mut features = vec![0.0f64; dims];
        for tok in tokens {
            let (idx, val) = tok.split_once(':').ok_or_else(|| bad(lineno, "pair"))?;
            let idx: usize = idx.parse().map_err(|_| bad(lineno, "index"))?;
            let val: f64 = val.parse().map_err(|_| bad(lineno, "value"))?;
            if idx == 0 || idx > dims {
                return Err(bad(lineno, "index range"));
            }
            features[idx - 1] = val;
        }
        let mut fields = Vec::with_capacity(dims + 1);
        fields.push(Value::Float(label));
        fields.extend(features.into_iter().map(Value::Float));
        out.push(Record::new(fields));
    }
    Ok(out)
}

fn bad(lineno: usize, what: &str) -> RheemError {
    RheemError::Storage(format!("bad LIBSVM {what} on line {}", lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let cfg = LibsvmConfig::new(100, 5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a[0].width(), 6);
        for r in &a {
            let label = r.float(0).unwrap();
            assert!(label == 1.0 || label == -1.0);
        }
        // Both classes present.
        assert!(a.iter().any(|r| r.float(0).unwrap() > 0.0));
        assert!(a.iter().any(|r| r.float(0).unwrap() < 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&LibsvmConfig::new(50, 4).with_seed(1));
        let b = generate(&LibsvmConfig::new(50, 4).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn text_round_trip() {
        let records = generate(&LibsvmConfig::new(20, 3));
        let text = to_text(&records).unwrap();
        let back = parse(&text, 3).unwrap();
        assert_eq!(records.len(), back.len());
        for (r, b) in records.iter().zip(&back) {
            for i in 0..r.width() {
                let (x, y) = (r.float(i).unwrap(), b.float(i).unwrap());
                assert!((x - y).abs() < 1e-12, "field {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn parse_handles_sparse_lines_and_comments() {
        let text = "# comment\n+1 2:0.5\n-1 1:1.5 3:-2\n\n";
        let recs = parse(text, 3).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].float(0).unwrap(), 1.0);
        assert_eq!(recs[0].float(1).unwrap(), 0.0);
        assert_eq!(recs[0].float(2).unwrap(), 0.5);
        assert_eq!(recs[1].float(3).unwrap(), -2.0);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse("x 1:1\n", 2).is_err());
        assert!(parse("1 0:1\n", 2).is_err()); // 1-based indices
        assert!(parse("1 5:1\n", 2).is_err()); // out of range
        assert!(parse("1 nope\n", 2).is_err());
    }

    #[test]
    fn separable_data_is_mostly_consistent_with_some_linear_model() {
        // With zero noise, the generating hyperplane classifies everything
        // correctly — verify via a weak proxy: a perceptron converges fast.
        let recs = generate(&LibsvmConfig::new(200, 4).with_noise(0.0));
        let mut w = [0.0f64; 4];
        for _ in 0..50 {
            for r in &recs {
                let y = r.float(0).unwrap();
                let x: Vec<f64> = (1..5).map(|i| r.float(i).unwrap()).collect();
                let pred: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
                if y * pred <= 0.0 {
                    for (wi, xi) in w.iter_mut().zip(&x) {
                        *wi += y * xi;
                    }
                }
            }
        }
        let errors = recs
            .iter()
            .filter(|r| {
                let y = r.float(0).unwrap();
                let pred: f64 = w
                    .iter()
                    .enumerate()
                    .map(|(i, wi)| wi * r.float(i + 1).unwrap())
                    .sum();
                y * pred <= 0.0
            })
            .count();
        assert!(
            errors < 20,
            "perceptron should nearly separate: {errors} errors"
        );
    }
}
