//! Relational and sensor workload generators for the multi-platform
//! pipeline examples (the paper's §1 Oil & Gas scenario).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rheem_core::data::Record;
use rheem_core::rec;

/// Customers table: `[customer_id(Int), name(Str), region(Str)]`.
pub fn customers(n: usize, regions: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as i64)
        .map(|id| {
            let region = rng.gen_range(0..regions.max(1));
            rec![id, format!("customer_{id}"), format!("region_{region}")]
        })
        .collect()
}

/// Orders table: `[order_id(Int), customer_id(Int), amount(Float)]`.
pub fn orders(n: usize, customers: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as i64)
        .map(|id| {
            let cust = rng.gen_range(0..customers.max(1)) as i64;
            let amount = (rng.gen_range(1.0..5_000.0f64) * 100.0).round() / 100.0;
            rec![id, cust, amount]
        })
        .collect()
}

/// Downhole sensor readings for the Oil & Gas pipeline:
/// `[timestamp(Int), sensor_id(Int), pressure(Float)]`.
///
/// Clean readings follow a per-sensor baseline with small noise; a fraction
/// are corrupted to extreme values (transmission glitches the cleaning
/// stage must drop).
pub fn sensor_readings(n: usize, sensors: usize, corrupt_rate: f64, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sensors = sensors.max(1);
    let baselines: Vec<f64> = (0..sensors).map(|_| rng.gen_range(80.0..120.0)).collect();
    (0..n as i64)
        .map(|t| {
            let sensor = rng.gen_range(0..sensors);
            let pressure: f64 = if rng.gen_bool(corrupt_rate.clamp(0.0, 1.0)) {
                // Glitch: impossible reading.
                if rng.gen_bool(0.5) {
                    -1.0
                } else {
                    9_999.0
                }
            } else {
                baselines[sensor] + rng.gen_range(-5.0..5.0)
            };
            rec![t, sensor as i64, (pressure * 10.0).round() / 10.0]
        })
        .collect()
}

/// Whether a sensor reading is physically plausible (the cleaning rule the
/// examples use).
pub fn plausible_pressure(p: f64) -> bool {
    (0.0..1_000.0).contains(&p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_deterministic_and_linked() {
        let c = customers(100, 5, 1);
        let o = orders(500, 100, 2);
        assert_eq!(c.len(), 100);
        assert_eq!(o.len(), 500);
        assert_eq!(customers(100, 5, 1), c);
        // Every order points at a valid customer.
        for r in &o {
            let cust = r.int(1).unwrap();
            assert!((0..100).contains(&cust));
        }
    }

    #[test]
    fn sensor_corruption_rate_is_roughly_respected() {
        let readings = sensor_readings(10_000, 8, 0.1, 3);
        let corrupt = readings
            .iter()
            .filter(|r| !plausible_pressure(r.float(2).unwrap()))
            .count();
        assert!((700..1300).contains(&corrupt), "got {corrupt}");
    }

    #[test]
    fn clean_sensors_are_all_plausible() {
        let readings = sensor_readings(1000, 4, 0.0, 3);
        assert!(readings
            .iter()
            .all(|r| plausible_pressure(r.float(2).unwrap())));
    }
}
