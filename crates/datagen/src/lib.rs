//! # rheem-datagen
//!
//! Synthetic workload generators for the RHEEM reproduction. Every
//! evaluation input the paper uses but we cannot ship is substituted here
//! (see DESIGN.md): LIBSVM classification data (Figure 2), dirty tax
//! records (Figure 3 / BigDansing), random graphs, and the relational +
//! sensor tables of the §1 Oil & Gas scenario. All generators are
//! deterministic in their seeds.

#![warn(missing_docs)]

pub mod graph;
pub mod libsvm;
pub mod relational;
pub mod tax;
