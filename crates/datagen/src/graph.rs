//! Random graph generation for the graph analytics application.
//!
//! Edges are records `[src(Int), dst(Int)]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rheem_core::data::Record;
use rheem_core::rec;

/// Erdős–Rényi G(n, m): `edges` distinct directed edges among `nodes`
/// vertices (no self-loops). Deterministic in the seed.
pub fn erdos_renyi(nodes: usize, edges: usize, seed: u64) -> Vec<Record> {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(edges);
    let max_edges = nodes * (nodes - 1);
    let target = edges.min(max_edges);
    let mut out = Vec::with_capacity(target);
    while out.len() < target {
        let src = rng.gen_range(0..nodes) as i64;
        let dst = rng.gen_range(0..nodes) as i64;
        if src != dst && seen.insert((src, dst)) {
            out.push(rec![src, dst]);
        }
    }
    out
}

/// A preferential-attachment graph: each new node attaches `m` out-edges to
/// endpoints sampled from the existing edge list (rich get richer), giving
/// the skewed degree distribution real web/social graphs show.
pub fn preferential_attachment(nodes: usize, m: usize, seed: u64) -> Vec<Record> {
    assert!(nodes >= 2 && m >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut endpoints: Vec<i64> = vec![0, 1];
    let mut out = vec![rec![0i64, 1i64]];
    for v in 2..nodes as i64 {
        for _ in 0..m {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target != v {
                out.push(rec![v, target]);
                endpoints.push(v);
                endpoints.push(target);
            }
        }
    }
    out
}

/// A ring of `k` disjoint cycles of `len` nodes each — handy for connected
/// components tests (exactly `k` components, sizes known).
pub fn disjoint_cycles(k: usize, len: usize) -> Vec<Record> {
    assert!(len >= 2);
    let mut out = Vec::with_capacity(k * len);
    for c in 0..k {
        let base = (c * len) as i64;
        for i in 0..len as i64 {
            out.push(rec![base + i, base + (i + 1) % len as i64]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_deterministic_and_simple() {
        let a = erdos_renyi(50, 200, 3);
        let b = erdos_renyi(50, 200, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let mut seen = std::collections::HashSet::new();
        for e in &a {
            let (s, d) = (e.int(0).unwrap(), e.int(1).unwrap());
            assert_ne!(s, d, "self loop");
            assert!(seen.insert((s, d)), "duplicate edge");
            assert!((0..50).contains(&s) && (0..50).contains(&d));
        }
    }

    #[test]
    fn erdos_renyi_caps_at_max_edges() {
        let e = erdos_renyi(3, 100, 1);
        assert_eq!(e.len(), 6); // 3 × 2 directed edges
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let edges = preferential_attachment(200, 2, 5);
        let mut indeg = std::collections::HashMap::new();
        for e in &edges {
            *indeg.entry(e.int(1).unwrap()).or_insert(0usize) += 1;
        }
        let max = *indeg.values().max().unwrap();
        let avg = edges.len() as f64 / indeg.len() as f64;
        assert!(
            (max as f64) > 3.0 * avg,
            "expected a hub: max {max}, avg {avg:.1}"
        );
    }

    #[test]
    fn disjoint_cycles_have_known_structure() {
        let edges = disjoint_cycles(3, 4);
        assert_eq!(edges.len(), 12);
        // Node 0..3 in component 0, 4..7 in component 1, etc.
        for e in &edges {
            let (s, d) = (e.int(0).unwrap(), e.int(1).unwrap());
            assert_eq!(s / 4, d / 4, "edge crosses components");
        }
    }
}
