//! Dirty tax-record generation — the BigDansing evaluation workload.
//!
//! BigDansing's experiments (paper §5, Figure 3) detect violations of data
//! quality rules on a synthetic TAX dataset. This generator reproduces the
//! two rules the paper's storyline needs:
//!
//! * **φ_FD** (functional dependency `zip → state`, an equality rule):
//!   detected by `Scope → Block(zip) → Iterate → Detect` — a fraction of
//!   records get a *wrong state* for their zip code;
//! * **φ_INEQ** (denial constraint "no one earns more but pays a lower tax
//!   rate": ¬(t1.salary > t2.salary ∧ t1.tax_rate < t2.tax_rate)): the
//!   clean distribution makes tax rate monotone in salary; a fraction of
//!   records get an *understated rate*, each producing many violating
//!   pairs.
//!
//! Record layout (see [`columns`]):
//! `[id(Int), name(Str), city(Str), state(Str), zip(Int), salary(Float), tax_rate(Float)]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rheem_core::data::Record;
use rheem_core::rec;

/// Column indices of the tax-record layout.
pub mod columns {
    /// Unique record id.
    pub const ID: usize = 0;
    /// Person name.
    pub const NAME: usize = 1;
    /// City name.
    pub const CITY: usize = 2;
    /// Two-letter state code.
    pub const STATE: usize = 3;
    /// Zip code.
    pub const ZIP: usize = 4;
    /// Annual salary.
    pub const SALARY: usize = 5;
    /// Tax rate in percent.
    pub const TAX_RATE: usize = 6;
}

const STATES: [&str; 10] = ["AZ", "CA", "IL", "MA", "NM", "NY", "OH", "TX", "UT", "WA"];
const CITIES: [&str; 10] = [
    "Phoenix", "Anaheim", "Chicago", "Boston", "Roswell", "Ithaca", "Columbus", "Austin", "Provo",
    "Seattle",
];

/// Configuration of the dirty tax-record generator.
#[derive(Clone, Debug)]
pub struct TaxConfig {
    /// Number of records.
    pub rows: usize,
    /// Number of distinct zip codes (blocking keys for the FD rule).
    pub zips: usize,
    /// Fraction of records with a wrong state for their zip (FD errors).
    pub fd_error_rate: f64,
    /// Fraction of records with an understated tax rate (inequality errors).
    pub ineq_error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TaxConfig {
    /// Defaults: 2% errors of each kind, rows/50 zips (≥1).
    pub fn new(rows: usize) -> Self {
        TaxConfig {
            rows,
            zips: (rows / 50).max(1),
            fd_error_rate: 0.02,
            ineq_error_rate: 0.02,
            seed: 7,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override both error rates.
    pub fn with_error_rates(mut self, fd: f64, ineq: f64) -> Self {
        self.fd_error_rate = fd;
        self.ineq_error_rate = ineq;
        self
    }
}

/// Ground-truth error counts injected by [`generate`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedErrors {
    /// Records whose state contradicts their zip's canonical state.
    pub fd_dirty_records: usize,
    /// Records whose tax rate was understated.
    pub ineq_dirty_records: usize,
}

/// Generate dirty tax records plus the injected-error ground truth.
///
/// Clean invariants: every zip maps to one canonical state, and
/// `tax_rate = 10 + salary / 20_000` (strictly monotone in salary), so a
/// clean dataset has zero violations of either rule.
pub fn generate(config: &TaxConfig) -> (Vec<Record>, InjectedErrors) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zips = config.zips.max(1);
    // Canonical state per zip.
    let zip_state: Vec<usize> = (0..zips).map(|_| rng.gen_range(0..STATES.len())).collect();

    let mut records = Vec::with_capacity(config.rows);
    let mut injected = InjectedErrors::default();
    for id in 0..config.rows {
        let zip_idx = rng.gen_range(0..zips);
        let mut state_idx = zip_state[zip_idx];
        if rng.gen_bool(config.fd_error_rate.clamp(0.0, 1.0)) {
            state_idx = (state_idx + 1 + rng.gen_range(0..STATES.len() - 1)) % STATES.len();
            injected.fd_dirty_records += 1;
        }
        let salary = rng.gen_range(20_000.0..200_000.0f64).round();
        let mut tax_rate = 10.0 + salary / 20_000.0;
        if rng.gen_bool(config.ineq_error_rate.clamp(0.0, 1.0)) {
            // Understate drastically: below the minimum clean rate, so every
            // record with a smaller salary witnesses a violation.
            tax_rate = rng.gen_range(0.0..5.0);
            injected.ineq_dirty_records += 1;
        }
        let name = format!("p{:06}", rng.gen_range(0..config.rows * 10));
        let city = CITIES[state_idx];
        records.push(rec![
            id as i64,
            name,
            city,
            STATES[state_idx],
            (10_000 + zip_idx) as i64,
            salary,
            (tax_rate * 100.0).round() / 100.0
        ]);
    }
    (records, injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = TaxConfig::new(500);
        let (a, ia) = generate(&cfg);
        let (b, ib) = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
        assert_eq!(a.len(), 500);
        assert_eq!(a[0].width(), 7);
    }

    #[test]
    fn clean_data_has_no_violations() {
        let cfg = TaxConfig::new(300).with_error_rates(0.0, 0.0);
        let (records, injected) = generate(&cfg);
        assert_eq!(injected, InjectedErrors::default());
        // FD zip -> state holds.
        let mut zip_states: HashMap<i64, &str> = HashMap::new();
        for r in &records {
            let zip = r.int(columns::ZIP).unwrap();
            let state = r.str(columns::STATE).unwrap();
            let prev = zip_states.insert(zip, state);
            if let Some(prev) = prev {
                assert_eq!(prev, state, "FD violated in clean data");
            }
        }
        // Monotone tax rate.
        let mut by_salary: Vec<(f64, f64)> = records
            .iter()
            .map(|r| {
                (
                    r.float(columns::SALARY).unwrap(),
                    r.float(columns::TAX_RATE).unwrap(),
                )
            })
            .collect();
        by_salary.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in by_salary.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9, "tax rate not monotone");
        }
    }

    #[test]
    fn dirty_data_reports_injected_counts() {
        let cfg = TaxConfig::new(1000).with_error_rates(0.05, 0.05);
        let (records, injected) = generate(&cfg);
        assert!(injected.fd_dirty_records > 10);
        assert!(injected.ineq_dirty_records > 10);
        assert_eq!(records.len(), 1000);
    }

    #[test]
    fn zip_count_is_respected() {
        let mut cfg = TaxConfig::new(200);
        cfg.zips = 4;
        let (records, _) = generate(&cfg);
        let distinct: std::collections::HashSet<i64> = records
            .iter()
            .map(|r| r.int(columns::ZIP).unwrap())
            .collect();
        assert!(distinct.len() <= 4);
    }
}
