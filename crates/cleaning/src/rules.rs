//! Data quality rules: two-tuple denial constraints.
//!
//! BigDansing (paper §5.1) "models data quality rules with five operators,
//! namely Scope, Block, Iterate, Detect, and GenFix". The rule *language*
//! here is the class those operators are evaluated over in the paper's
//! experiments: **denial constraints over pairs of tuples** — "no two
//! tuples t1, t2 may satisfy all of p_1 ∧ ... ∧ p_k", where each predicate
//! compares an attribute of t1 with an attribute of t2.
//!
//! Both rules of the evaluation are instances:
//!
//! * the FD `zip → state` is `¬(t1.zip = t2.zip ∧ t1.state ≠ t2.state)`;
//! * the salary rule is `¬(t1.salary > t2.salary ∧ t1.rate < t2.rate)`.

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};

/// Comparison operators usable in denial-constraint predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<` (strict)
    Lt,
    /// `>` (strict)
    Gt,
}

impl CompOp {
    /// Evaluate the comparison on two values.
    ///
    /// `=` / `≠` use strict value equality (`Null = Null` holds, which is
    /// what `not_null`-style rules rely on). `<` / `>` are defined only
    /// within a comparable class — two numerics (`Int`/`Float` compare
    /// numerically), two strings, or two booleans — and are `false`
    /// otherwise, so a `Null` never satisfies an inequality.
    pub fn eval(&self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering;
        match self {
            CompOp::Eq => a == b,
            CompOp::Neq => a != b,
            CompOp::Lt | CompOp::Gt => {
                let ord = match (a, b) {
                    (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                        let (x, y) = (
                            a.as_float().expect("numeric"),
                            b.as_float().expect("numeric"),
                        );
                        x.total_cmp(&y)
                    }
                    (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
                    (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
                    _ => return false,
                };
                match self {
                    CompOp::Lt => ord == Ordering::Less,
                    CompOp::Gt => ord == Ordering::Greater,
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Whether the operator is an (in)equality usable as a blocking key.
    pub fn is_equality(&self) -> bool {
        matches!(self, CompOp::Eq)
    }

    /// Whether the operator is a strict inequality (IEJoin-eligible).
    pub fn is_inequality(&self) -> bool {
        matches!(self, CompOp::Lt | CompOp::Gt)
    }
}

/// One predicate `t1.left ⟨op⟩ t2.right`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcPredicate {
    /// Attribute of the first tuple.
    pub left: usize,
    /// Comparison operator.
    pub op: CompOp,
    /// Attribute of the second tuple.
    pub right: usize,
}

impl DcPredicate {
    /// Construct a predicate.
    pub fn new(left: usize, op: CompOp, right: usize) -> Self {
        DcPredicate { left, op, right }
    }

    /// Evaluate on a tuple pair.
    pub fn eval(&self, t1: &Record, t2: &Record) -> Result<bool> {
        Ok(self.op.eval(t1.get(self.left)?, t2.get(self.right)?))
    }
}

/// A two-tuple denial constraint: a violation is an *ordered* pair
/// `(t1, t2)`, `t1 ≠ t2`, satisfying every predicate.
#[derive(Clone, Debug)]
pub struct DenialConstraint {
    /// Rule name (appears in violation records).
    pub name: String,
    /// Column holding the unique record id.
    pub id_column: usize,
    /// The conjunction of predicates.
    pub predicates: Vec<DcPredicate>,
}

impl DenialConstraint {
    /// Build a rule; at least one predicate is required.
    pub fn new(
        name: impl Into<String>,
        id_column: usize,
        predicates: Vec<DcPredicate>,
    ) -> Result<Self> {
        if predicates.is_empty() {
            return Err(RheemError::InvalidPlan(
                "a denial constraint needs at least one predicate".into(),
            ));
        }
        Ok(DenialConstraint {
            name: name.into(),
            id_column,
            predicates,
        })
    }

    /// The FD `lhs → rhs` as a denial constraint.
    pub fn functional_dependency(
        name: impl Into<String>,
        id_column: usize,
        lhs: usize,
        rhs: usize,
    ) -> Self {
        DenialConstraint {
            name: name.into(),
            id_column,
            predicates: vec![
                DcPredicate::new(lhs, CompOp::Eq, lhs),
                DcPredicate::new(rhs, CompOp::Neq, rhs),
            ],
        }
    }

    /// The paper's salary rule: `¬(t1.a > t2.a ∧ t1.b < t2.b)`.
    pub fn inequality(name: impl Into<String>, id_column: usize, a: usize, b: usize) -> Self {
        DenialConstraint {
            name: name.into(),
            id_column,
            predicates: vec![
                DcPredicate::new(a, CompOp::Gt, a),
                DcPredicate::new(b, CompOp::Lt, b),
            ],
        }
    }

    /// True iff the (ordered) pair violates the rule.
    pub fn violates(&self, t1: &Record, t2: &Record) -> Result<bool> {
        if t1.get(self.id_column)? == t2.get(self.id_column)? {
            return Ok(false); // a tuple cannot violate against itself
        }
        for p in &self.predicates {
            if !p.eval(t1, t2)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The blocking key column, if some predicate is `t1.c = t2.c`
    /// (violating pairs then necessarily share that attribute).
    pub fn blocking_column(&self) -> Option<usize> {
        self.predicates
            .iter()
            .find(|p| p.op.is_equality() && p.left == p.right)
            .map(|p| p.left)
    }

    /// The two strict-inequality predicates, if this rule is IEJoin-eligible
    /// (exactly two predicates, both strict inequalities on numeric columns).
    pub fn iejoin_predicates(&self) -> Option<(DcPredicate, DcPredicate)> {
        match self.predicates.as_slice() {
            [p1, p2]
                if p1.op.is_inequality()
                    && p2.op.is_inequality()
                    && p1.left == p1.right
                    && p2.left == p2.right =>
            {
                Some((*p1, *p2))
            }
            _ => None,
        }
    }

    /// Columns the rule reads (the `Scope` of the rule): id column plus
    /// every predicate column, deduplicated, in ascending order.
    pub fn scope_columns(&self) -> Vec<usize> {
        let mut cols = vec![self.id_column];
        for p in &self.predicates {
            cols.push(p.left);
            cols.push(p.right);
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Rewrite the rule's column indices for records already projected onto
    /// [`DenialConstraint::scope_columns`].
    pub fn rebased(&self) -> DenialConstraint {
        let scope = self.scope_columns();
        let rebase = |col: usize| {
            scope
                .iter()
                .position(|&c| c == col)
                .expect("scope contains every rule column")
        };
        DenialConstraint {
            name: self.name.clone(),
            id_column: rebase(self.id_column),
            predicates: self
                .predicates
                .iter()
                .map(|p| DcPredicate::new(rebase(p.left), p.op, rebase(p.right)))
                .collect(),
        }
    }
}

/// A detected violation: ordered pair of record ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Violation {
    /// Rule that was violated.
    pub rule: String,
    /// Id of the first tuple.
    pub t1: i64,
    /// Id of the second tuple.
    pub t2: i64,
}

impl Violation {
    /// Encode as a record `[rule(Str), t1(Int), t2(Int)]`.
    pub fn to_record(&self) -> Record {
        Record::new(vec![
            Value::str(&self.rule),
            Value::Int(self.t1),
            Value::Int(self.t2),
        ])
    }

    /// Decode from the record layout of [`Violation::to_record`].
    pub fn from_record(r: &Record) -> Result<Self> {
        Ok(Violation {
            rule: r.str(0)?.to_string(),
            t1: r.int(1)?,
            t2: r.int(2)?,
        })
    }
}

/// A candidate fix emitted by `GenFix`: make `record_id.column` equal to
/// the value currently held by `donor_id.column` (equality repairs), or
/// adjust it to `bound` (inequality repairs).
#[derive(Clone, Debug, PartialEq)]
pub struct Fix {
    /// Rule that produced the fix.
    pub rule: String,
    /// Record to change.
    pub record_id: i64,
    /// Column to change.
    pub column: usize,
    /// Suggested new value.
    pub suggestion: Value,
}

impl Fix {
    /// Encode as a record `[rule, record_id, column, suggestion]`.
    pub fn to_record(&self) -> Record {
        Record::new(vec![
            Value::str(&self.rule),
            Value::Int(self.record_id),
            Value::Int(self.column as i64),
            self.suggestion.clone(),
        ])
    }

    /// Decode from the record layout of [`Fix::to_record`].
    pub fn from_record(r: &Record) -> Result<Self> {
        Ok(Fix {
            rule: r.str(0)?.to_string(),
            record_id: r.int(1)?,
            column: r.int(2)? as usize,
            suggestion: r.get(3)?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    fn fd() -> DenialConstraint {
        // Layout: [id, zip, state].
        DenialConstraint::functional_dependency("fd", 0, 1, 2)
    }

    #[test]
    fn fd_violation_detection() {
        let rule = fd();
        let a = rec![1i64, 10i64, "CA"];
        let b = rec![2i64, 10i64, "TX"];
        let c = rec![3i64, 10i64, "CA"];
        assert!(rule.violates(&a, &b).unwrap());
        assert!(rule.violates(&b, &a).unwrap());
        assert!(!rule.violates(&a, &c).unwrap());
        assert!(!rule.violates(&a, &a).unwrap()); // same id
    }

    #[test]
    fn inequality_rule_detection() {
        // Layout: [id, salary, rate].
        let rule = DenialConstraint::inequality("ineq", 0, 1, 2);
        let rich_low_tax = rec![1i64, 100_000.0, 5.0];
        let poor_high_tax = rec![2i64, 30_000.0, 20.0];
        assert!(rule.violates(&rich_low_tax, &poor_high_tax).unwrap());
        assert!(!rule.violates(&poor_high_tax, &rich_low_tax).unwrap());
    }

    #[test]
    fn blocking_and_iejoin_eligibility() {
        assert_eq!(fd().blocking_column(), Some(1));
        assert!(fd().iejoin_predicates().is_none());
        let ineq = DenialConstraint::inequality("i", 0, 1, 2);
        assert_eq!(ineq.blocking_column(), None);
        let (p1, p2) = ineq.iejoin_predicates().unwrap();
        assert_eq!(p1.op, CompOp::Gt);
        assert_eq!(p2.op, CompOp::Lt);
    }

    #[test]
    fn scope_and_rebase() {
        // Rule over columns {0 (id), 4 (zip), 6 (state)} of a wide record.
        let rule = DenialConstraint::functional_dependency("fd", 0, 4, 6);
        assert_eq!(rule.scope_columns(), vec![0, 4, 6]);
        let rebased = rule.rebased();
        assert_eq!(rebased.id_column, 0);
        assert_eq!(rebased.predicates[0].left, 1);
        assert_eq!(rebased.predicates[1].left, 2);
        // Rebased rule sees projected records identically.
        let wide1 = rec![1i64, "x", "y", "z", 10i64, "w", "CA"];
        let wide2 = rec![2i64, "x", "y", "z", 10i64, "w", "TX"];
        let narrow1 = wide1.project(&rule.scope_columns()).unwrap();
        let narrow2 = wide2.project(&rule.scope_columns()).unwrap();
        assert_eq!(
            rule.violates(&wide1, &wide2).unwrap(),
            rebased.violates(&narrow1, &narrow2).unwrap()
        );
    }

    #[test]
    fn violation_and_fix_round_trip() {
        let v = Violation {
            rule: "fd".into(),
            t1: 3,
            t2: 9,
        };
        assert_eq!(Violation::from_record(&v.to_record()).unwrap(), v);
        let f = Fix {
            rule: "fd".into(),
            record_id: 3,
            column: 2,
            suggestion: Value::str("CA"),
        };
        assert_eq!(Fix::from_record(&f.to_record()).unwrap(), f);
    }

    #[test]
    fn empty_predicates_rejected() {
        assert!(DenialConstraint::new("x", 0, vec![]).is_err());
    }

    #[test]
    fn comp_op_total_behaviour() {
        use CompOp::*;
        assert!(Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(Neq.eval(&Value::str("a"), &Value::str("b")));
        assert!(Lt.eval(&Value::Float(1.0), &Value::Float(2.0)));
        assert!(Gt.eval(&Value::Float(3.0), &Value::Float(2.0)));
        assert!(!Gt.eval(&Value::Float(2.0), &Value::Float(2.0)));
        // Mixed numerics compare numerically; Null never satisfies < or >.
        assert!(Lt.eval(&Value::Int(1), &Value::Float(1.5)));
        assert!(!Lt.eval(&Value::Null, &Value::Float(0.0)));
        assert!(!Gt.eval(&Value::str("z"), &Value::Int(1)));
        assert!(Eq.eval(&Value::Null, &Value::Null));
    }
}
