//! Violation detection: the five BigDansing logical operators compiled to
//! RHEEM plans, under four alternative physical strategies.
//!
//! The paper's Figure 3 is entirely about these strategies:
//!
//! * [`DetectionStrategy::OperatorPipeline`] — the BigDansing way: `Scope`
//!   (project the rule's columns) → `Block` (group by the equality key) →
//!   `Iterate` + `Detect` (enumerate and test pairs *within* each block).
//!   Fine operator granularity lets the platform parallelize per block
//!   (Figure 3 left, winning side).
//! * [`DetectionStrategy::SingleUdf`] — the whole detection as one opaque
//!   UDF. Same asymptotic work, but a single indivisible task: no
//!   distribution (Figure 3 left, losing side).
//! * [`DetectionStrategy::CrossProduct`] — a theta self-join over the full
//!   pair space, the "state-of-the-art baseline" profile the paper had to
//!   stop after 22 hours (Figure 3 right, losing side).
//! * [`DetectionStrategy::IeJoin`] — the IEJoin physical-operator
//!   extension for inequality rules (Figure 3 right, winning side).

use std::sync::Arc;

use rheem_core::data::{Dataset, Record};
use rheem_core::error::{Result, RheemError};
use rheem_core::physical::CustomPhysicalOp;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::udf::{GroupMapUdf, KeyUdf, MapUdf};
use rheem_core::{JobResult, RheemContext};

use crate::iejoin::IeJoinOp;
use crate::rules::{DenialConstraint, Violation};

/// How to physically execute violation detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectionStrategy {
    /// Scope → Block → Iterate/Detect operator pipeline (BigDansing).
    OperatorPipeline,
    /// One monolithic detect UDF (coarse granularity baseline).
    SingleUdf,
    /// Theta self-join over all pairs (no blocking, no IEJoin).
    CrossProduct,
    /// Operator pipeline with the IEJoin physical operator (inequality
    /// rules only).
    IeJoin,
}

/// Enumerate violations among a block's members (the `Iterate` + `Detect`
/// operators fused, as BigDansing's physical plan does).
fn detect_within(rule: &DenialConstraint, members: &[Record]) -> Vec<Record> {
    let mut out = Vec::new();
    for t1 in members {
        for t2 in members {
            if rule.violates(t1, t2).unwrap_or(false) {
                out.push(
                    Violation {
                        rule: rule.name.clone(),
                        t1: t1.int(rule.id_column).expect("id column"),
                        t2: t2.int(rule.id_column).expect("id column"),
                    }
                    .to_record(),
                );
            }
        }
    }
    out
}

/// The monolithic "single Detect UDF" baseline: blocking, iteration, and
/// detection all inside one opaque, non-partitionable operator.
struct MonolithicDetect {
    rule: DenialConstraint,
}

impl CustomPhysicalOp for MonolithicDetect {
    fn name(&self) -> &str {
        "MonolithicDetect"
    }

    fn arity(&self) -> usize {
        1
    }

    fn execute(&self, inputs: &[Dataset]) -> Result<Dataset> {
        // Same blocking as the pipeline — but sequential and indivisible.
        let records = inputs[0].records();
        let mut out = Vec::new();
        match self.rule.blocking_column() {
            Some(col) => {
                let key = KeyUdf::field(col);
                for (_, members) in rheem_core::kernels::hash_group(records, &key) {
                    out.extend(detect_within(&self.rule, &members));
                }
            }
            None => out.extend(detect_within(&self.rule, records)),
        }
        Ok(Dataset::new(out))
    }

    fn output_cardinality(&self, input_cards: &[f64]) -> f64 {
        let n = input_cards.first().copied().unwrap_or(0.0);
        (n * 0.1).max(1.0)
    }

    fn cost_factor(&self) -> f64 {
        8.0 // opaque pair enumeration
    }

    fn partitionable(&self) -> bool {
        false // the whole point of the baseline
    }
}

/// Build a detection plan; returns the plan and its sink node.
pub fn build_detection_plan(
    data: Vec<Record>,
    rule: &DenialConstraint,
    strategy: DetectionStrategy,
) -> Result<(PhysicalPlan, NodeId)> {
    let mut b = PlanBuilder::new();
    let src = b.collection(format!("{}-input", rule.name), data);
    let violations = build_detection_branch(&mut b, src, rule, strategy)?;
    let sink = b.collect(violations);
    Ok((b.build()?, sink))
}

/// Append one rule's detection operators to an existing builder, reading
/// from `src`; returns the violations node.
fn build_detection_branch(
    b: &mut PlanBuilder,
    src: NodeId,
    rule: &DenialConstraint,
    strategy: DetectionStrategy,
) -> Result<NodeId> {
    let violations = match strategy {
        DetectionStrategy::OperatorPipeline => {
            // Scope: keep only the rule's columns.
            let scope = rule.scope_columns();
            let rebased = rule.rebased();
            let scoped = b.project(src, scope);
            match rebased.blocking_column() {
                Some(col) => {
                    // Block + Iterate + Detect.
                    let rule = rebased.clone();
                    b.group_by(
                        scoped,
                        KeyUdf::field(col),
                        GroupMapUdf::new(format!("detect-{}", rule.name), move |_, members| {
                            detect_within(&rule, members)
                        })
                        .with_per_group_output(2.0),
                    )
                }
                None => {
                    // No equality predicate: pairs via theta self-join.
                    let rule_for_join = rebased.clone();
                    let joined = b.theta_join(
                        scoped,
                        scoped,
                        format!("violates-{}", rebased.name),
                        0.25,
                        Arc::new(move |t1: &Record, t2: &Record| {
                            rule_for_join.violates(t1, t2).unwrap_or(false)
                        }),
                    );
                    let rule = rebased.clone();
                    let width = rule.scope_columns().len();
                    b.map(
                        joined,
                        MapUdf::new("to-violation", move |pair: &Record| {
                            Violation {
                                rule: rule.name.clone(),
                                t1: pair.int(rule.id_column).expect("id"),
                                t2: pair.int(width + rule.id_column).expect("id"),
                            }
                            .to_record()
                        }),
                    )
                }
            }
        }
        DetectionStrategy::SingleUdf => {
            b.custom(Arc::new(MonolithicDetect { rule: rule.clone() }), vec![src])
        }
        DetectionStrategy::CrossProduct => {
            let scope = rule.scope_columns();
            let rebased = rule.rebased();
            let scoped = b.project(src, scope);
            let rule_for_join = rebased.clone();
            let joined = b.theta_join(
                scoped,
                scoped,
                format!("violates-{}", rebased.name),
                0.01,
                Arc::new(move |t1: &Record, t2: &Record| {
                    rule_for_join.violates(t1, t2).unwrap_or(false)
                }),
            );
            let rule = rebased.clone();
            let width = rule.scope_columns().len();
            b.map(
                joined,
                MapUdf::new("to-violation", move |pair: &Record| {
                    Violation {
                        rule: rule.name.clone(),
                        t1: pair.int(rule.id_column).expect("id"),
                        t2: pair.int(width + rule.id_column).expect("id"),
                    }
                    .to_record()
                }),
            )
        }
        DetectionStrategy::IeJoin => {
            let scope = rule.scope_columns();
            let rebased = rule.rebased();
            let scoped = b.project(src, scope);
            b.custom(Arc::new(IeJoinOp::new(rebased)?), vec![scoped])
        }
    };
    Ok(violations)
}

/// Run detection end to end; returns the (sorted, deduplicated) violations
/// and the job result with its statistics.
pub fn detect(
    ctx: &RheemContext,
    data: Vec<Record>,
    rule: &DenialConstraint,
    strategy: DetectionStrategy,
) -> Result<(Vec<Violation>, JobResult)> {
    let (plan, sink) = build_detection_plan(data, rule, strategy)?;
    let result = ctx.execute(plan)?;
    let mut violations: Vec<Violation> = result.outputs[&sink]
        .iter()
        .map(Violation::from_record)
        .collect::<Result<_>>()?;
    violations.sort();
    violations.dedup();
    Ok((violations, result))
}

/// Detect violations of *several* rules in one job over a **shared scan**
/// (§4.2's shared-scan optimization fires because every branch reads the
/// same source). Returns violations per rule name.
pub fn detect_all(
    ctx: &RheemContext,
    data: Vec<Record>,
    rules: &[DenialConstraint],
    strategy: DetectionStrategy,
) -> Result<(std::collections::HashMap<String, Vec<Violation>>, JobResult)> {
    if rules.is_empty() {
        return Err(RheemError::InvalidPlan(
            "detect_all needs at least one rule".into(),
        ));
    }
    let mut b = PlanBuilder::new();
    let src = b.collection("multi-rule-input", data);
    let mut sinks: Vec<(String, NodeId)> = Vec::new();
    for rule in rules {
        let branch = build_detection_branch(&mut b, src, rule, strategy)?;
        sinks.push((rule.name.clone(), b.collect(branch)));
    }
    let plan = b.build()?;
    let result = ctx.execute(plan)?;
    let mut out = std::collections::HashMap::new();
    for (name, sink) in sinks {
        let mut violations: Vec<Violation> = result.outputs[&sink]
            .iter()
            .map(Violation::from_record)
            .collect::<Result<_>>()?;
        violations.sort();
        violations.dedup();
        out.insert(name, violations);
    }
    Ok((out, result))
}

/// Convenience: count violations of a rule (any strategy).
pub fn count_violations(
    ctx: &RheemContext,
    data: Vec<Record>,
    rule: &DenialConstraint,
    strategy: DetectionStrategy,
) -> Result<usize> {
    detect(ctx, data, rule, strategy).map(|(v, _)| v.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// Tax-like layout: [id, zip, state, salary, rate].
    fn dirty_data() -> Vec<Record> {
        vec![
            rec![0i64, 10i64, "CA", 50_000.0, 12.5],
            rec![1i64, 10i64, "CA", 80_000.0, 14.0],
            rec![2i64, 10i64, "TX", 60_000.0, 13.0], // FD violation vs 0, 1
            rec![3i64, 20i64, "NY", 90_000.0, 2.0],  // ineq violation vs all poorer
            rec![4i64, 20i64, "NY", 30_000.0, 11.0],
        ]
    }

    fn fd() -> DenialConstraint {
        DenialConstraint::functional_dependency("fd-zip-state", 0, 1, 2)
    }

    fn ineq() -> DenialConstraint {
        DenialConstraint::inequality("ineq-salary-rate", 0, 3, 4)
    }

    #[test]
    fn fd_detection_pipeline_finds_expected_pairs() {
        let (violations, _) = detect(
            &ctx(),
            dirty_data(),
            &fd(),
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        // Ordered pairs: (0,2), (2,0), (1,2), (2,1).
        assert_eq!(violations.len(), 4);
        assert!(violations.iter().all(|v| v.t1 == 2 || v.t2 == 2));
    }

    #[test]
    fn all_strategies_agree_on_fd_rules() {
        let data = dirty_data();
        let baseline = count_violations(
            &ctx(),
            data.clone(),
            &fd(),
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        for strategy in [
            DetectionStrategy::SingleUdf,
            DetectionStrategy::CrossProduct,
        ] {
            let n = count_violations(&ctx(), data.clone(), &fd(), strategy).unwrap();
            assert_eq!(n, baseline, "strategy {strategy:?} disagrees");
        }
    }

    #[test]
    fn all_strategies_agree_on_inequality_rules() {
        let data = dirty_data();
        let baseline = count_violations(
            &ctx(),
            data.clone(),
            &ineq(),
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        assert!(baseline > 0);
        for strategy in [
            DetectionStrategy::SingleUdf,
            DetectionStrategy::CrossProduct,
            DetectionStrategy::IeJoin,
        ] {
            let n = count_violations(&ctx(), data.clone(), &ineq(), strategy).unwrap();
            assert_eq!(n, baseline, "strategy {strategy:?} disagrees");
        }
    }

    #[test]
    fn clean_data_has_no_violations() {
        let clean = vec![
            rec![0i64, 10i64, "CA", 50_000.0, 12.5],
            rec![1i64, 10i64, "CA", 80_000.0, 14.0],
        ];
        for strategy in [
            DetectionStrategy::OperatorPipeline,
            DetectionStrategy::SingleUdf,
            DetectionStrategy::CrossProduct,
        ] {
            assert_eq!(
                count_violations(&ctx(), clean.clone(), &fd(), strategy).unwrap(),
                0
            );
        }
    }

    #[test]
    fn iejoin_strategy_rejects_fd_rules() {
        assert!(build_detection_plan(dirty_data(), &fd(), DetectionStrategy::IeJoin).is_err());
    }

    #[test]
    fn detection_agrees_with_generator_ground_truth() {
        use rheem_datagen::tax::{self, columns, TaxConfig};
        let (data, injected) = tax::generate(&TaxConfig::new(400).with_error_rates(0.05, 0.0));
        let rule = DenialConstraint::functional_dependency(
            "zip-state",
            columns::ID,
            columns::ZIP,
            columns::STATE,
        );
        let (violations, _) =
            detect(&ctx(), data, &rule, DetectionStrategy::OperatorPipeline).unwrap();
        // Every injected dirty record participates in at least one violation
        // (its zip has clean siblings with overwhelming probability).
        let dirty_involved: std::collections::HashSet<i64> =
            violations.iter().flat_map(|v| [v.t1, v.t2]).collect();
        assert!(
            dirty_involved.len() >= injected.fd_dirty_records,
            "violations cover {} records, injected {}",
            dirty_involved.len(),
            injected.fd_dirty_records
        );
    }
}

#[cfg(test)]
mod multi_rule_tests {
    use super::*;
    use crate::rules::DenialConstraint;
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// Layout: [id, zip, state, salary, rate].
    fn dirty() -> Vec<Record> {
        vec![
            rec![0i64, 10i64, "CA", 50_000.0, 12.5],
            rec![1i64, 10i64, "TX", 80_000.0, 14.0],
            rec![2i64, 20i64, "NY", 90_000.0, 2.0],
            rec![3i64, 20i64, "NY", 30_000.0, 11.0],
        ]
    }

    #[test]
    fn detect_all_matches_per_rule_detection() {
        let fd = DenialConstraint::functional_dependency("fd", 0, 1, 2);
        let ineq = DenialConstraint::inequality("ineq", 0, 3, 4);
        let (batch, result) = detect_all(
            &ctx(),
            dirty(),
            &[fd.clone(), ineq.clone()],
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        let (fd_solo, _) =
            detect(&ctx(), dirty(), &fd, DetectionStrategy::OperatorPipeline).unwrap();
        let (ineq_solo, _) =
            detect(&ctx(), dirty(), &ineq, DetectionStrategy::OperatorPipeline).unwrap();
        assert_eq!(batch["fd"], fd_solo);
        assert_eq!(batch["ineq"], ineq_solo);
        assert!(!batch["fd"].is_empty() && !batch["ineq"].is_empty());
        // One job, one atom, one shared scan.
        assert_eq!(result.stats.atoms.len(), 1);
    }

    #[test]
    fn detect_all_shares_the_scan() {
        let fd = DenialConstraint::functional_dependency("fd", 0, 1, 2);
        let fd2 = DenialConstraint::functional_dependency("fd2", 0, 2, 1);
        let ctx = ctx();
        let mut b = PlanBuilder::new();
        let src = b.collection("i", dirty());
        let v1 =
            build_detection_branch(&mut b, src, &fd, DetectionStrategy::OperatorPipeline).unwrap();
        let v2 =
            build_detection_branch(&mut b, src, &fd2, DetectionStrategy::OperatorPipeline).unwrap();
        b.collect(v1);
        b.collect(v2);
        let exec = ctx.optimize(b.build().unwrap()).unwrap();
        let scans = exec
            .physical
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, rheem_core::PhysicalOp::CollectionSource { .. }))
            .count();
        assert_eq!(scans, 1);
    }

    #[test]
    fn detect_all_rejects_empty_rule_sets() {
        assert!(detect_all(&ctx(), dirty(), &[], DetectionStrategy::SingleUdf).is_err());
    }
}
