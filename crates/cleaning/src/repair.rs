//! Fix generation (`GenFix`) and repair.
//!
//! BigDansing's fifth operator, `GenFix`, emits candidate fixes per
//! violation; a repair phase then chooses a consistent assignment. We
//! implement the standard equivalence-class repair for equality rules
//! (cells connected by violations form a class; the class adopts its most
//! frequent value) and a bound-tightening repair for the inequality rule.

use std::collections::HashMap;

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};

use crate::rules::{CompOp, DenialConstraint, Fix, Violation};

/// Generate candidate fixes for a batch of violations (the `GenFix`
/// operator). For equality rules each side may adopt the other's
/// right-hand-side value; for inequality rules the lower-taxed side may
/// raise its rate to the other's.
pub fn gen_fixes(
    data: &[Record],
    rule: &DenialConstraint,
    violations: &[Violation],
) -> Result<Vec<Fix>> {
    let by_id: HashMap<i64, &Record> = data
        .iter()
        .map(|r| Ok((r.int(rule.id_column)?, r)))
        .collect::<Result<_>>()?;
    let mut fixes = Vec::new();
    for v in violations {
        let (t1, t2) = (
            by_id
                .get(&v.t1)
                .ok_or_else(|| RheemError::DatasetNotFound(format!("record {}", v.t1)))?,
            by_id
                .get(&v.t2)
                .ok_or_else(|| RheemError::DatasetNotFound(format!("record {}", v.t2)))?,
        );
        for p in &rule.predicates {
            match p.op {
                CompOp::Neq => {
                    // Either side may adopt the other's value.
                    fixes.push(Fix {
                        rule: rule.name.clone(),
                        record_id: v.t1,
                        column: p.left,
                        suggestion: t2.get(p.right)?.clone(),
                    });
                    fixes.push(Fix {
                        rule: rule.name.clone(),
                        record_id: v.t2,
                        column: p.right,
                        suggestion: t1.get(p.left)?.clone(),
                    });
                }
                CompOp::Lt => {
                    // t1.col < t2.col contributed to the violation: raise it.
                    fixes.push(Fix {
                        rule: rule.name.clone(),
                        record_id: v.t1,
                        column: p.left,
                        suggestion: t2.get(p.right)?.clone(),
                    });
                }
                CompOp::Gt => {
                    fixes.push(Fix {
                        rule: rule.name.clone(),
                        record_id: v.t2,
                        column: p.right,
                        suggestion: t1.get(p.left)?.clone(),
                    });
                }
                CompOp::Eq => {} // the join condition, not a repairable cell
            }
        }
    }
    Ok(fixes)
}

/// Apply a set of chosen fixes (later fixes win on the same cell).
pub fn apply_fixes(data: &[Record], rule: &DenialConstraint, fixes: &[Fix]) -> Result<Vec<Record>> {
    let mut chosen: HashMap<(i64, usize), Value> = HashMap::new();
    for f in fixes {
        chosen.insert((f.record_id, f.column), f.suggestion.clone());
    }
    data.iter()
        .map(|r| {
            let id = r.int(rule.id_column)?;
            let fields: Vec<Value> = r
                .fields()
                .iter()
                .enumerate()
                .map(|(col, v)| chosen.get(&(id, col)).cloned().unwrap_or_else(|| v.clone()))
                .collect();
            Ok(Record::new(fields))
        })
        .collect()
}

/// Holistic repair for FD-shaped rules (`t1.k = t2.k ∧ t1.v ≠ t2.v`): every
/// equivalence class (records sharing the key) adopts its most frequent
/// right-hand-side value. The result provably has zero violations of the
/// rule.
pub fn repair_fd(data: &[Record], rule: &DenialConstraint) -> Result<Vec<Record>> {
    let key_col = rule.blocking_column().ok_or_else(|| {
        RheemError::InvalidPlan(format!(
            "rule {} has no equality predicate; not FD-shaped",
            rule.name
        ))
    })?;
    let value_cols: Vec<usize> = rule
        .predicates
        .iter()
        .filter(|p| p.op == CompOp::Neq && p.left == p.right)
        .map(|p| p.left)
        .collect();
    if value_cols.is_empty() {
        return Err(RheemError::InvalidPlan(format!(
            "rule {} has no ≠ predicate; not FD-shaped",
            rule.name
        )));
    }

    // Majority value per (key, value-column).
    let mut counts: HashMap<(Value, usize, Value), usize> = HashMap::new();
    for r in data {
        let k = r.get(key_col)?.clone();
        for &vc in &value_cols {
            *counts
                .entry((k.clone(), vc, r.get(vc)?.clone()))
                .or_insert(0) += 1;
        }
    }
    let mut majority: HashMap<(Value, usize), (Value, usize)> = HashMap::new();
    for ((k, vc, v), n) in counts {
        match majority.get(&(k.clone(), vc)) {
            // Deterministic tie-break: higher count wins, then smaller value.
            Some((best_v, best_n)) if *best_n > n || (*best_n == n && *best_v <= v) => {}
            _ => {
                majority.insert((k, vc), (v, n));
            }
        }
    }

    data.iter()
        .map(|r| {
            let k = r.get(key_col)?.clone();
            let fields: Vec<Value> = r
                .fields()
                .iter()
                .enumerate()
                .map(|(col, v)| {
                    if value_cols.contains(&col) {
                        majority
                            .get(&(k.clone(), col))
                            .map(|(mv, _)| mv.clone())
                            .unwrap_or_else(|| v.clone())
                    } else {
                        v.clone()
                    }
                })
                .collect();
            Ok(Record::new(fields))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{count_violations, detect, DetectionStrategy};
    use rheem_core::rec;
    use rheem_core::RheemContext;
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    fn fd() -> DenialConstraint {
        DenialConstraint::functional_dependency("fd", 0, 1, 2)
    }

    fn data() -> Vec<Record> {
        vec![
            rec![0i64, 10i64, "CA"],
            rec![1i64, 10i64, "CA"],
            rec![2i64, 10i64, "TX"],
            rec![3i64, 20i64, "NY"],
        ]
    }

    #[test]
    fn gen_fixes_proposes_both_directions() {
        let (violations, _) =
            detect(&ctx(), data(), &fd(), DetectionStrategy::OperatorPipeline).unwrap();
        let fixes = gen_fixes(&data(), &fd(), &violations).unwrap();
        // 4 ordered violations × 2 fixes each.
        assert_eq!(fixes.len(), 8);
        assert!(fixes
            .iter()
            .any(|f| f.record_id == 2 && f.suggestion == Value::str("CA")));
        assert!(fixes
            .iter()
            .any(|f| f.record_id == 0 && f.suggestion == Value::str("TX")));
    }

    #[test]
    fn majority_repair_eliminates_all_fd_violations() {
        let repaired = repair_fd(&data(), &fd()).unwrap();
        // Majority in zip 10 is CA: record 2 gets repaired.
        assert_eq!(repaired[2].str(2).unwrap(), "CA");
        assert_eq!(repaired[3].str(2).unwrap(), "NY"); // untouched
        let n =
            count_violations(&ctx(), repaired, &fd(), DetectionStrategy::OperatorPipeline).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn repair_on_generated_tax_data_converges() {
        use rheem_datagen::tax::{self, columns, TaxConfig};
        let (data, _) = tax::generate(&TaxConfig::new(600).with_error_rates(0.08, 0.0));
        let rule = DenialConstraint::functional_dependency(
            "zip-state",
            columns::ID,
            columns::ZIP,
            columns::STATE,
        );
        let before = count_violations(
            &ctx(),
            data.clone(),
            &rule,
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        assert!(before > 0);
        let repaired = repair_fd(&data, &rule).unwrap();
        let after =
            count_violations(&ctx(), repaired, &rule, DetectionStrategy::OperatorPipeline).unwrap();
        assert_eq!(after, 0, "repair left violations ({before} before)");
    }

    #[test]
    fn applying_all_inequality_fixes_reduces_violations() {
        let rule = DenialConstraint::inequality("ineq", 0, 1, 2);
        let records = vec![
            rec![0i64, 100_000.0, 3.0],
            rec![1i64, 50_000.0, 12.0],
            rec![2i64, 20_000.0, 10.0],
        ];
        let (violations, _) = detect(
            &ctx(),
            records.clone(),
            &rule,
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        assert_eq!(violations.len(), 2); // (0,1), (0,2)
        let fixes = gen_fixes(&records, &rule, &violations).unwrap();
        let repaired = apply_fixes(&records, &rule, &fixes).unwrap();
        let after =
            count_violations(&ctx(), repaired, &rule, DetectionStrategy::OperatorPipeline).unwrap();
        assert!(after < violations.len());
    }

    #[test]
    fn repair_fd_rejects_non_fd_rules() {
        let ineq = DenialConstraint::inequality("i", 0, 1, 2);
        assert!(repair_fd(&data(), &ineq).is_err());
    }

    #[test]
    fn gen_fixes_fails_on_unknown_ids() {
        let v = vec![Violation {
            rule: "fd".into(),
            t1: 99,
            t2: 0,
        }];
        assert!(gen_fixes(&data(), &fd(), &v).is_err());
    }
}
