//! # rheem-cleaning
//!
//! BigDansing — "a Big Data Cleansing \[system\] on top of RHEEM" — the
//! proof-of-concept application the paper develops in §5. Data quality
//! rules are two-tuple denial constraints; detection compiles the five
//! BigDansing logical operators (`Scope`, `Block`, `Iterate`, `Detect`,
//! `GenFix`) into RHEEM plans under four physical strategies, including
//! the [`iejoin`] extension operator highlighted by the paper.
//!
//! * [`rules`] — denial constraints, violations, fixes;
//! * [`mod@detect`] — the detection strategies of Figure 3;
//! * [`iejoin`] — the IEJoin inequality self-join (PVLDB'15) as a
//!   [`rheem_core::CustomPhysicalOp`];
//! * [`repair`] — `GenFix` and equivalence-class repair.

#![warn(missing_docs)]

pub mod detect;
pub mod iejoin;
pub mod repair;
pub mod rules;
pub mod unary;

pub use detect::{build_detection_plan, count_violations, detect, detect_all, DetectionStrategy};
pub use iejoin::{ie_self_join, IeJoinOp};
pub use repair::{apply_fixes, gen_fixes, repair_fd};
pub use rules::{CompOp, DcPredicate, DenialConstraint, Fix, Violation};
pub use unary::{not_null, range_check, UnaryConstraint, UnaryPredicate};
