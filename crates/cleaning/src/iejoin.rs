//! IEJoin — the fast inequality self-join (Khayyat et al., PVLDB 2015).
//!
//! The paper presents IEJoin as its extensibility showcase: "as an example
//! of extensibility, we extended the set of physical RHEEM operators with
//! a new join operator (called IEJoin) to boost performance" (§5.1), which
//! turned a 22-hour baseline into minutes. [`IeJoinOp`] is that operator:
//! a [`CustomPhysicalOp`] plugged into the physical algebra from outside
//! the core crate, exactly as §5.2 describes application developers doing.
//!
//! Algorithm (self-join, two strict inequality predicates
//! `t1.a > t2.a ∧ t1.b < t2.b`, other strict combinations reduced to it by
//! negation):
//!
//! 1. sort positions by `a` ascending (`L1`);
//! 2. visit tuples in ascending-`b` order, in groups of equal `b`;
//! 3. for each visited group member `t`, every *previously visited* tuple
//!    `s` (hence `s.b < t.b`) whose `L1` position lies strictly above the
//!    last tuple with `a = t.a` satisfies `s.a > t.a` — read them off a
//!    bit array;
//! 4. set the group's bits afterwards (strictness on `b`).
//!
//! `O(n log n + output)` instead of the cross product's `O(n²)`.

use rheem_core::data::{Dataset, Record};
use rheem_core::error::{Result, RheemError};
use rheem_core::physical::CustomPhysicalOp;

use crate::rules::{CompOp, DenialConstraint, Violation};

/// A growable bit set with iteration over set bits from a position.
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Indices of set bits in `[from, n)`.
    fn iter_from(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        let start_word = from / 64;
        let mask = !0u64 << (from % 64);
        self.words[start_word..]
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let mut word = w;
                if wi == 0 {
                    word &= mask;
                }
                std::iter::from_fn(move || {
                    if word == 0 {
                        None
                    } else {
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        Some((start_word + wi) * 64 + bit)
                    }
                })
            })
    }
}

/// Find all ordered pairs `(s, t)` with `s.a > t.a ∧ s.b < t.b` among
/// `(id, a, b)` triples. Returns `(s.id, t.id)` pairs.
pub fn ie_self_join_canonical(tuples: &[(i64, f64, f64)]) -> Vec<(i64, i64)> {
    let n = tuples.len();
    if n < 2 {
        return Vec::new();
    }
    // L1: positions sorted by a ascending (id tiebreak for determinism).
    let mut l1: Vec<usize> = (0..n).collect();
    l1.sort_by(|&i, &j| {
        tuples[i]
            .1
            .total_cmp(&tuples[j].1)
            .then(tuples[i].0.cmp(&tuples[j].0))
    });
    let a_sorted: Vec<f64> = l1.iter().map(|&i| tuples[i].1).collect();
    let mut pos1 = vec![0usize; n];
    for (p, &i) in l1.iter().enumerate() {
        pos1[i] = p;
    }
    // L2: positions sorted by b ascending.
    let mut l2: Vec<usize> = (0..n).collect();
    l2.sort_by(|&i, &j| {
        tuples[i]
            .2
            .total_cmp(&tuples[j].2)
            .then(tuples[i].0.cmp(&tuples[j].0))
    });

    // First position in L1 with a > x (upper bound).
    let upper_bound = |x: f64| a_sorted.partition_point(|&a| a.total_cmp(&x).is_le());

    let mut bits = BitSet::new(n);
    let mut out = Vec::new();
    let mut g = 0usize;
    while g < n {
        // The group of equal-b tuples starting at g.
        let b_val = tuples[l2[g]].2;
        let mut g_end = g;
        while g_end < n && tuples[l2[g_end]].2.total_cmp(&b_val).is_eq() {
            g_end += 1;
        }
        // Query phase: partners of each group member among visited tuples.
        for &t in &l2[g..g_end] {
            let from = upper_bound(tuples[t].1);
            for s_pos in bits.iter_from(from) {
                let s = l1[s_pos];
                out.push((tuples[s].0, tuples[t].0));
            }
        }
        // Visit phase: mark the group.
        for &t in &l2[g..g_end] {
            bits.set(pos1[t]);
        }
        g = g_end;
    }
    out
}

/// Run an IEJoin-eligible denial constraint over records, returning the
/// violating id pairs.
pub fn ie_self_join(records: &[Record], rule: &DenialConstraint) -> Result<Vec<(i64, i64)>> {
    let (p1, p2) = rule.iejoin_predicates().ok_or_else(|| {
        RheemError::InvalidPlan(format!(
            "rule {} is not IEJoin-eligible (needs exactly two strict inequality predicates)",
            rule.name
        ))
    })?;
    // Canonical form wants (Gt on a, Lt on b): flip signs where needed.
    let a_sign = if p1.op == CompOp::Gt { 1.0 } else { -1.0 };
    let b_sign = if p2.op == CompOp::Lt { 1.0 } else { -1.0 };
    let mut tuples = Vec::with_capacity(records.len());
    for r in records {
        tuples.push((
            r.int(rule.id_column)?,
            a_sign * r.get(p1.left)?.as_float()?,
            b_sign * r.get(p2.left)?.as_float()?,
        ));
    }
    Ok(ie_self_join_canonical(&tuples))
}

/// The IEJoin physical operator: consumes scoped records, produces
/// violation records (`[rule, t1, t2]`).
pub struct IeJoinOp {
    rule: DenialConstraint,
}

impl IeJoinOp {
    /// Wrap an IEJoin-eligible rule; errors otherwise.
    pub fn new(rule: DenialConstraint) -> Result<Self> {
        if rule.iejoin_predicates().is_none() {
            return Err(RheemError::InvalidPlan(format!(
                "rule {} is not IEJoin-eligible",
                rule.name
            )));
        }
        Ok(IeJoinOp { rule })
    }
}

impl CustomPhysicalOp for IeJoinOp {
    fn name(&self) -> &str {
        "IEJoin"
    }

    fn arity(&self) -> usize {
        1
    }

    fn execute(&self, inputs: &[Dataset]) -> Result<Dataset> {
        let pairs = ie_self_join(inputs[0].records(), &self.rule)?;
        Ok(pairs
            .into_iter()
            .map(|(t1, t2)| {
                Violation {
                    rule: self.rule.name.clone(),
                    t1,
                    t2,
                }
                .to_record()
            })
            .collect())
    }

    fn output_cardinality(&self, input_cards: &[f64]) -> f64 {
        // Violations are usually sparse; assume 1% of the pair space.
        let n = input_cards.first().copied().unwrap_or(0.0);
        (n * n * 0.01).max(1.0)
    }

    fn cost_factor(&self) -> f64 {
        // Sorting-dominated: a few passes over the input.
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rheem_core::rec;

    /// Reference O(n²) implementation.
    fn brute_force(tuples: &[(i64, f64, f64)]) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        for s in tuples {
            for t in tuples {
                if s.0 != t.0 && s.1 > t.1 && s.2 < t.2 {
                    out.push((s.0, t.0));
                }
            }
        }
        out
    }

    fn sorted(mut v: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_on_small_example() {
        // Classic salary/tax example.
        let tuples = vec![
            (1, 100.0, 5.0), // earns most, lowest rate: violates vs all below
            (2, 50.0, 10.0),
            (3, 60.0, 8.0),
            (4, 10.0, 20.0),
        ];
        assert_eq!(
            sorted(ie_self_join_canonical(&tuples)),
            sorted(brute_force(&tuples))
        );
    }

    #[test]
    fn handles_ties_strictly() {
        // Equal a or equal b must never violate (strict operators).
        let tuples = vec![(1, 5.0, 1.0), (2, 5.0, 2.0), (3, 4.0, 1.0)];
        let pairs = sorted(ie_self_join_canonical(&tuples));
        assert_eq!(pairs, sorted(brute_force(&tuples)));
        // (1,3): a 5>4 but b 1<1 false. (2,3): 5>4, 2<1 false... wait 2>1.
        // brute force is the oracle; just make sure no tie-pair sneaks in.
        for (s, t) in &pairs {
            let s = tuples.iter().find(|x| x.0 == *s).unwrap();
            let t = tuples.iter().find(|x| x.0 == *t).unwrap();
            assert!(s.1 > t.1 && s.2 < t.2);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(ie_self_join_canonical(&[]).is_empty());
        assert!(ie_self_join_canonical(&[(1, 1.0, 1.0)]).is_empty());
    }

    #[test]
    fn rule_driven_join_and_op() {
        // Layout: [id, salary, rate].
        let rule = DenialConstraint::inequality("ineq", 0, 1, 2);
        let records = vec![
            rec![1i64, 100_000.0, 5.0],
            rec![2i64, 30_000.0, 11.5],
            rec![3i64, 60_000.0, 13.0],
        ];
        let pairs = ie_self_join(&records, &rule).unwrap();
        assert_eq!(sorted(pairs), vec![(1, 2), (1, 3)]);

        let op = IeJoinOp::new(rule).unwrap();
        let out = op.execute(&[Dataset::new(records)]).unwrap();
        assert_eq!(out.len(), 2);
        let v = Violation::from_record(&out.records()[0]).unwrap();
        assert_eq!(v.rule, "ineq");
    }

    #[test]
    fn lt_gt_combination_via_negation() {
        // Rule ¬(t1.a < t2.a ∧ t1.b > t2.b) — the mirror image.
        let rule = DenialConstraint::new(
            "mirror",
            0,
            vec![
                crate::rules::DcPredicate::new(1, CompOp::Lt, 1),
                crate::rules::DcPredicate::new(2, CompOp::Gt, 2),
            ],
        )
        .unwrap();
        let records = vec![rec![1i64, 1.0, 9.0], rec![2i64, 2.0, 3.0]];
        // t1=1: a 1<2 and b 9>3 → violation (1,2).
        let pairs = ie_self_join(&records, &rule).unwrap();
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    fn non_eligible_rule_is_rejected() {
        let fd = DenialConstraint::functional_dependency("fd", 0, 1, 2);
        assert!(IeJoinOp::new(fd.clone()).is_err());
        assert!(ie_self_join(&[], &fd).is_err());
    }

    proptest! {
        /// IEJoin equals brute force on arbitrary inputs (with ties and
        /// negatives), up to pair order.
        #[test]
        fn prop_matches_brute_force(
            values in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0), 0..120)
        ) {
            let tuples: Vec<(i64, f64, f64)> = values
                .into_iter()
                .enumerate()
                // Round to one decimal to force plenty of ties.
                .map(|(i, (a, b))| (i as i64, (a * 10.0).round() / 10.0, (b * 10.0).round() / 10.0))
                .collect();
            prop_assert_eq!(
                sorted(ie_self_join_canonical(&tuples)),
                sorted(brute_force(&tuples))
            );
        }
    }
}
