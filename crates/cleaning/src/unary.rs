//! Unary (single-tuple) constraints.
//!
//! Not every data quality rule compares tuple pairs: domain checks ("no
//! negative salary", "state must be two letters") are denial constraints
//! over a single tuple. They compile to a trivially parallel
//! `Scope → Detect` plan — a `FlatMap` emitting one violation per dirty
//! record — and complement the two-tuple rules of [`crate::rules`].

use std::sync::Arc;

use rheem_core::data::{Record, Value};
use rheem_core::error::{Result, RheemError};
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::udf::FlatMapUdf;
use rheem_core::{JobResult, RheemContext};

use crate::rules::{CompOp, Violation};

/// One predicate `t.column ⟨op⟩ literal`.
#[derive(Clone, Debug)]
pub struct UnaryPredicate {
    /// Attribute of the tuple.
    pub column: usize,
    /// Comparison operator.
    pub op: CompOp,
    /// Literal to compare against.
    pub value: Value,
}

impl UnaryPredicate {
    /// Construct a predicate.
    pub fn new(column: usize, op: CompOp, value: impl Into<Value>) -> Self {
        UnaryPredicate {
            column,
            op,
            value: value.into(),
        }
    }

    /// Evaluate on one tuple.
    pub fn eval(&self, t: &Record) -> Result<bool> {
        Ok(self.op.eval(t.get(self.column)?, &self.value))
    }
}

/// A single-tuple denial constraint: a tuple satisfying *all* predicates is
/// a violation.
#[derive(Clone, Debug)]
pub struct UnaryConstraint {
    /// Rule name.
    pub name: String,
    /// Column holding the record id.
    pub id_column: usize,
    /// The conjunction of predicates.
    pub predicates: Vec<UnaryPredicate>,
}

impl UnaryConstraint {
    /// Build a rule; at least one predicate is required.
    pub fn new(
        name: impl Into<String>,
        id_column: usize,
        predicates: Vec<UnaryPredicate>,
    ) -> Result<Self> {
        if predicates.is_empty() {
            return Err(RheemError::InvalidPlan(
                "a unary constraint needs at least one predicate".into(),
            ));
        }
        Ok(UnaryConstraint {
            name: name.into(),
            id_column,
            predicates,
        })
    }

    /// True iff the tuple violates the rule.
    pub fn violates(&self, t: &Record) -> Result<bool> {
        for p in &self.predicates {
            if !p.eval(t)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Build the detection plan (`Scope → Detect` as a flat map).
    pub fn build_detection_plan(&self, data: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
        let rule = self.clone();
        let mut b = PlanBuilder::new();
        let src = b.collection(format!("{}-input", self.name), data);
        let detected = b.flat_map(
            src,
            FlatMapUdf::new(format!("detect-{}", self.name), move |t: &Record| {
                match (rule.violates(t), t.int(rule.id_column)) {
                    (Ok(true), Ok(id)) => vec![Violation {
                        rule: rule.name.clone(),
                        t1: id,
                        t2: id,
                    }
                    .to_record()],
                    _ => Vec::new(),
                }
            })
            .with_fanout(0.05),
        );
        let sink = b.collect(detected);
        Ok((b.build()?, sink))
    }

    /// Detect violations end to end.
    pub fn detect(
        &self,
        ctx: &RheemContext,
        data: Vec<Record>,
    ) -> Result<(Vec<Violation>, JobResult)> {
        let (plan, sink) = self.build_detection_plan(data)?;
        let result = ctx.execute(plan)?;
        let mut violations: Vec<Violation> = result.outputs[&sink]
            .iter()
            .map(Violation::from_record)
            .collect::<Result<_>>()?;
        violations.sort();
        Ok((violations, result))
    }
}

/// Convenience: the "attribute must not be null" rule.
pub fn not_null(name: impl Into<String>, id_column: usize, column: usize) -> UnaryConstraint {
    UnaryConstraint {
        name: name.into(),
        id_column,
        predicates: vec![UnaryPredicate {
            column,
            op: CompOp::Eq,
            value: Value::Null,
        }],
    }
}

/// Convenience: `column` must lie in `[lo, hi]` — violated outside.
///
/// Encoded as two rules (below-lo OR above-hi cannot be a conjunction), so
/// this returns both; run each and union the violations.
pub fn range_check(
    name: impl Into<String>,
    id_column: usize,
    column: usize,
    lo: f64,
    hi: f64,
) -> (UnaryConstraint, UnaryConstraint) {
    let name = name.into();
    (
        UnaryConstraint {
            name: format!("{name}-below"),
            id_column,
            predicates: vec![UnaryPredicate::new(column, CompOp::Lt, lo)],
        },
        UnaryConstraint {
            name: format!("{name}-above"),
            id_column,
            predicates: vec![UnaryPredicate::new(column, CompOp::Gt, hi)],
        },
    )
}

/// The `Arc` alias keeps signatures readable for rule collections.
pub type SharedUnary = Arc<UnaryConstraint>;

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;
    use rheem_platforms::JavaPlatform;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// Layout: [id, salary].
    fn data() -> Vec<Record> {
        vec![
            rec![0i64, 50_000.0],
            rec![1i64, -10.0],
            Record::new(vec![Value::Int(2), Value::Null]),
            rec![3i64, 9_000_000.0],
        ]
    }

    #[test]
    fn negative_salary_rule() {
        let rule = UnaryConstraint::new(
            "no-negative-salary",
            0,
            vec![UnaryPredicate::new(1, CompOp::Lt, 0.0)],
        )
        .unwrap();
        let (violations, _) = rule.detect(&ctx(), data()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].t1, 1);
        assert_eq!(violations[0].t1, violations[0].t2);
    }

    #[test]
    fn not_null_rule() {
        let rule = not_null("salary-present", 0, 1);
        let (violations, _) = rule.detect(&ctx(), data()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].t1, 2);
    }

    #[test]
    fn range_check_pair() {
        let (below, above) = range_check("plausible-salary", 0, 1, 0.0, 1_000_000.0);
        let (v1, _) = below.detect(&ctx(), data()).unwrap();
        let (v2, _) = above.detect(&ctx(), data()).unwrap();
        assert_eq!(v1.len(), 1); // the negative salary
        assert_eq!(v2.len(), 1); // the 9M salary
        assert_ne!(v1[0].t1, v2[0].t1);
    }

    #[test]
    fn conjunction_requires_all_predicates() {
        // Violation only when salary < 0 AND id > 0 (nonsense rule, tests
        // the conjunction).
        let rule = UnaryConstraint::new(
            "conj",
            0,
            vec![
                UnaryPredicate::new(1, CompOp::Lt, 0.0),
                UnaryPredicate::new(0, CompOp::Gt, 100i64),
            ],
        )
        .unwrap();
        let (violations, _) = rule.detect(&ctx(), data()).unwrap();
        assert!(violations.is_empty());
    }

    #[test]
    fn empty_predicates_rejected() {
        assert!(UnaryConstraint::new("x", 0, vec![]).is_err());
    }
}
