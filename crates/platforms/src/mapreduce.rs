//! The MapReduce-like platform: batch execution with disk-materialized
//! phase boundaries.
//!
//! Substitution for Hadoop MapReduce (see DESIGN.md). Its cost structure —
//! the reason Mahout-era iterative ML was slow enough that "all ML
//! algorithms initially implemented in Hadoop had to be re-implemented in
//! Spark" (§2) — comes from two real mechanisms reproduced here:
//!
//! * a large fixed **job setup** overhead per task atom;
//! * every *phase boundary* (each wide operator, and every loop iteration)
//!   **spills its input to local disk and reads it back**, doing real file
//!   I/O in the native codec.
//!
//! Narrow operators still run on parallel "mapper" threads.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rheem_core::cost::{LinearCostModel, PlatformCostModel};
use rheem_core::data::{Dataset, Record};
use rheem_core::error::{Result, RheemError};
use rheem_core::kernels;
use rheem_core::physical::PhysicalOp;
use rheem_core::plan::{NodeId, PhysicalPlan, TaskAtom};
use rheem_core::platform::{AtomInputs, AtomResult, ExecutionContext, Platform, ProcessingProfile};
use rheem_core::rec;
use rheem_storage::codec;

use crate::config::OverheadConfig;
use crate::partition::{chunk, gather, hash_partition, run_partitions_timed};

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Disk-phased batch execution engine.
pub struct MapReduceLikePlatform {
    workers: usize,
    overheads: OverheadConfig,
    spill_dir: PathBuf,
    cost: Arc<LinearCostModel>,
}

impl MapReduceLikePlatform {
    /// A platform with `workers` mapper threads, Hadoop-flavoured defaults
    /// (120 ms job setup, 8 ms per phase, both slept), spilling under the
    /// system temp directory.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        MapReduceLikePlatform {
            workers,
            overheads: OverheadConfig::slept(Duration::from_millis(120), Duration::from_millis(8)),
            spill_dir: std::env::temp_dir().join("rheem_mr_spills"),
            cost: Arc::new(LinearCostModel {
                per_unit: 3e-4,
                speedup: (workers as f64 / 2.0).max(1.0),
                startup: 1500.0,
                shuffle_surcharge: 2e-3, // disk write + read per record
                hash_engine_speedup: 1.0,
            }),
        }
    }

    /// Override the overhead configuration.
    pub fn with_overheads(mut self, overheads: OverheadConfig) -> Self {
        self.overheads = overheads;
        self
    }

    /// Override the spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = dir.into();
        self
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: LinearCostModel) -> Self {
        self.cost = Arc::new(cost);
        self
    }

    /// Write records to a spill file and read them back (a real phase
    /// boundary). Returns the round-tripped records.
    fn spill_round_trip(&self, records: Vec<Record>) -> Result<Vec<Record>> {
        std::fs::create_dir_all(&self.spill_dir)?;
        let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = self
            .spill_dir
            .join(format!("spill_{}_{id}.rrec", std::process::id()));
        let text = codec::encode_batch(&records);
        std::fs::write(&path, &text)?;
        let read_back = std::fs::read_to_string(&path)?;
        let out = codec::decode_batch(&read_back)?;
        std::fs::remove_file(&path).ok();
        Ok(out)
    }
}

impl Platform for MapReduceLikePlatform {
    fn name(&self) -> &str {
        "mapreduce"
    }

    fn profile(&self) -> ProcessingProfile {
        ProcessingProfile::DiskBatch
    }

    fn supports(&self, _op: &PhysicalOp) -> bool {
        true
    }

    fn cost_model(&self) -> Arc<dyn PlatformCostModel> {
        self.cost.clone()
    }

    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult> {
        let startup = self.overheads.pay_startup();
        let mut run = MrRun {
            platform: self,
            ctx,
            overhead_ms: startup,
            elapsed_ms: startup,
            records_processed: 0,
            observations: Vec::new(),
        };
        // Channel-aware boundary ingest: a boundary dataset arriving on a
        // non-memory channel pays its simulated materialization cost (for
        // this disk-bound platform typically a File deserialize) up front.
        for bi in &atom.inputs {
            if let Some(d) = inputs.get(&(bi.consumer, bi.slot)) {
                let ms = self.overheads.channel_ingest_ms(bi.channel, d.len());
                run.overhead_ms += ms;
                run.elapsed_ms += ms;
            }
        }
        let mut results = run.run_nodes(plan, &atom.nodes, Some(inputs), None, &atom.outputs)?;
        let mut outputs = HashMap::new();
        for n in &atom.outputs {
            let records = results.remove(n).ok_or_else(|| RheemError::Execution {
                platform: "mapreduce".into(),
                message: format!("atom output node {n} was not produced"),
            })?;
            outputs.insert(*n, Dataset::new(records));
        }
        Ok(AtomResult {
            outputs,
            records_processed: run.records_processed,
            simulated_overhead_ms: run.overhead_ms,
            simulated_elapsed_ms: run.elapsed_ms,
            node_observations: run.observations,
        })
    }
}

struct MrRun<'a> {
    platform: &'a MapReduceLikePlatform,
    ctx: &'a ExecutionContext,
    overhead_ms: f64,
    /// Simulated elapsed: overheads + serial phase I/O + per-wave critical
    /// path of the parallel mapper/reducer tasks.
    elapsed_ms: f64,
    records_processed: u64,
    /// Per-kernel observations (top-level nodes only; loop bodies are
    /// charged to their `Loop` node).
    observations: Vec<rheem_core::observe::NodeObservation>,
}

impl MrRun<'_> {
    /// A phase boundary: charge the overhead and round-trip through disk.
    /// Disk I/O is charged serially — HDFS-era clusters were I/O-bound at
    /// phase boundaries, which is exactly the profile this platform models.
    fn phase(&mut self, records: Vec<Record>) -> Result<Vec<Record>> {
        let stage = self.platform.overheads.pay_stage();
        self.overhead_ms += stage;
        self.elapsed_ms += stage;
        let t = std::time::Instant::now();
        let out = self.platform.spill_round_trip(records)?;
        self.elapsed_ms += t.elapsed().as_secs_f64() * 1e3;
        Ok(out)
    }

    /// Execute `nodes` of `plan`; `keep` lists nodes whose records the
    /// caller reads from the returned map (atom outputs, the loop
    /// terminal) — everything else is *moved* into its last consumer
    /// instead of deep-cloned.
    fn run_nodes(
        &mut self,
        plan: &PhysicalPlan,
        nodes: &[NodeId],
        boundary: Option<&AtomInputs>,
        loop_state: Option<&Vec<Record>>,
        keep: &[NodeId],
    ) -> Result<HashMap<NodeId, Vec<Record>>> {
        // Count in-fragment consumers so each intermediate can be moved
        // (not cloned) into the consumer that uses it last.
        let mut remaining: HashMap<NodeId, usize> = HashMap::new();
        for &id in nodes {
            for producer in &plan.node(id).inputs {
                *remaining.entry(*producer).or_insert(0) += 1;
            }
        }
        let mut results: HashMap<NodeId, Vec<Record>> = HashMap::new();
        for &id in nodes {
            // Cancellation checkpoint between MR rounds: a cancelled job
            // stops without scheduling the next round.
            self.ctx.check_cancelled()?;
            let node = plan.node(id);
            let mut inputs: Vec<Vec<Record>> = Vec::with_capacity(node.inputs.len());
            for (slot, producer) in node.inputs.iter().enumerate() {
                let recs = if results.contains_key(producer) {
                    let uses = remaining.get_mut(producer).expect("consumers counted");
                    *uses -= 1;
                    if *uses == 0 && !keep.contains(producer) {
                        results.remove(producer).expect("present")
                    } else {
                        results[producer].clone()
                    }
                } else if let Some(d) = boundary.and_then(|b| b.get(&(id, slot))) {
                    d.records().to_vec()
                } else {
                    return Err(RheemError::InvalidPlan(format!(
                        "node {id} input slot {slot} is not available"
                    )));
                };
                inputs.push(recs);
            }
            let before_ms = self.elapsed_ms;
            let out = self.exec_op(&node.op, inputs, loop_state)?;
            self.records_processed += out.len() as u64;
            // Observe only top-level nodes: loop-body node ids belong to the
            // body fragment and whole-loop time lands on the Loop node.
            if boundary.is_some() {
                self.observations
                    .push(rheem_core::observe::NodeObservation {
                        node: id,
                        op: node.op.name(),
                        records_out: out.len() as u64,
                        elapsed_ms: self.elapsed_ms - before_ms,
                        // Mapper/reducer partitions are this platform's
                        // parallel unit; per-partition kernels stay
                        // sequential.
                        morsels: 1,
                    });
            }
            results.insert(id, out);
        }
        Ok(results)
    }

    /// Run a narrow op as one wave of parallel mapper tasks; the simulated
    /// elapsed time is the wave's critical path.
    fn mappers<F>(&mut self, records: Vec<Record>, f: F) -> Result<Vec<Record>>
    where
        F: Fn(Vec<Record>) -> Result<Vec<Record>> + Send + Sync,
    {
        let parts = chunk(&records, self.platform.workers);
        let (out, max_ms) = run_partitions_timed(parts, |_, p| f(p))?;
        self.elapsed_ms += max_ms;
        Ok(gather(out))
    }

    /// Run reducer tasks over already-shuffled partitions.
    fn reducers<F>(&mut self, parts: Vec<Vec<Record>>, f: F) -> Result<Vec<Record>>
    where
        F: Fn(Vec<Record>) -> Result<Vec<Record>> + Send + Sync,
    {
        let (out, max_ms) = run_partitions_timed(parts, |_, p| f(p))?;
        self.elapsed_ms += max_ms;
        Ok(gather(out))
    }

    fn exec_op(
        &mut self,
        op: &PhysicalOp,
        mut inputs: Vec<Vec<Record>>,
        loop_state: Option<&Vec<Record>>,
    ) -> Result<Vec<Record>> {
        let take0 = |inputs: &mut Vec<Vec<Record>>| std::mem::take(&mut inputs[0]);
        let out = match op {
            PhysicalOp::CollectionSource { data, .. } => data.records().to_vec(),
            PhysicalOp::StorageSource { dataset_id } => {
                self.ctx.storage()?.read(dataset_id)?.into_records()
            }
            PhysicalOp::LoopInput => loop_state
                .cloned()
                .ok_or_else(|| RheemError::InvalidPlan("LoopInput outside a loop body".into()))?,

            // Map phase: parallel mappers, no disk.
            PhysicalOp::Map(u) => {
                let u = u.clone();
                self.mappers(take0(&mut inputs), move |p| Ok(kernels::map(&p, &u)))?
            }
            PhysicalOp::FlatMap(u) => {
                let u = u.clone();
                self.mappers(take0(&mut inputs), move |p| Ok(kernels::flat_map(&p, &u)))?
            }
            PhysicalOp::Filter(u) => {
                let u = u.clone();
                // Mappers own their split: retain in place, no clone.
                self.mappers(take0(&mut inputs), move |p| {
                    Ok(kernels::filter_owned(p, &u))
                })?
            }
            PhysicalOp::Project { indices } => {
                let indices = indices.clone();
                self.mappers(take0(&mut inputs), move |p| kernels::project(&p, &indices))?
            }
            PhysicalOp::ChunkPipeline { stages } => {
                // Narrow: each mapper split becomes one columnar chunk and
                // runs the fused stage chain sequentially.
                let stages = stages.clone();
                let seq = kernels::parallel::KernelParallelism::sequential();
                self.mappers(take0(&mut inputs), move |p| {
                    kernels::parallel::run_pipeline(&p, &stages, &seq)
                })?
            }
            PhysicalOp::Sample { fraction, seed } => {
                // Single-threaded: position-indexed sampling must see global
                // offsets; Hadoop would do this in one mapper wave anyway.
                kernels::sample(&inputs[0], *fraction, *seed, 0)?
            }
            PhysicalOp::Limit { n } => kernels::limit(&inputs[0], *n),
            PhysicalOp::ZipWithId => kernels::zip_with_id(&inputs[0], 0)?,

            // Reduce phases: spill to disk, then shuffle + reduce in
            // parallel reducers.
            PhysicalOp::SortGroupBy { key, group } | PhysicalOp::HashGroupBy { key, group } => {
                let sort_based = matches!(op, PhysicalOp::SortGroupBy { .. });
                let spilled = self.phase(take0(&mut inputs))?;
                let parts = hash_partition(&spilled, key, self.platform.workers);
                let (key, group) = (key.clone(), group.clone());
                self.reducers(parts, move |p| {
                    let groups = if sort_based {
                        kernels::sort_group(&p, &key)
                    } else {
                        kernels::hash_group(&p, &key)
                    };
                    Ok(kernels::apply_group_map(&groups, &group))
                })?
            }
            PhysicalOp::ReduceByKey { key, reduce } => {
                // Combiner in the map phase, then the disk shuffle.
                let combined = {
                    let (key, reduce) = (key.clone(), reduce.clone());
                    self.mappers(take0(&mut inputs), move |p| {
                        Ok(kernels::reduce_by_key(&p, &key, &reduce))
                    })?
                };
                let spilled = self.phase(combined)?;
                let parts = hash_partition(&spilled, key, self.platform.workers);
                let (key, reduce) = (key.clone(), reduce.clone());
                self.reducers(parts, move |p| {
                    Ok(kernels::reduce_by_key(&p, &key, &reduce))
                })?
            }
            PhysicalOp::GlobalReduce { reduce } => {
                let spilled = self.phase(take0(&mut inputs))?;
                kernels::global_reduce(&spilled, reduce)
            }
            PhysicalOp::Sort { key, descending } => {
                let spilled = self.phase(take0(&mut inputs))?;
                kernels::sort(&spilled, key, *descending)
            }
            PhysicalOp::Distinct => {
                let spilled = self.phase(take0(&mut inputs))?;
                kernels::distinct(&spilled)
            }
            PhysicalOp::HashJoin {
                left_key,
                right_key,
            } => {
                let l = self.phase(std::mem::take(&mut inputs[0]))?;
                let r = self.phase(std::mem::take(&mut inputs[1]))?;
                kernels::hash_join(&l, &r, left_key, right_key)
            }
            PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            } => {
                let l = self.phase(std::mem::take(&mut inputs[0]))?;
                let r = self.phase(std::mem::take(&mut inputs[1]))?;
                kernels::sort_merge_join(&l, &r, left_key, right_key)
            }
            PhysicalOp::NestedLoopJoin { predicate, .. } => {
                let l = self.phase(std::mem::take(&mut inputs[0]))?;
                let r = self.phase(std::mem::take(&mut inputs[1]))?;
                let r = Arc::new(r);
                let predicate = predicate.clone();
                self.mappers(l, move |p| {
                    Ok(kernels::nested_loop_join(&p, &r, &predicate))
                })?
            }
            PhysicalOp::CrossProduct => {
                let l = self.phase(std::mem::take(&mut inputs[0]))?;
                let r = self.phase(std::mem::take(&mut inputs[1]))?;
                let r = Arc::new(r);
                self.mappers(l, move |p| Ok(kernels::cross_product(&p, &r)))?
            }
            PhysicalOp::Union => {
                let mut l = std::mem::take(&mut inputs[0]);
                l.extend(std::mem::take(&mut inputs[1]));
                l
            }

            PhysicalOp::Loop {
                body,
                condition,
                max_iterations,
                ..
            } => {
                // Iterative jobs on MapReduce: every iteration is a separate
                // job whose input and output hit the disk. This is the cost
                // profile that motivated Figure 2 and the Mahout→MLlib
                // migration discussed in §2.
                let mut state = take0(&mut inputs);
                let body_nodes: Vec<NodeId> = body.nodes().iter().map(|n| n.id).collect();
                let terminal = *body
                    .terminals()
                    .first()
                    .ok_or_else(|| RheemError::InvalidPlan("loop body has no terminal".into()))?;
                let mut iteration = 0u64;
                while iteration < *max_iterations && (condition.f)(iteration, &state) {
                    state = self.phase(state)?;
                    let mut outs =
                        self.run_nodes(body, &body_nodes, None, Some(&state), &[terminal])?;
                    state = outs.remove(&terminal).ok_or_else(|| {
                        RheemError::InvalidPlan("loop body terminal missing".into())
                    })?;
                    iteration += 1;
                }
                state
            }

            PhysicalOp::Custom(c) => {
                let datasets: Vec<Dataset> = inputs.drain(..).map(Dataset::new).collect();
                c.execute(&datasets)?.into_records()
            }

            PhysicalOp::CollectSink => take0(&mut inputs),
            PhysicalOp::CountSink => vec![rec![inputs[0].len() as i64]],
            PhysicalOp::StorageSink { dataset_id } => {
                let data = Dataset::new(take0(&mut inputs));
                self.ctx.storage()?.write(dataset_id, &data)?;
                data.into_records()
            }
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::data::Record;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
    use rheem_core::RheemContext;

    fn mr() -> MapReduceLikePlatform {
        MapReduceLikePlatform::new(4)
            .with_overheads(OverheadConfig::none())
            .with_spill_dir(
                std::env::temp_dir().join(format!("rheem_mr_test_{}", std::process::id())),
            )
    }

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(mr()))
    }

    fn sorted(mut v: Vec<Record>) -> Vec<Record> {
        v.sort();
        v
    }

    fn assert_matches_reference(plan: rheem_core::PhysicalPlan) {
        let reference =
            rheem_core::interpreter::run_plan(&plan, &rheem_core::ExecutionContext::new()).unwrap();
        let result = ctx().execute(plan).unwrap();
        assert_eq!(result.outputs.len(), reference.len());
        for (sink, data) in &result.outputs {
            assert_eq!(
                sorted(data.records().to_vec()),
                sorted(reference[sink].records().to_vec()),
                "sink {sink} differs from reference"
            );
        }
    }

    fn nums(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec![i]).collect()
    }

    #[test]
    fn mixed_pipeline_matches_reference_through_disk() {
        let mut b = PlanBuilder::new();
        let src = b.collection(
            "s",
            (0..300i64)
                .map(|i| rec![i % 7, i, format!("v{i}")])
                .collect(),
        );
        let g = b.group_by(
            src,
            KeyUdf::field(0),
            GroupMapUdf::new("sum", |k, members| {
                let total: i64 = members.iter().map(|r| r.int(1).unwrap()).sum();
                vec![Record::new(vec![k.clone(), total.into()])]
            }),
        );
        b.collect(g);
        let s = b.sort(src, KeyUdf::field(1), true);
        let lim = b.limit(s, 5);
        b.collect(lim);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn joins_match_reference_through_disk() {
        let mut b = PlanBuilder::new();
        let l = b.collection("l", (0..50i64).map(|i| rec![i % 5, i]).collect());
        let r = b.collection("r", (0..20i64).map(|i| rec![i % 5, i * 10]).collect());
        let j = b.hash_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
        b.collect(j);
        let cp = b.cross_product(l, r);
        b.collect(cp);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn reduce_by_key_with_combiner_matches_reference() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..400i64).map(|i| rec![i % 11, 1i64]).collect());
        let red = b.reduce_by_key(
            src,
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        b.collect(red);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn loop_spills_every_iteration() {
        let platform = MapReduceLikePlatform::new(2)
            .with_overheads(OverheadConfig::accounted_only(
                Duration::from_millis(100),
                Duration::from_millis(10),
            ))
            .with_spill_dir(
                std::env::temp_dir().join(format!("rheem_mr_loop_{}", std::process::id())),
            );
        let ctx = RheemContext::new().with_platform(Arc::new(platform));

        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(5), 5);
        let sink = b.collect(l);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        // 100 startup + 5 iterations × 10 phase.
        assert_eq!(result.stats.total_simulated_overhead_ms(), 150.0);
        assert_eq!(
            result.outputs[&sink].records(),
            (5..15i64).map(|i| rec![i]).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn float_payloads_survive_the_disk_round_trip() {
        let mut b = PlanBuilder::new();
        let src = b.collection(
            "s",
            vec![rec![1i64, 0.1f64], rec![1i64, 0.2f64], rec![2i64, f64::NAN]],
        );
        let g = b.group_by(src, KeyUdf::field(0), GroupMapUdf::identity());
        b.collect(g);
        assert_matches_reference(b.build().unwrap());
    }
}
