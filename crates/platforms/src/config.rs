//! Shared overhead configuration for simulated platforms.
//!
//! Real engines pay fixed costs a laptop simulation would otherwise hide:
//! Spark pays job submission and per-stage scheduling; Hadoop pays job
//! setup and disk-materialized phase boundaries. [`OverheadConfig`] makes
//! those costs explicit, scaled down ~100× from cluster-typical constants
//! so benchmarks finish in seconds while preserving the *relative* shape of
//! the paper's figures. Each overhead is both (optionally) slept — so
//! wall-clock benchmarks feel it — and reported as deterministic simulated
//! milliseconds — so unit tests can assert on it exactly.

use std::time::Duration;

use rheem_core::cost::ChannelKind;

/// Fixed-cost knobs of a simulated platform.
#[derive(Clone, Copy, Debug)]
pub struct OverheadConfig {
    /// Charged once per task atom (job submission / container spin-up).
    pub job_startup: Duration,
    /// Charged per stage boundary: every shuffle and every loop iteration
    /// (task scheduling, serialization, barrier).
    pub stage_overhead: Duration,
    /// Whether the platform actually sleeps for the charged overheads.
    /// `true` for wall-clock benchmarks; tests usually disable it.
    pub sleep: bool,
}

impl OverheadConfig {
    /// No overheads at all (the "plain Java program" profile).
    pub fn none() -> Self {
        OverheadConfig {
            job_startup: Duration::ZERO,
            stage_overhead: Duration::ZERO,
            sleep: false,
        }
    }

    /// Overheads are accounted but never slept (fast deterministic tests).
    pub fn accounted_only(job_startup: Duration, stage_overhead: Duration) -> Self {
        OverheadConfig {
            job_startup,
            stage_overhead,
            sleep: false,
        }
    }

    /// Overheads are slept and accounted (benchmark realism).
    pub fn slept(job_startup: Duration, stage_overhead: Duration) -> Self {
        OverheadConfig {
            job_startup,
            stage_overhead,
            sleep: true,
        }
    }

    /// Pay the job-startup overhead; returns the charged milliseconds.
    pub fn pay_startup(&self) -> f64 {
        self.pay(self.job_startup)
    }

    /// Pay one stage overhead; returns the charged milliseconds.
    pub fn pay_stage(&self) -> f64 {
        self.pay(self.stage_overhead)
    }

    /// Simulated cost of ingesting a boundary dataset that arrives on a
    /// given channel (the last hop of the conversion route the optimizer
    /// chose, see [`rheem_core::plan::AtomInput::channel`]). Memory is
    /// free — which keeps plans enumerated without channel information
    /// (the greedy DP defaults every boundary to `Memory`) priced exactly
    /// as before. File pays a deserialize, Stream a drain; the constants
    /// mirror the default [`rheem_core::cost::ChannelConversionGraph`]
    /// prices so the executor's accounting matches what the optimizer
    /// assumed. Never slept — ingest is accounting, not wall time.
    pub fn channel_ingest_ms(&self, channel: ChannelKind, records: usize) -> f64 {
        match channel {
            ChannelKind::Memory => 0.0,
            ChannelKind::File => 0.5 + 0.002 * records as f64,
            ChannelKind::Stream => 0.2 + 0.001 * records as f64,
        }
    }

    fn pay(&self, d: Duration) -> f64 {
        if self.sleep && !d.is_zero() {
            std::thread::sleep(d);
        }
        d.as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_charges_nothing() {
        let c = OverheadConfig::none();
        assert_eq!(c.pay_startup(), 0.0);
        assert_eq!(c.pay_stage(), 0.0);
    }

    #[test]
    fn accounted_only_reports_without_sleeping() {
        let c =
            OverheadConfig::accounted_only(Duration::from_millis(100), Duration::from_millis(7));
        let t = std::time::Instant::now();
        assert_eq!(c.pay_startup(), 100.0);
        assert_eq!(c.pay_stage(), 7.0);
        // No sleeping: far less than the 107 ms charged.
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn slept_actually_sleeps() {
        let c = OverheadConfig::slept(Duration::from_millis(20), Duration::ZERO);
        let t = std::time::Instant::now();
        assert_eq!(c.pay_startup(), 20.0);
        assert!(t.elapsed() >= Duration::from_millis(18));
    }
}
