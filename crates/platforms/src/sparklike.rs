//! The Spark-like platform: partitioned batch execution with explicit
//! distribution overheads and simulated-parallel time accounting.
//!
//! This engine is the substitution for Apache Spark (see DESIGN.md). What
//! matters for every experiment in the paper is Spark's *cost structure*,
//! which this platform reproduces mechanically:
//!
//! * data lives in `workers` partitions; narrow operators (map, filter, ...)
//!   run as independent per-partition tasks;
//! * wide operators (group-by, joins, distinct, sort) first **shuffle** —
//!   repartition records by key hash — then run per partition, paying a
//!   per-stage scheduling overhead;
//! * every task atom pays a fixed **job-submission** overhead, and every
//!   loop iteration re-dispatches the body and pays a stage overhead —
//!   which is exactly why the paper's Figure 2 SVM "gap gets bigger with
//!   the number of iterations" on small data, while parallelism wins on
//!   big data.
//!
//! **Time accounting.** Each per-partition task is timed individually and
//! the platform charges the *critical path* — `max` across the stage's
//! tasks — into [`AtomResult::simulated_elapsed_ms`], plus all overheads,
//! plus driver-side shuffle plumbing scaled by `1/workers` (it is
//! distributed work in a real cluster). Tasks execute sequentially so the
//! per-task measurements are exact even on single-core hosts; the figures
//! in the paper are reproduced on *simulated* elapsed time, which is
//! deterministic and host-independent (see DESIGN.md's substitution table).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rheem_core::cost::{LinearCostModel, PlatformCostModel};
use rheem_core::data::Dataset;
use rheem_core::error::{Result, RheemError};
use rheem_core::kernels;
use rheem_core::physical::PhysicalOp;
use rheem_core::plan::{NodeId, PhysicalPlan, TaskAtom};
use rheem_core::platform::{AtomInputs, AtomResult, ExecutionContext, Platform, ProcessingProfile};
use rheem_core::rec;

use crate::config::OverheadConfig;
use crate::partition::{
    chunk, gather, hash_partition, hash_partition_records, offsets, run_partitions_timed,
    Partitions,
};

/// Partitioned parallel (simulated) in-memory execution engine.
pub struct SparkLikePlatform {
    workers: usize,
    overheads: OverheadConfig,
    cost: Arc<LinearCostModel>,
    /// Platform-layer optimization (§4.3, Starfish-style tuning): when set,
    /// each stage launches `ceil(records / min_records_per_task)` tasks
    /// (capped at `workers`) instead of always `workers` — tiny inputs then
    /// avoid paying per-task dispatch for near-empty partitions.
    min_records_per_task: usize,
}

impl SparkLikePlatform {
    /// A platform with `workers` task slots and Spark-flavoured defaults:
    /// 25 ms job submission and 2 ms per stage (accounted, not slept —
    /// simulated time is the metric).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        SparkLikePlatform {
            workers,
            overheads: OverheadConfig::accounted_only(
                Duration::from_millis(25),
                Duration::from_millis(2),
            ),
            cost: Arc::new(LinearCostModel {
                // Slightly pricier per record than plain Java (serialization
                // and task dispatch), but divided across the workers.
                per_unit: 2e-4,
                speedup: workers as f64,
                startup: 100.0,
                shuffle_surcharge: 2e-4,
                hash_engine_speedup: 1.0,
            }),
            min_records_per_task: 1,
        }
    }

    /// Enable the §4.3 platform-layer tuning: launch at most one task per
    /// `min` input records (still capped at the worker count).
    pub fn with_min_records_per_task(mut self, min: usize) -> Self {
        self.min_records_per_task = min.max(1);
        self
    }

    /// Override the overhead configuration.
    pub fn with_overheads(mut self, overheads: OverheadConfig) -> Self {
        self.overheads = overheads;
        self
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: LinearCostModel) -> Self {
        self.cost = Arc::new(cost);
        self
    }

    /// The number of task slots.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Platform for SparkLikePlatform {
    fn name(&self) -> &str {
        "sparklike"
    }

    fn profile(&self) -> ProcessingProfile {
        ProcessingProfile::ParallelBatch
    }

    fn supports(&self, _op: &PhysicalOp) -> bool {
        true
    }

    fn cost_model(&self) -> Arc<dyn PlatformCostModel> {
        self.cost.clone()
    }

    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult> {
        let startup = self.overheads.pay_startup();
        let mut run = SparkRun {
            workers: self.workers,
            min_records_per_task: self.min_records_per_task,
            overheads: &self.overheads,
            ctx,
            overhead_ms: startup,
            elapsed_ms: startup,
            records_processed: 0,
            observations: Vec::new(),
        };
        // Channel-aware boundary ingest: datasets arriving on a non-memory
        // channel (the optimizer's chosen conversion route) pay a simulated
        // materialization cost before any task reads them.
        for bi in &atom.inputs {
            if let Some(d) = inputs.get(&(bi.consumer, bi.slot)) {
                let ms = self.overheads.channel_ingest_ms(bi.channel, d.len());
                run.overhead_ms += ms;
                run.elapsed_ms += ms;
            }
        }
        let mut outputs_parts =
            run.run_nodes(plan, &atom.nodes, Some(inputs), None, &atom.outputs)?;
        let mut outputs = HashMap::new();
        for n in &atom.outputs {
            let parts = outputs_parts
                .remove(n)
                .ok_or_else(|| RheemError::Execution {
                    platform: "sparklike".into(),
                    message: format!("atom output node {n} was not produced"),
                })?;
            outputs.insert(*n, Dataset::new(gather(parts)));
        }
        Ok(AtomResult {
            outputs,
            records_processed: run.records_processed,
            simulated_overhead_ms: run.overhead_ms,
            simulated_elapsed_ms: run.elapsed_ms,
            node_observations: run.observations,
        })
    }
}

/// One atom execution in flight.
struct SparkRun<'a> {
    workers: usize,
    min_records_per_task: usize,
    overheads: &'a OverheadConfig,
    ctx: &'a ExecutionContext,
    /// Charged fixed overheads (job startup, stage scheduling).
    overhead_ms: f64,
    /// Simulated elapsed time: overheads + critical path of every stage.
    elapsed_ms: f64,
    records_processed: u64,
    /// Per-kernel observations (top-level nodes only; loop bodies are
    /// charged to their `Loop` node).
    observations: Vec<rheem_core::observe::NodeObservation>,
}

impl SparkRun<'_> {
    /// Task count for a stage over `records` inputs (§4.3 tuning).
    fn partitions_for(&self, records: usize) -> usize {
        records
            .div_ceil(self.min_records_per_task)
            .clamp(1, self.workers)
    }

    /// Charge one stage-scheduling overhead.
    fn stage(&mut self) {
        let ms = self.overheads.pay_stage();
        self.overhead_ms += ms;
        self.elapsed_ms += ms;
    }

    /// Run a stage's tasks, charging the per-partition critical path.
    fn tasks<F>(&mut self, parts: Partitions, f: F) -> Result<Partitions>
    where
        F: Fn(usize, Vec<rheem_core::data::Record>) -> Result<Vec<rheem_core::data::Record>>
            + Send
            + Sync,
    {
        let (out, max_ms) = run_partitions_timed(parts, f)?;
        self.elapsed_ms += max_ms;
        Ok(out)
    }

    /// Time driver/shuffle plumbing; distributed in a real cluster, so the
    /// simulated charge is scaled by `1/workers`.
    fn plumbing<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.elapsed_ms += t.elapsed().as_secs_f64() * 1e3 / self.workers as f64;
        out
    }

    /// Time work that is genuinely serial (a single gathered task).
    fn serial<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.elapsed_ms += t.elapsed().as_secs_f64() * 1e3;
        out
    }

    /// Execute `nodes` of `plan` over partitioned intermediates.
    ///
    /// `keep` lists nodes whose partitions the caller reads from the
    /// returned map (atom outputs, the loop terminal); everything else is
    /// *moved* into its last consumer instead of deep-cloned.
    fn run_nodes(
        &mut self,
        plan: &PhysicalPlan,
        nodes: &[NodeId],
        boundary: Option<&AtomInputs>,
        loop_state: Option<&Partitions>,
        keep: &[NodeId],
    ) -> Result<HashMap<NodeId, Partitions>> {
        // Count in-fragment consumers so each intermediate's partitions
        // can be moved (not cloned) into the consumer that uses them last.
        let mut remaining: HashMap<NodeId, usize> = HashMap::new();
        for &id in nodes {
            for producer in &plan.node(id).inputs {
                *remaining.entry(*producer).or_insert(0) += 1;
            }
        }
        let mut results: HashMap<NodeId, Partitions> = HashMap::new();
        for &id in nodes {
            // Cancellation checkpoint between stages: a cancelled job
            // stops without dispatching the next stage's tasks.
            self.ctx.check_cancelled()?;
            let node = plan.node(id);
            let mut inputs: Vec<Partitions> = Vec::with_capacity(node.inputs.len());
            for (slot, producer) in node.inputs.iter().enumerate() {
                let parts = if results.contains_key(producer) {
                    let uses = remaining.get_mut(producer).expect("consumers counted");
                    *uses -= 1;
                    if *uses == 0 && !keep.contains(producer) {
                        results.remove(producer).expect("present")
                    } else {
                        results[producer].clone()
                    }
                } else if let Some(d) = boundary.and_then(|b| b.get(&(id, slot))) {
                    let parts = self.partitions_for(d.len());
                    self.plumbing(|| chunk(d.records(), parts))
                } else {
                    return Err(RheemError::InvalidPlan(format!(
                        "node {id} input slot {slot} is not available"
                    )));
                };
                inputs.push(parts);
            }
            let before_ms = self.elapsed_ms;
            let out = self.exec_op(&node.op, inputs, loop_state)?;
            let out_records = out.iter().map(|p| p.len() as u64).sum::<u64>();
            self.records_processed += out_records;
            // Observe only top-level nodes: loop-body node ids belong to the
            // body fragment and whole-loop time lands on the Loop node.
            if boundary.is_some() {
                self.observations
                    .push(rheem_core::observe::NodeObservation {
                        node: id,
                        op: node.op.name(),
                        records_out: out_records,
                        elapsed_ms: self.elapsed_ms - before_ms,
                        // Partitions are this platform's parallel unit;
                        // per-partition kernels stay sequential.
                        morsels: 1,
                    });
            }
            results.insert(id, out);
        }
        Ok(results)
    }

    fn exec_op(
        &mut self,
        op: &PhysicalOp,
        mut inputs: Vec<Partitions>,
        loop_state: Option<&Partitions>,
    ) -> Result<Partitions> {
        let workers = self.workers;
        let out = match op {
            // ------------------------------------------------------- sources
            PhysicalOp::CollectionSource { data, .. } => {
                let parts = self.partitions_for(data.len());
                self.plumbing(|| chunk(data.records(), parts))
            }
            PhysicalOp::StorageSource { dataset_id } => {
                let data = self.ctx.storage()?.read(dataset_id)?;
                let parts = self.partitions_for(data.len());
                self.plumbing(|| chunk(data.records(), parts))
            }
            PhysicalOp::LoopInput => loop_state
                .cloned()
                .ok_or_else(|| RheemError::InvalidPlan("LoopInput outside a loop body".into()))?,

            // -------------------------------------------------- narrow (1:1)
            PhysicalOp::Map(u) => {
                let u = u.clone();
                self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                    Ok(kernels::map(&p, &u))
                })?
            }
            PhysicalOp::FlatMap(u) => {
                let u = u.clone();
                self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                    Ok(kernels::flat_map(&p, &u))
                })?
            }
            PhysicalOp::Filter(u) => {
                let u = u.clone();
                // Tasks own their partition, so surviving records are
                // retained in place instead of cloned.
                self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                    Ok(kernels::filter_owned(p, &u))
                })?
            }
            PhysicalOp::Project { indices } => {
                let indices = indices.clone();
                self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                    kernels::project(&p, &indices)
                })?
            }
            PhysicalOp::ChunkPipeline { stages } => {
                // Narrow: each partition is converted to a columnar chunk
                // once and runs the fused stage chain sequentially (the
                // partition is this platform's parallel unit).
                let stages = stages.clone();
                let seq = kernels::parallel::KernelParallelism::sequential();
                self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                    kernels::parallel::run_pipeline(&p, &stages, &seq)
                })?
            }
            PhysicalOp::Sample { fraction, seed } => {
                let parts = std::mem::take(&mut inputs[0]);
                let offs = offsets(&parts);
                let (fraction, seed) = (*fraction, *seed);
                self.tasks(parts, move |i, p| {
                    kernels::sample(&p, fraction, seed, offs[i] as u64)
                })?
            }
            PhysicalOp::ZipWithId => {
                let parts = std::mem::take(&mut inputs[0]);
                let offs = offsets(&parts);
                self.tasks(parts, move |i, p| kernels::zip_with_id(&p, offs[i] as i64))?
            }
            PhysicalOp::Limit { n } => {
                let parts = std::mem::take(&mut inputs[0]);
                let n = *n;
                self.plumbing(|| chunk(&kernels::limit(&gather(parts), n), workers))
            }

            // ------------------------------------------------- wide (shuffle)
            PhysicalOp::SortGroupBy { key, group } | PhysicalOp::HashGroupBy { key, group } => {
                self.stage();
                let sort_based = matches!(op, PhysicalOp::SortGroupBy { .. });
                let input = std::mem::take(&mut inputs[0]);
                let gathered = self.plumbing(|| gather(input));
                let n_parts = self.partitions_for(gathered.len());
                let parts = self.plumbing(|| hash_partition(&gathered, key, n_parts));
                let (key, group) = (key.clone(), group.clone());
                self.tasks(parts, move |_, p| {
                    let groups = if sort_based {
                        kernels::sort_group(&p, &key)
                    } else {
                        kernels::hash_group(&p, &key)
                    };
                    Ok(kernels::apply_group_map(&groups, &group))
                })?
            }
            PhysicalOp::ReduceByKey { key, reduce } => {
                // Map-side combine first (the classic Spark optimization),
                // then shuffle the partial aggregates.
                let local = {
                    let (key, reduce) = (key.clone(), reduce.clone());
                    self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                        Ok(kernels::reduce_by_key(&p, &key, &reduce))
                    })?
                };
                self.stage();
                let gathered = self.plumbing(|| gather(local));
                let n_parts = self.partitions_for(gathered.len());
                let parts = self.plumbing(|| hash_partition(&gathered, key, n_parts));
                let (key, reduce) = (key.clone(), reduce.clone());
                self.tasks(parts, move |_, p| {
                    Ok(kernels::reduce_by_key(&p, &key, &reduce))
                })?
            }
            PhysicalOp::GlobalReduce { reduce } => {
                let local = {
                    let reduce = reduce.clone();
                    self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                        Ok(kernels::global_reduce(&p, &reduce))
                    })?
                };
                self.stage();
                let reduce = reduce.clone();
                vec![self.serial(move || kernels::global_reduce(&gather(local), &reduce))]
            }
            PhysicalOp::Sort { key, descending } => {
                // Simplification documented in DESIGN.md: a range-partitioned
                // distributed sort is modeled as gather + sort + re-chunk;
                // the cost model prices it as a shuffle either way.
                self.stage();
                let input = std::mem::take(&mut inputs[0]);
                let (key, descending) = (key.clone(), *descending);
                self.plumbing(move || {
                    chunk(&kernels::sort(&gather(input), &key, descending), workers)
                })
            }
            PhysicalOp::Distinct => {
                self.stage();
                let input = std::mem::take(&mut inputs[0]);
                let gathered = self.plumbing(|| gather(input));
                let n_parts = self.partitions_for(gathered.len());
                let parts = self.plumbing(|| hash_partition_records(&gathered, n_parts));
                self.tasks(parts, |_, p| Ok(kernels::distinct(&p)))?
            }

            // ----------------------------------------------------- binary ops
            PhysicalOp::HashJoin {
                left_key,
                right_key,
            }
            | PhysicalOp::SortMergeJoin {
                left_key,
                right_key,
            } => {
                self.stage();
                let sort_based = matches!(op, PhysicalOp::SortMergeJoin { .. });
                let mut it = inputs.drain(..);
                let (l_in, r_in) = (it.next().expect("arity"), it.next().expect("arity"));
                drop(it);
                let l = self.plumbing(|| hash_partition(&gather(l_in), left_key, workers));
                let r =
                    Arc::new(self.plumbing(|| hash_partition(&gather(r_in), right_key, workers)));
                let (lk, rk) = (left_key.clone(), right_key.clone());
                // Co-partitioned join: pair up the partition indexes.
                self.tasks(l, move |i, lp| {
                    let rp = &r[i];
                    Ok(if sort_based {
                        kernels::sort_merge_join(&lp, rp, &lk, &rk)
                    } else {
                        kernels::hash_join(&lp, rp, &lk, &rk)
                    })
                })?
            }
            PhysicalOp::NestedLoopJoin { predicate, .. } => {
                self.stage();
                let mut it = inputs.drain(..);
                let l = it.next().expect("arity");
                // Broadcast the (gathered) right side to every partition.
                let r_in = it.next().expect("arity");
                drop(it);
                let r = Arc::new(self.plumbing(|| gather(r_in)));
                let predicate = predicate.clone();
                self.tasks(l, move |_, lp| {
                    Ok(kernels::nested_loop_join(&lp, &r, &predicate))
                })?
            }
            PhysicalOp::CrossProduct => {
                self.stage();
                let mut it = inputs.drain(..);
                let l = it.next().expect("arity");
                let r_in = it.next().expect("arity");
                drop(it);
                let r = Arc::new(self.plumbing(|| gather(r_in)));
                self.tasks(l, move |_, lp| Ok(kernels::cross_product(&lp, &r)))?
            }
            PhysicalOp::Union => {
                let mut it = inputs.drain(..);
                let mut parts = it.next().expect("arity");
                parts.extend(it.next().expect("arity"));
                drop(it);
                if parts.len() > workers {
                    self.plumbing(|| chunk(&gather(parts), workers))
                } else {
                    parts
                }
            }

            // --------------------------------------------------------- control
            PhysicalOp::Loop {
                body,
                condition,
                max_iterations,
                ..
            } => {
                let mut state = std::mem::take(&mut inputs[0]);
                let body_nodes: Vec<NodeId> = body.nodes().iter().map(|n| n.id).collect();
                let terminal = *body
                    .terminals()
                    .first()
                    .ok_or_else(|| RheemError::InvalidPlan("loop body has no terminal".into()))?;
                let mut iteration = 0u64;
                loop {
                    // The continuation test sees the gathered state (a
                    // driver-side action in Spark terms).
                    let gathered = self.plumbing(|| gather(state.clone()));
                    if iteration >= *max_iterations || !(condition.f)(iteration, &gathered) {
                        break;
                    }
                    // Each iteration is a re-dispatched job stage.
                    self.stage();
                    let mut outs =
                        self.run_nodes(body, &body_nodes, None, Some(&state), &[terminal])?;
                    state = outs.remove(&terminal).ok_or_else(|| {
                        RheemError::InvalidPlan("loop body terminal missing".into())
                    })?;
                    iteration += 1;
                }
                state
            }

            PhysicalOp::Custom(c) => {
                if c.partitionable() && c.arity() == 1 {
                    let c = c.clone();
                    self.tasks(std::mem::take(&mut inputs[0]), move |_, p| {
                        Ok(c.execute(&[Dataset::new(p)])?.into_records())
                    })?
                } else {
                    // Gather every input and run the operator as one
                    // indivisible task — serial by construction, which is
                    // exactly what makes coarse-grained UDFs slow on a
                    // distributed engine (Figure 3 left).
                    self.stage();
                    let datasets: Vec<Dataset> = inputs
                        .drain(..)
                        .map(|parts| Dataset::new(gather(parts)))
                        .collect();
                    let c = c.clone();
                    let result = self.serial(move || c.execute(&datasets))?;
                    chunk(result.records(), workers)
                }
            }

            // ----------------------------------------------------------- sinks
            PhysicalOp::CollectSink => std::mem::take(&mut inputs[0]),
            PhysicalOp::CountSink => {
                let n: usize = inputs[0].iter().map(Vec::len).sum();
                vec![vec![rec![n as i64]]]
            }
            PhysicalOp::StorageSink { dataset_id } => {
                let parts = std::mem::take(&mut inputs[0]);
                let data = Dataset::new(gather(parts.clone()));
                self.ctx.storage()?.write(dataset_id, &data)?;
                parts
            }
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::data::Record;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::udf::{
        FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, ReduceUdf,
    };
    use rheem_core::RheemContext;

    fn spark() -> SparkLikePlatform {
        SparkLikePlatform::new(4).with_overheads(OverheadConfig::none())
    }

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(spark()))
    }

    fn sorted(mut v: Vec<Record>) -> Vec<Record> {
        v.sort();
        v
    }

    /// Every plan must produce the same bag of records as the reference
    /// interpreter — the platform-independence contract.
    fn assert_matches_reference(plan: rheem_core::PhysicalPlan) {
        let reference =
            rheem_core::interpreter::run_plan(&plan, &rheem_core::ExecutionContext::new()).unwrap();
        let result = ctx().execute(plan).unwrap();
        assert_eq!(result.outputs.len(), reference.len());
        for (sink, data) in &result.outputs {
            assert_eq!(
                sorted(data.records().to_vec()),
                sorted(reference[sink].records().to_vec()),
                "sink {sink} differs from reference"
            );
        }
    }

    fn nums(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec![i]).collect()
    }

    #[test]
    fn narrow_pipeline_matches_reference() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(1000));
        let f = b.filter(src, FilterUdf::new("mod3", |r| r.int(0).unwrap() % 3 == 0));
        let m = b.map(f, MapUdf::new("sq", |r| rec![r.int(0).unwrap().pow(2)]));
        let fm = b.flat_map(m, FlatMapUdf::new("dup", |r| vec![r.clone(), r.clone()]));
        b.collect(fm);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn group_by_and_reduce_match_reference() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..500i64).map(|i| rec![i % 13, 1i64]).collect());
        let g = b.group_by(
            src,
            KeyUdf::field(0),
            GroupMapUdf::new("count", |k, members| {
                vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
            }),
        );
        b.collect(g);
        let src2 = b.collection("s2", (0..500i64).map(|i| rec![i % 13, 1i64]).collect());
        let r = b.reduce_by_key(
            src2,
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        b.collect(r);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn joins_match_reference() {
        let mut b = PlanBuilder::new();
        let l = b.collection("l", (0..100i64).map(|i| rec![i % 10, i]).collect());
        let r = b.collection("r", (0..40i64).map(|i| rec![i % 10, i * 100]).collect());
        let j = b.hash_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
        b.collect(j);
        let j2 = b.sort_merge_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
        b.collect(j2);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn theta_join_cross_sort_distinct_match_reference() {
        let mut b = PlanBuilder::new();
        let l = b.collection("l", nums(30));
        let r = b.collection("r", nums(20));
        let t = b.theta_join(
            l,
            r,
            "lt",
            0.5,
            Arc::new(|a: &Record, c: &Record| a.int(0).unwrap() < c.int(0).unwrap()),
        );
        b.collect(t);
        let cp = b.cross_product(l, r);
        b.collect(cp);
        let s = b.sort(l, KeyUdf::field(0), true);
        b.collect(s);
        let dup = b.union(l, l);
        let d = b.distinct(dup);
        b.collect(d);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn global_reduce_sample_limit_zip_match_reference() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(200));
        let g = b.global_reduce(
            src,
            ReduceUdf::new("sum", |a, x| rec![a.int(0).unwrap() + x.int(0).unwrap()]),
        );
        b.collect(g);
        let smp = b.sample(src, 0.25, 9);
        b.collect(smp);
        let z = b.zip_with_id(src);
        b.collect(z);
        let lim = b.limit(src, 17);
        let cnt = b.count(lim);
        let _ = cnt;
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn loop_runs_partitioned_and_matches_reference() {
        // Per-element update loop: every record is incremented each iteration.
        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(100));
        let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(10), 10);
        b.collect(l);
        assert_matches_reference(b.build().unwrap());
    }

    #[test]
    fn loop_charges_stage_overhead_per_iteration() {
        let platform = SparkLikePlatform::new(2).with_overheads(OverheadConfig::accounted_only(
            Duration::from_millis(50),
            Duration::from_millis(3),
        ));
        let ctx = RheemContext::new().with_platform(Arc::new(platform));

        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("id", |r| r.clone()));
        let body = body.build_fragment().unwrap();

        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(10));
        let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(20), 20);
        b.collect(l);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        // 50 ms startup + 20 iterations × 3 ms.
        assert_eq!(result.stats.total_simulated_overhead_ms(), 110.0);
        // Simulated elapsed includes overheads plus (tiny) measured work.
        let elapsed = result.stats.total_simulated_ms();
        assert!((110.0..250.0).contains(&elapsed), "elapsed {elapsed}");
    }

    #[test]
    fn simulated_elapsed_is_bounded_by_sequential_wall() {
        let ctx = ctx();
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(20_000));
        let m = b.map(
            src,
            MapUdf::new("spin", |r| {
                let mut acc = r.int(0).unwrap();
                for i in 0..50 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                rec![acc]
            }),
        );
        b.collect(m);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        let simulated = result.stats.total_simulated_ms();
        let wall = result.stats.total_wall.as_secs_f64() * 1e3;
        assert!(simulated > 0.0);
        // Balanced partitions: the critical path is ~wall/workers; it must
        // never exceed the sequential wall time.
        assert!(
            simulated <= wall,
            "simulated {simulated:.2} ms > sequential wall {wall:.2} ms"
        );
        assert!(
            simulated < wall * 0.7,
            "expected parallel speedup in simulated time: {simulated:.2} vs {wall:.2}"
        );
    }

    #[test]
    fn storage_round_trip_on_spark() {
        let storage = Arc::new(rheem_core::platform::MemoryStorageService::new());
        use rheem_core::platform::StorageService;
        storage.write("in", &Dataset::new(nums(50))).unwrap();
        let ctx = RheemContext::new()
            .with_platform(Arc::new(spark()))
            .with_storage(storage.clone());
        let mut b = PlanBuilder::new();
        let src = b.storage_source("in");
        let m = b.map(src, MapUdf::new("x2", |r| rec![r.int(0).unwrap() * 2]));
        b.write_storage(m, "out");
        ctx.execute(b.build().unwrap()).unwrap();
        assert_eq!(storage.read("out").unwrap().len(), 50);
    }

    #[test]
    fn partitionable_custom_op_runs_per_partition() {
        use rheem_core::physical::CustomPhysicalOp;
        struct PartDoubler;
        impl CustomPhysicalOp for PartDoubler {
            fn name(&self) -> &str {
                "PartDoubler"
            }
            fn arity(&self) -> usize {
                1
            }
            fn partitionable(&self) -> bool {
                true
            }
            fn execute(&self, inputs: &[Dataset]) -> rheem_core::Result<Dataset> {
                Ok(inputs[0]
                    .iter()
                    .map(|r| rec![r.int(0).unwrap() * 2])
                    .collect())
            }
        }
        let mut b = PlanBuilder::new();
        let src = b.collection("s", nums(100));
        let c = b.custom(Arc::new(PartDoubler), vec![src]);
        let sink = b.collect(c);
        let result = ctx().execute(b.build().unwrap()).unwrap();
        assert_eq!(
            sorted(result.outputs[&sink].records().to_vec()),
            sorted((0..100i64).map(|i| rec![i * 2]).collect())
        );
    }
}

#[cfg(test)]
mod tuning_tests {
    use super::*;
    use rheem_core::physical::CustomPhysicalOp;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::rec;
    use rheem_core::RheemContext;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A partitionable custom op that counts how many tasks executed it.
    struct TaskCounter(Arc<AtomicUsize>);
    impl CustomPhysicalOp for TaskCounter {
        fn name(&self) -> &str {
            "TaskCounter"
        }
        fn arity(&self) -> usize {
            1
        }
        fn partitionable(&self) -> bool {
            true
        }
        fn execute(&self, inputs: &[Dataset]) -> Result<Dataset> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(inputs[0].clone())
        }
    }

    fn count_tasks(platform: SparkLikePlatform, records: i64) -> usize {
        let counter = Arc::new(AtomicUsize::new(0));
        let ctx = RheemContext::new().with_platform(Arc::new(platform));
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..records).map(|i| rec![i]).collect());
        let c = b.custom(Arc::new(TaskCounter(counter.clone())), vec![src]);
        b.collect(c);
        ctx.execute(b.build().unwrap()).unwrap();
        counter.load(Ordering::Relaxed)
    }

    #[test]
    fn adaptive_task_sizing_reduces_tasks_on_tiny_inputs() {
        let untuned = SparkLikePlatform::new(4).with_overheads(OverheadConfig::none());
        assert_eq!(count_tasks(untuned, 100), 4);

        let tuned = SparkLikePlatform::new(4)
            .with_overheads(OverheadConfig::none())
            .with_min_records_per_task(1_000);
        assert_eq!(count_tasks(tuned, 100), 1, "100 records fit one task");

        let tuned = SparkLikePlatform::new(4)
            .with_overheads(OverheadConfig::none())
            .with_min_records_per_task(1_000);
        assert_eq!(count_tasks(tuned, 2_500), 3, "2500 records need 3 tasks");

        // Big inputs still use every worker.
        let tuned = SparkLikePlatform::new(4)
            .with_overheads(OverheadConfig::none())
            .with_min_records_per_task(1_000);
        assert_eq!(count_tasks(tuned, 100_000), 4);
    }
}
