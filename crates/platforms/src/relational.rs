//! The relational platform: a PostgreSQL-like single-node engine.
//!
//! Substitution for the paper's relational DBMS (§1: "one may aggregate
//! large datasets with traditional queries on top of a relational database
//! such as PostgreSQL, but ML tasks might be much faster if executed on
//! Spark"). The cost profile reproduced here:
//!
//! * relational operators (scan, filter, project, joins, grouping, sort)
//!   are cheap per record — decades of engine engineering;
//! * opaque record-level UDFs (`Map`/`FlatMap`) are *expensive* — they
//!   leave the optimized plan path, like PL/pgSQL functions;
//! * loops, sampling, and application-defined operators are simply **not
//!   supported** — the multi-platform optimizer must place them elsewhere,
//!   which is what creates genuinely mixed execution plans.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rheem_core::cost::{op_work_units, PlatformCostModel};
use rheem_core::error::{Result, RheemError};
use rheem_core::interpreter;
use rheem_core::physical::{OpKind, PhysicalOp};
use rheem_core::plan::{PhysicalPlan, TaskAtom};
use rheem_core::platform::{AtomInputs, AtomResult, ExecutionContext, Platform, ProcessingProfile};

use crate::config::OverheadConfig;

/// Cost model with differentiated relational-vs-UDF prices.
#[derive(Clone, Debug)]
pub struct RelationalCostModel {
    /// Per-unit price for native relational operators.
    pub relational_per_unit: f64,
    /// Per-unit price for opaque UDF operators.
    pub udf_per_unit: f64,
    /// Per-atom connection/parse/plan overhead.
    pub startup: f64,
}

impl Default for RelationalCostModel {
    fn default() -> Self {
        RelationalCostModel {
            relational_per_unit: 5e-5,
            udf_per_unit: 5e-4,
            startup: 10.0,
        }
    }
}

impl PlatformCostModel for RelationalCostModel {
    fn op_cost(&self, op: &PhysicalOp, input_cards: &[f64], output_card: f64) -> f64 {
        let work = op_work_units(op, input_cards, output_card);
        let per_unit = match op.kind() {
            OpKind::Map | OpKind::FlatMap | OpKind::Custom | OpKind::Loop => self.udf_per_unit,
            _ => self.relational_per_unit,
        };
        work * per_unit
    }

    fn atom_startup_cost(&self) -> f64 {
        self.startup
    }
}

/// Single-node relational execution engine.
pub struct RelationalPlatform {
    overheads: OverheadConfig,
    cost: Arc<RelationalCostModel>,
    /// Simulated engine-efficiency factor applied to measured work time.
    ///
    /// The reference interpreter executes relational operators with generic
    /// record handling; a real DBMS executes them with decades of
    /// engineering (vectorization, tuned joins, statistics). Like the
    /// parallel platforms' critical-path accounting, this factor makes the
    /// *simulated* elapsed time reflect the engine being modeled rather
    /// than our substrate (see DESIGN.md).
    efficiency: f64,
}

impl Default for RelationalPlatform {
    fn default() -> Self {
        RelationalPlatform::new()
    }
}

impl RelationalPlatform {
    /// A platform with a 5 ms connection overhead and a 2× simulated
    /// engine-efficiency advantage over the generic interpreter.
    pub fn new() -> Self {
        RelationalPlatform {
            overheads: OverheadConfig::accounted_only(Duration::from_millis(5), Duration::ZERO),
            cost: Arc::new(RelationalCostModel::default()),
            efficiency: 0.5,
        }
    }

    /// Override the simulated engine-efficiency factor.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        self.efficiency = efficiency.max(0.0);
        self
    }

    /// Override the overhead configuration.
    pub fn with_overheads(mut self, overheads: OverheadConfig) -> Self {
        self.overheads = overheads;
        self
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: RelationalCostModel) -> Self {
        self.cost = Arc::new(cost);
        self
    }
}

impl Platform for RelationalPlatform {
    fn name(&self) -> &str {
        "relational"
    }

    fn profile(&self) -> ProcessingProfile {
        ProcessingProfile::Relational
    }

    fn supports(&self, op: &PhysicalOp) -> bool {
        !matches!(
            op,
            PhysicalOp::Loop { .. }
                | PhysicalOp::Custom(_)
                | PhysicalOp::Sample { .. }
                | PhysicalOp::LoopInput
        )
    }

    fn cost_model(&self) -> Arc<dyn PlatformCostModel> {
        self.cost.clone()
    }

    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult> {
        // Reject unsupported operators defensively: the optimizer should
        // never route them here, but a forced-platform configuration might.
        for n in &atom.nodes {
            let op = &plan.node(*n).op;
            if !self.supports(op) {
                return Err(RheemError::Execution {
                    platform: "relational".into(),
                    message: format!("operator {} is not supported by the engine", op.name()),
                });
            }
        }
        let overhead = self.overheads.pay_startup();
        let started = std::time::Instant::now();
        let run = interpreter::run_fragment(plan, &atom.nodes, inputs, ctx, None)?;
        let work_ms = started.elapsed().as_secs_f64() * 1e3 * self.efficiency;
        let outputs: HashMap<_, _> = atom
            .outputs
            .iter()
            .filter_map(|n| run.outputs.get(n).map(|d| (*n, d.clone())))
            .collect();
        // Scale per-kernel observations by the same efficiency factor as
        // the atom total, so calibration sees the modeled engine's speed.
        let node_observations = run
            .observations
            .into_iter()
            .map(|mut o| {
                o.elapsed_ms *= self.efficiency;
                o
            })
            .collect();
        Ok(AtomResult {
            outputs,
            records_processed: run.records_processed,
            simulated_overhead_ms: overhead,
            simulated_elapsed_ms: overhead + work_ms,
            node_observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::rec;
    use rheem_core::udf::{KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
    use rheem_core::RheemContext;

    fn rel() -> RelationalPlatform {
        RelationalPlatform::new().with_overheads(OverheadConfig::none())
    }

    #[test]
    fn relational_query_executes() {
        let mut b = PlanBuilder::new();
        let src = b.collection("orders", (0..100i64).map(|i| rec![i % 10, i * 2]).collect());
        let red = b.reduce_by_key(
            src,
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        let sink = b.collect(red);
        let ctx = RheemContext::new().with_platform(Arc::new(rel()));
        let result = ctx.execute(b.build().unwrap()).unwrap();
        assert_eq!(result.outputs[&sink].len(), 10);
        assert_eq!(result.stats.platforms_used(), vec!["relational"]);
    }

    #[test]
    fn loops_are_not_supported() {
        let p = rel();
        let mut body = PlanBuilder::new();
        let li = body.loop_input();
        body.map(li, MapUdf::new("id", |r| r.clone()));
        let body = body.build_fragment().unwrap();
        let op = PhysicalOp::Loop {
            body: Arc::new(body),
            condition: LoopCondUdf::fixed_iterations(1),
            max_iterations: 1,
            expected_iterations: 1.0,
        };
        assert!(!p.supports(&op));
        assert!(!p.supports(&PhysicalOp::Sample {
            fraction: 0.5,
            seed: 0
        }));
        assert!(p.supports(&PhysicalOp::Distinct));
    }

    #[test]
    fn forced_execution_of_unsupported_op_fails_cleanly() {
        let ctx = RheemContext::new()
            .with_platform(Arc::new(rel()))
            .force_platform("relational");
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        let smp = b.sample(src, 0.5, 1);
        b.collect(smp);
        // The optimizer has no feasible platform for Sample.
        assert!(ctx.execute(b.build().unwrap()).is_err());
    }

    #[test]
    fn cost_model_penalizes_udfs() {
        let m = RelationalCostModel::default();
        let map = PhysicalOp::Map(MapUdf::new("udf", |r| r.clone()));
        let filter = PhysicalOp::Filter(rheem_core::udf::FilterUdf::new("p", |_| true));
        let udf_cost = m.op_cost(&map, &[1000.0], 1000.0);
        let rel_cost = m.op_cost(&filter, &[1000.0], 1000.0);
        assert!(udf_cost > rel_cost * 5.0);
    }
}
