//! Partitioning utilities for the parallel platforms.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crossbeam::thread;
use rheem_core::data::Record;
use rheem_core::error::{Result, RheemError};
use rheem_core::udf::KeyUdf;

/// A dataset split into partitions.
pub type Partitions = Vec<Vec<Record>>;

/// Split into `parts` contiguous, order-preserving chunks (narrow input
/// partitioning: concatenating the chunks reproduces the input order).
pub fn chunk(records: &[Record], parts: usize) -> Partitions {
    let parts = parts.max(1);
    let n = records.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(records[start..start + len].to_vec());
        start += len;
    }
    out
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Shuffle records into `parts` partitions by key hash (co-partitioning:
/// equal keys always land in the same partition index).
pub fn hash_partition(records: &[Record], key: &KeyUdf, parts: usize) -> Partitions {
    let parts = parts.max(1);
    let mut out = vec![Vec::new(); parts];
    for r in records {
        let k = (key.f)(r);
        out[(hash_of(&k) % parts as u64) as usize].push(r.clone());
    }
    out
}

/// Shuffle records by whole-record hash (used by `Distinct`).
pub fn hash_partition_records(records: &[Record], parts: usize) -> Partitions {
    let parts = parts.max(1);
    let mut out = vec![Vec::new(); parts];
    for r in records {
        out[(hash_of(r) % parts as u64) as usize].push(r.clone());
    }
    out
}

/// Concatenate partitions back into one batch.
pub fn gather(parts: Partitions) -> Vec<Record> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Prefix-sum offsets of each partition (for globally unique ids and
/// position-indexed sampling).
pub fn offsets(parts: &Partitions) -> Vec<usize> {
    let mut out = Vec::with_capacity(parts.len());
    let mut acc = 0usize;
    for p in parts {
        out.push(acc);
        acc += p.len();
    }
    out
}

/// Execute `f` over every partition, timing each task individually, and
/// return the transformed partitions together with the **simulated parallel
/// elapsed time**: the maximum per-partition duration, as if every
/// partition had its own core.
///
/// Tasks run sequentially on purpose: measuring per-task time under real
/// thread oversubscription (e.g. a single-core CI host) would inflate every
/// task by time-sharing and erase the parallelism signal. Sequential
/// execution gives exact per-task costs on any machine; the platform then
/// *simulates* the cluster by charging only the critical path. See
/// DESIGN.md's substitution table.
pub fn run_partitions_timed<F>(parts: Partitions, f: F) -> Result<(Partitions, f64)>
where
    F: Fn(usize, Vec<Record>) -> Result<Vec<Record>> + Send + Sync,
{
    let mut out = Vec::with_capacity(parts.len());
    let mut max_ms = 0.0f64;
    for (i, part) in parts.into_iter().enumerate() {
        let t = std::time::Instant::now();
        out.push(f(i, part)?);
        max_ms = max_ms.max(t.elapsed().as_secs_f64() * 1e3);
    }
    Ok((out, max_ms))
}

/// Run `f` over every partition on its own worker thread ("task slots").
///
/// `f` receives `(partition index, partition)` and returns the transformed
/// partition. The first error wins; all threads are joined either way.
pub fn par_map_partitions<F>(parts: Partitions, f: F) -> Result<Partitions>
where
    F: Fn(usize, Vec<Record>) -> Result<Vec<Record>> + Send + Sync,
{
    let n = parts.len();
    let mut results: Vec<Result<Vec<Record>>> = Vec::with_capacity(n);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, part) in parts.into_iter().enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| f(i, part)));
        }
        for h in handles {
            results.push(h.join().unwrap_or_else(|_| {
                Err(RheemError::Execution {
                    platform: "worker".into(),
                    message: "worker thread panicked".into(),
                })
            }));
        }
    })
    .map_err(|_| RheemError::Execution {
        platform: "worker".into(),
        message: "thread scope panicked".into(),
    })?;
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::rec;

    fn nums(n: i64) -> Vec<Record> {
        (0..n).map(|i| rec![i]).collect()
    }

    #[test]
    fn chunk_preserves_order_and_covers_all() {
        let data = nums(10);
        let parts = chunk(&data, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(gather(parts), data);
    }

    #[test]
    fn chunk_handles_fewer_records_than_parts() {
        let data = nums(2);
        let parts = chunk(&data, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(gather(parts), data);
    }

    #[test]
    fn chunk_zero_parts_clamps_to_one() {
        let data = nums(3);
        assert_eq!(chunk(&data, 0).len(), 1);
    }

    #[test]
    fn hash_partition_copartitions_equal_keys() {
        let data: Vec<Record> = (0..100).map(|i| rec![i % 7, i]).collect();
        let parts = hash_partition(&data, &KeyUdf::field(0), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        // Every key appears in exactly one partition.
        for k in 0..7i64 {
            let holders = parts
                .iter()
                .filter(|p| p.iter().any(|r| r.int(0).unwrap() == k))
                .count();
            assert_eq!(holders, 1, "key {k} split across partitions");
        }
    }

    #[test]
    fn offsets_are_prefix_sums() {
        let parts = vec![nums(3), nums(0), nums(5)];
        assert_eq!(offsets(&parts), vec![0, 3, 3]);
    }

    #[test]
    fn par_map_partitions_applies_in_parallel() {
        let parts = chunk(&nums(100), 8);
        let out = par_map_partitions(parts, |_, p| {
            Ok(p.iter().map(|r| rec![r.int(0).unwrap() * 2]).collect())
        })
        .unwrap();
        let all = gather(out);
        assert_eq!(all.len(), 100);
        assert_eq!(all[99], rec![198i64]);
    }

    #[test]
    fn run_partitions_timed_reports_critical_path() {
        let parts = vec![nums(1), nums(2)];
        let (out, max_ms) = run_partitions_timed(parts, |i, p| {
            if i == 1 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Ok(p)
        })
        .unwrap();
        assert_eq!(out.iter().map(Vec::len).sum::<usize>(), 3);
        // Critical path is the slow task, not the sum.
        assert!((18.0..45.0).contains(&max_ms), "max {max_ms}");
    }

    #[test]
    fn run_partitions_timed_propagates_errors() {
        let parts = chunk(&nums(10), 4);
        assert!(run_partitions_timed(parts, |i, p| {
            if i == 2 {
                Err(RheemError::Execution {
                    platform: "test".into(),
                    message: "boom".into(),
                })
            } else {
                Ok(p)
            }
        })
        .is_err());
    }

    #[test]
    fn par_map_partitions_propagates_errors() {
        let parts = chunk(&nums(10), 4);
        let out = par_map_partitions(parts, |i, p| {
            if i == 2 {
                Err(RheemError::Execution {
                    platform: "test".into(),
                    message: "boom".into(),
                })
            } else {
                Ok(p)
            }
        });
        assert!(out.is_err());
    }
}
