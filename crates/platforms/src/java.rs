//! The single-process platform — the paper's "plain Java program".
//!
//! Figure 2 of the paper compares SVM "as a Spark job and as a plain Java
//! program" and finds Java up to an order of magnitude faster on small
//! datasets because it pays no distribution overhead. [`JavaPlatform`]
//! reproduces that profile: straight-line, single-threaded evaluation via
//! the core's reference interpreter, with (near-)zero fixed costs.

use std::sync::Arc;

use rheem_core::cost::{LinearCostModel, PlatformCostModel};
use rheem_core::error::Result;
use rheem_core::interpreter;
use rheem_core::physical::PhysicalOp;
use rheem_core::plan::{PhysicalPlan, TaskAtom};
use rheem_core::platform::{AtomInputs, AtomResult, ExecutionContext, Platform, ProcessingProfile};

use crate::config::OverheadConfig;

/// Single-threaded in-process execution engine.
///
/// "Single-threaded" describes the orchestration (one process, no
/// partitioning, no shuffles): with
/// [`with_kernel_parallelism`](JavaPlatform::with_kernel_parallelism) the
/// platform declares morsel-driven intra-atom kernel threads, which the
/// cost model prices as a speedup floor while outputs stay byte-identical.
pub struct JavaPlatform {
    overheads: OverheadConfig,
    cost: Arc<LinearCostModel>,
    kernel_threads: usize,
}

impl Default for JavaPlatform {
    fn default() -> Self {
        JavaPlatform::new()
    }
}

impl JavaPlatform {
    /// A platform with zero overheads and the default cost model.
    pub fn new() -> Self {
        JavaPlatform {
            overheads: OverheadConfig::none(),
            cost: Arc::new(LinearCostModel {
                // ~10 M simple record-touches per second.
                per_unit: 1e-4,
                speedup: 1.0,
                startup: 0.5,
                shuffle_surcharge: 0.0,
                hash_engine_speedup: 1.0,
            }),
            kernel_threads: 1,
        }
    }

    /// Override the overhead configuration.
    pub fn with_overheads(mut self, overheads: OverheadConfig) -> Self {
        self.overheads = overheads;
        self
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: LinearCostModel) -> Self {
        self.cost = Arc::new(cost);
        self
    }

    /// Declare `threads` of intra-atom morsel parallelism. The declared
    /// count flows into the optimizer through the cost model (a speedup
    /// floor) and is reported via
    /// [`Platform::kernel_parallelism`]; the *actual* thread budget at
    /// execution time comes from the ambient
    /// [`ExecutionContext::kernel_parallelism`] knob.
    pub fn with_kernel_parallelism(mut self, threads: usize) -> Self {
        self.kernel_threads = threads.max(1);
        self.cost = Arc::new((*self.cost).clone().with_kernel_parallelism(threads));
        self
    }

    /// Declare the measured vectorized-hash-engine speedup for the
    /// key-based kernels (`HashGroupBy` / `ReduceByKey` / `HashJoin`), so
    /// optimizer prices track the chunk-vs-row ratios recorded in
    /// `BENCH_kernels.json`. Composes with
    /// [`with_kernel_parallelism`](JavaPlatform::with_kernel_parallelism);
    /// runtime cost calibration still corrects the estimate from observed
    /// timings either way.
    pub fn with_hash_engine(mut self, speedup: f64) -> Self {
        self.cost = Arc::new((*self.cost).clone().with_hash_engine(speedup));
        self
    }
}

impl Platform for JavaPlatform {
    fn name(&self) -> &str {
        "java"
    }

    fn profile(&self) -> ProcessingProfile {
        ProcessingProfile::SingleProcess
    }

    fn supports(&self, _op: &PhysicalOp) -> bool {
        true // the reference interpreter implements the full algebra
    }

    fn cost_model(&self) -> Arc<dyn PlatformCostModel> {
        self.cost.clone()
    }

    fn kernel_parallelism(&self) -> usize {
        self.kernel_threads
    }

    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> Result<AtomResult> {
        let overhead = self.overheads.pay_startup();
        let started = std::time::Instant::now();
        let run = interpreter::run_fragment(plan, &atom.nodes, inputs, ctx, None)?;
        let work_ms = started.elapsed().as_secs_f64() * 1e3;
        let outputs = atom
            .outputs
            .iter()
            .filter_map(|n| run.outputs.get(n).map(|d| (*n, d.clone())))
            .collect();
        Ok(AtomResult {
            outputs,
            records_processed: run.records_processed,
            simulated_overhead_ms: overhead,
            simulated_elapsed_ms: overhead + work_ms,
            node_observations: run.observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_core::plan::PlanBuilder;
    use rheem_core::rec;
    use rheem_core::udf::{FilterUdf, KeyUdf, MapUdf, ReduceUdf};
    use rheem_core::{PlatformRegistry, RheemContext};

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn end_to_end_pipeline_on_java() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..100i64).map(|i| rec![i]).collect());
        let f = b.filter(src, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
        let m = b.map(f, MapUdf::new("x10", |r| rec![r.int(0).unwrap() * 10]));
        let sink = b.collect(m);
        let result = ctx().execute(b.build().unwrap()).unwrap();
        let out = &result.outputs[&sink];
        assert_eq!(out.len(), 50);
        assert_eq!(out.records()[1], rec![20i64]);
        assert_eq!(result.stats.platforms_used(), vec!["java"]);
        assert_eq!(result.stats.atoms.len(), 1);
    }

    #[test]
    fn keyed_aggregation_on_java() {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..60i64).map(|i| rec![i % 3, 1i64]).collect());
        let red = b.reduce_by_key(
            src,
            KeyUdf::field(0),
            ReduceUdf::new("count", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        let sink = b.collect(red);
        let result = ctx().execute(b.build().unwrap()).unwrap();
        assert_eq!(
            result.outputs[&sink].records(),
            &[rec![0i64, 20i64], rec![1i64, 20i64], rec![2i64, 20i64]]
        );
    }

    #[test]
    fn supports_everything_and_reports_profile() {
        let p = JavaPlatform::new();
        assert!(p.supports(&PhysicalOp::CrossProduct));
        assert_eq!(p.profile(), ProcessingProfile::SingleProcess);
        assert_eq!(p.name(), "java");
        let _ = PlatformRegistry::new();
    }

    #[test]
    fn declared_kernel_parallelism_prices_as_speedup() {
        let base = JavaPlatform::new();
        let par = JavaPlatform::new().with_kernel_parallelism(4);
        assert_eq!(base.kernel_parallelism(), 1);
        assert_eq!(par.kernel_parallelism(), 4);
        let op = PhysicalOp::Map(rheem_core::udf::MapUdf::new("id", |r| r.clone()));
        let slow = base.cost_model().op_cost(&op, &[1000.0], 1000.0);
        let fast = par.cost_model().op_cost(&op, &[1000.0], 1000.0);
        assert!(
            (fast - slow / 4.0).abs() < 1e-9,
            "4 declared threads should quarter the work cost ({slow} vs {fast})"
        );
    }

    #[test]
    fn hash_engine_speedup_prices_keyed_kernels_only() {
        let base = JavaPlatform::new();
        let fast = JavaPlatform::new().with_hash_engine(2.5);
        let keyed = PhysicalOp::HashGroupBy {
            key: KeyUdf::field(0),
            group: rheem_core::udf::GroupMapUdf::identity(),
        };
        let scalar = PhysicalOp::Map(rheem_core::udf::MapUdf::new("id", |r| r.clone()));
        let slow_keyed = base.cost_model().op_cost(&keyed, &[1000.0], 30.0);
        let fast_keyed = fast.cost_model().op_cost(&keyed, &[1000.0], 30.0);
        assert!(
            (fast_keyed - slow_keyed / 2.5).abs() < 1e-9,
            "hash-engine speedup should discount keyed ops ({slow_keyed} vs {fast_keyed})"
        );
        // Scalar kernels are not on the hash engine and keep their price.
        assert_eq!(
            base.cost_model().op_cost(&scalar, &[1000.0], 1000.0),
            fast.cost_model().op_cost(&scalar, &[1000.0], 1000.0)
        );
        // Sub-1 values clamp: the engine never prices *slower*.
        let clamped = JavaPlatform::new().with_hash_engine(0.1);
        assert_eq!(
            clamped.cost_model().op_cost(&keyed, &[1000.0], 30.0),
            slow_keyed
        );
    }

    #[test]
    fn overheads_are_reported() {
        let p = JavaPlatform::new().with_overheads(OverheadConfig::accounted_only(
            std::time::Duration::from_millis(9),
            std::time::Duration::ZERO,
        ));
        let mut b = PlanBuilder::new();
        let src = b.collection("s", vec![rec![1i64]]);
        b.collect(src);
        let plan = b.build().unwrap();
        let ctx = RheemContext::new().with_platform(Arc::new(p));
        let result = ctx.execute(plan).unwrap();
        assert_eq!(result.stats.total_simulated_overhead_ms(), 9.0);
    }
}
