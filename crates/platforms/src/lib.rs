//! # rheem-platforms
//!
//! The platform layer of the RHEEM reproduction: four execution engines
//! with deliberately different cost structures, standing in for the
//! engines the paper federates (see DESIGN.md for the substitution
//! rationale):
//!
//! | Platform | Stands in for | Cost profile |
//! |---|---|---|
//! | [`JavaPlatform`] | plain Java program | single-threaded, zero overhead |
//! | [`SparkLikePlatform`] | Apache Spark | partitioned + threaded, job & stage overheads, real shuffles |
//! | [`MapReduceLikePlatform`] | Hadoop MapReduce | disk-materialized phases, huge job setup |
//! | [`RelationalPlatform`] | PostgreSQL | cheap relational ops, expensive UDFs, no loops |
//!
//! All four implement `rheem_core::platform::Platform` and produce the same
//! bag of records for any supported plan — the platform-independence
//! contract the paper's vision rests on (verified by the cross-platform
//! equivalence tests in `tests/`).

#![warn(missing_docs)]

pub mod config;
pub mod java;
pub mod mapreduce;
pub mod partition;
pub mod relational;
pub mod sparklike;

pub use config::OverheadConfig;
pub use java::JavaPlatform;
pub use mapreduce::MapReduceLikePlatform;
pub use relational::{RelationalCostModel, RelationalPlatform};
pub use sparklike::SparkLikePlatform;

use std::sync::Arc;

use rheem_core::RheemContext;

/// A context with all four platforms registered under benchmark-realistic
/// defaults (overheads slept).
pub fn full_context() -> RheemContext {
    RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(num_workers())))
        .with_platform(Arc::new(MapReduceLikePlatform::new(num_workers())))
        .with_platform(Arc::new(RelationalPlatform::new()))
}

/// A context with all four platforms and *accounted-but-not-slept*
/// overheads — fast and deterministic, for tests.
pub fn test_context() -> RheemContext {
    RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(SparkLikePlatform::new(4).with_overheads(
            OverheadConfig::accounted_only(
                std::time::Duration::from_millis(25),
                std::time::Duration::from_millis(2),
            ),
        )))
        .with_platform(Arc::new(MapReduceLikePlatform::new(4).with_overheads(
            OverheadConfig::accounted_only(
                std::time::Duration::from_millis(120),
                std::time::Duration::from_millis(8),
            ),
        )))
        .with_platform(Arc::new(
            RelationalPlatform::new().with_overheads(OverheadConfig::none()),
        ))
}

/// Default simulated cluster width: 8 task slots, independent of the
/// host's core count (parallelism is *simulated* via critical-path time
/// accounting, so the host hardware is irrelevant — see the crate docs).
/// Override with the `RHEEM_WORKERS` environment variable.
pub fn num_workers() -> usize {
    std::env::var("RHEEM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}
