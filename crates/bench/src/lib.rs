//! # rheem-bench
//!
//! The benchmark harness regenerating every evaluation artifact of the
//! paper (see DESIGN.md §5 for the experiment index):
//!
//! * [`fig2`] — SVM on the Spark-like engine vs. the single-process engine
//!   across dataset sizes (paper Figure 2);
//! * [`fig3`] — violation detection: single-UDF vs. operator pipeline
//!   (Figure 3 left) and IEJoin vs. cross-product baseline with a time
//!   budget (Figure 3 right);
//! * [`ablations`] — platform selection, movement-cost awareness, IEJoin
//!   scaling, grouping algorithm choice, and storage (hot buffer +
//!   transformation plans);
//! * [`calibration`] — feedback-driven cost-model correction;
//! * [`replanning`] — adaptive mid-job re-optimization at wave
//!   boundaries;
//! * [`failover`] — failover re-planning around a platform outage.
//!
//! Row-printer binaries (`fig2_svm_table`, `fig3_table`,
//! `ablation_table`) emit the same series the paper plots; the Criterion
//! benches under `benches/` wrap scaled-down variants for regression
//! tracking.

#![warn(missing_docs)]

pub mod ablations;
pub mod calibration;
pub mod failover;
pub mod fig2;
pub mod fig3;
pub mod replanning;
