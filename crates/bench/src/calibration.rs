//! Ablation F — cost-model calibration (the observability feedback loop).
//!
//! The optimizer is only as good as its cost models, and the paper's §8
//! lists "zero-knowledge" cost learning among the open challenges. This
//! experiment demonstrates the simplest closed loop: a platform whose
//! cost model *lies* (it claims to be nearly free) initially wins every
//! node, one observed run folds real per-operator runtimes into the
//! [`rheem_core::observe::CostCalibration`] table, and the very next
//! optimization pass flips the plan to the genuinely cheaper platform.

use std::sync::Arc;
use std::time::Duration;

use rheem_core::cost::LinearCostModel;
use rheem_core::data::Record;
use rheem_core::observe::Observability;
use rheem_core::plan::{PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, ReduceUdf};
use rheem_core::RheemContext;
use rheem_platforms::{JavaPlatform, MapReduceLikePlatform, OverheadConfig};

/// What [`run_calibration_flip`] measured across the two optimize+execute
/// rounds.
pub struct CalibrationFlipReport {
    /// Per-node platform assignments of the first (uncalibrated) plan.
    pub first_assignments: Vec<String>,
    /// Per-node platform assignments of the second (calibrated) plan.
    pub second_assignments: Vec<String>,
    /// Total observed simulated time of the first run (ms).
    pub first_observed_ms: f64,
    /// Total observed simulated time of the second run (ms).
    pub second_observed_ms: f64,
    /// `explain --observed` view of the first run: estimated vs observed
    /// cost and cardinality per atom, with error ratios.
    pub first_explain_observed: String,
    /// Same view for the second (calibrated) run.
    pub second_explain_observed: String,
    /// `(operator, platform)` pairs the calibration table learned.
    pub calibration_pairs: usize,
}

/// The aggregation workload: `group by key, sum` over `n` `[key, value]`
/// records with 64 distinct keys — a shuffle-heavy shape whose real cost
/// on the disk-phased engine is dominated by overheads its lying cost
/// model does not admit to.
pub fn flip_plan(n: usize) -> PhysicalPlan {
    let data: Vec<Record> = (0..n as i64).map(|i| rec![i % 64, i]).collect();
    let mut b = PlanBuilder::new();
    let src = b.collection("pairs", data);
    let red = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(64.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(red);
    b.build().unwrap()
}

/// A context where the MapReduce-like engine's cost model claims near-zero
/// prices while its execution charges real (accounted) startup and phase
/// overheads — the mismatch calibration exists to correct.
pub fn flip_context() -> (RheemContext, Arc<Observability>) {
    let observe = Arc::new(Observability::new());
    let liar = MapReduceLikePlatform::new(4)
        .with_overheads(OverheadConfig::accounted_only(
            Duration::from_millis(30),
            Duration::from_millis(10),
        ))
        .with_spill_dir(std::env::temp_dir().join(format!("rheem_cal_{}", std::process::id())))
        .with_cost_model(LinearCostModel {
            per_unit: 1e-6, // claims ~100× cheaper than it is
            speedup: 1.0,
            startup: 0.0, // claims free job setup; reality charges 30 ms
            shuffle_surcharge: 0.0,
            hash_engine_speedup: 1.0,
        });
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(liar))
        .with_observability(observe.clone());
    (ctx, observe)
}

/// Optimize + execute the workload twice on [`flip_context`] and report
/// how the plan changed once the calibration table saw real runtimes.
pub fn run_calibration_flip(n: usize) -> CalibrationFlipReport {
    let (ctx, observe) = flip_context();

    let first_plan = ctx.optimize(flip_plan(n)).unwrap();
    let first = ctx.execute_plan(&first_plan).unwrap();
    let second_plan = ctx.optimize(flip_plan(n)).unwrap();
    let second = ctx.execute_plan(&second_plan).unwrap();

    CalibrationFlipReport {
        first_assignments: first_plan.assignments.clone(),
        second_assignments: second_plan.assignments.clone(),
        first_observed_ms: first.stats.total_simulated_ms(),
        second_observed_ms: second.stats.total_simulated_ms(),
        first_explain_observed: first_plan.explain_observed(&first.stats),
        second_explain_observed: second_plan.explain_observed(&second.stats),
        calibration_pairs: observe.calibration().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_calibrated_run_flips_the_plan() {
        let report = run_calibration_flip(20_000);
        assert!(
            report.first_assignments.iter().all(|p| p == "mapreduce"),
            "the lying cost model should win every node at first: {:?}",
            report.first_assignments
        );
        assert!(
            report.second_assignments.iter().all(|p| p == "java"),
            "calibration should flip the whole plan to java: {:?}",
            report.second_assignments
        );
        assert!(
            report.second_observed_ms < report.first_observed_ms,
            "the calibrated plan must actually be cheaper: {} vs {}",
            report.second_observed_ms,
            report.first_observed_ms
        );
        assert!(report.calibration_pairs >= 3, "source, reduce, and sink");
        // The observed view carries per-atom error ratios for both runs.
        assert!(report.first_explain_observed.contains("ms_ratio"));
        assert!(report.first_explain_observed.contains('x'));
        assert!(!report.second_explain_observed.contains("mapreduce"));
    }
}
