//! Figure 3 reproduction: violation detection.
//!
//! Left subfigure — "the benefits of the abstraction with operators that
//! enables finer granularity for the distributed execution": a single
//! coarse `Detect` UDF vs. BigDansing's operator pipeline, on the
//! Spark-like platform.
//!
//! Right subfigure — BigDansing vs. state-of-the-art baselines on an
//! inequality rule: the cross-product baseline "had to be stopped after 22
//! hours" while the IEJoin extension finishes in minutes. At laptop scale
//! we reproduce the same wall: the baseline is run only while it fits a
//! time budget and reported as exceeding it beyond that (with a quadratic
//! projection, since we cannot interrupt a running operator any more than
//! the authors could interrupt Spark mid-stage).

use std::sync::Arc;
use std::time::Duration;

use rheem_cleaning::{detect, DenialConstraint, DetectionStrategy};
use rheem_core::RheemContext;
use rheem_datagen::tax::{columns, generate, TaxConfig};
use rheem_platforms::{OverheadConfig, SparkLikePlatform};

/// The FD rule of the left subfigure: `zip → state`.
pub fn fd_rule() -> DenialConstraint {
    DenialConstraint::functional_dependency("zip-state", columns::ID, columns::ZIP, columns::STATE)
}

/// The inequality rule of the right subfigure:
/// `¬(t1.salary > t2.salary ∧ t1.rate < t2.rate)`.
pub fn inequality_rule() -> DenialConstraint {
    DenialConstraint::inequality(
        "salary-rate",
        columns::ID,
        columns::SALARY,
        columns::TAX_RATE,
    )
}

/// A Spark-like context with mild overheads for the detection runs.
pub fn detection_context(workers: usize) -> RheemContext {
    RheemContext::new().with_platform(Arc::new(SparkLikePlatform::new(workers).with_overheads(
        OverheadConfig::accounted_only(Duration::from_millis(5), Duration::from_millis(1)),
    )))
}

/// One row of the left subfigure.
#[derive(Clone, Debug)]
pub struct Fig3LeftRow {
    /// Dataset size (records).
    pub rows: usize,
    /// Violations found (sanity: strategies must agree).
    pub violations: usize,
    /// Monolithic single-UDF simulated elapsed (ms).
    pub single_udf_ms: f64,
    /// Operator-pipeline simulated elapsed (ms).
    pub pipeline_ms: f64,
}

/// Run the left subfigure sweep.
pub fn run_left(sizes: &[usize], workers: usize) -> Vec<Fig3LeftRow> {
    let ctx = detection_context(workers);
    let rule = fd_rule();
    sizes
        .iter()
        .map(|&n| {
            // Blocks of ~250 records: the pair-enumeration work inside each
            // block dominates plan plumbing, which is what the granularity
            // comparison is about.
            let mut cfg = TaxConfig::new(n)
                .with_seed(n as u64)
                .with_error_rates(0.002, 0.0);
            cfg.zips = (n / 250).max(1);
            let (data, _) = generate(&cfg);
            let (v1, r1) = detect(&ctx, data.clone(), &rule, DetectionStrategy::SingleUdf)
                .expect("single-udf detection");
            let (v2, r2) = detect(&ctx, data, &rule, DetectionStrategy::OperatorPipeline)
                .expect("pipeline detection");
            assert_eq!(v1.len(), v2.len(), "strategies must agree on violations");
            Fig3LeftRow {
                rows: n,
                violations: v2.len(),
                single_udf_ms: r1.stats.total_simulated_ms(),
                pipeline_ms: r2.stats.total_simulated_ms(),
            }
        })
        .collect()
}

/// One row of the right subfigure. `cross_ms` is `Err(projected_ms)` when
/// the baseline exceeded the budget and was *not* run to completion.
#[derive(Clone, Debug)]
pub struct Fig3RightRow {
    /// Dataset size (records).
    pub rows: usize,
    /// Violations found by IEJoin.
    pub violations: usize,
    /// BigDansing + IEJoin simulated elapsed (ms).
    pub iejoin_ms: f64,
    /// Cross-product baseline simulated elapsed (ms), or the quadratic
    /// projection when it exceeded the budget.
    pub cross_ms: std::result::Result<f64, f64>,
}

/// Run the right subfigure sweep with a per-run budget for the baseline.
pub fn run_right(sizes: &[usize], workers: usize, budget: Duration) -> Vec<Fig3RightRow> {
    let ctx = detection_context(workers);
    let rule = inequality_rule();
    let mut rows = Vec::with_capacity(sizes.len());
    // Last completed baseline measurement, for quadratic projection.
    let mut last_completed: Option<(usize, f64)> = None;
    let mut baseline_dead = false;
    for &n in sizes {
        // A fixed number (~10) of understated-rate records regardless of n,
        // so the violation *output* stays bounded while the pair space the
        // baseline must test still grows quadratically.
        let ineq_rate = (10.0 / n as f64).min(0.05);
        let (data, _) = generate(
            &TaxConfig::new(n)
                .with_seed(n as u64)
                .with_error_rates(0.0, ineq_rate),
        );
        let (violations, rj) =
            detect(&ctx, data.clone(), &rule, DetectionStrategy::IeJoin).expect("iejoin detection");
        let iejoin_ms = rj.stats.total_simulated_ms();

        // Run the baseline only while the projection fits the budget
        // (mirroring the authors stopping their baselines at 22 h).
        let projected = last_completed.map(|(m, ms)| ms * (n as f64 / m as f64).powi(2));
        let cross_ms = if !baseline_dead && projected.is_none_or(|p| p < budget.as_secs_f64() * 1e3)
        {
            let (vc, rc) = detect(&ctx, data, &rule, DetectionStrategy::CrossProduct)
                .expect("cross-product detection");
            assert_eq!(vc.len(), violations.len(), "strategies must agree");
            let ms = rc.stats.total_simulated_ms();
            last_completed = Some((n, ms));
            if ms > budget.as_secs_f64() * 1e3 {
                baseline_dead = true;
            }
            Ok(ms)
        } else {
            baseline_dead = true;
            Err(projected.unwrap_or(f64::INFINITY))
        };
        rows.push(Fig3RightRow {
            rows: n,
            violations: violations.len(),
            iejoin_ms,
            cross_ms,
        });
    }
    rows
}

/// Render both subfigures like the paper's figure.
pub fn render(left: &[Fig3LeftRow], right: &[Fig3RightRow], budget: Duration) -> String {
    let mut s = String::from(
        "Figure 3 (left) — violation detection, FD zip→state, Spark-like platform\n\
         rows        violations  single_udf_ms  pipeline_ms  pipeline_speedup\n",
    );
    for r in left {
        s.push_str(&format!(
            "{:<10}  {:>10}  {:>13.1}  {:>11.1}  {:>14.2}x\n",
            r.rows,
            r.violations,
            r.single_udf_ms,
            r.pipeline_ms,
            r.single_udf_ms / r.pipeline_ms
        ));
    }
    s.push_str(&format!(
        "\nFigure 3 (right) — inequality rule, BigDansing+IEJoin vs cross-product baseline \
         (budget {:.0} s per run)\n\
         rows        violations  iejoin_ms   baseline_ms\n",
        budget.as_secs_f64()
    ));
    for r in right {
        let baseline = match r.cross_ms {
            Ok(ms) => format!("{ms:>10.1}"),
            Err(p) if p.is_finite() => format!("> budget (~{:.0} projected)", p),
            Err(_) => "> budget".to_string(),
        };
        s.push_str(&format!(
            "{:<10}  {:>10}  {:>9.1}  {}\n",
            r.rows, r.violations, r.iejoin_ms, baseline
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_pipeline_beats_single_udf_at_scale() {
        let rows = run_left(&[10_000], 4);
        let r = &rows[0];
        assert!(r.violations > 0);
        assert!(
            r.single_udf_ms > r.pipeline_ms * 1.5,
            "pipeline should win: single {:.1} ms vs pipeline {:.1} ms",
            r.single_udf_ms,
            r.pipeline_ms
        );
    }

    #[test]
    fn right_iejoin_beats_cross_product_and_baseline_hits_the_wall() {
        let budget = Duration::from_millis(1500);
        let rows = run_right(&[1_000, 4_000, 64_000], 4, budget);
        // At 4k the baseline (16M pair tests) should already be clearly
        // slower than IEJoin.
        let mid = &rows[1];
        // An Err means the baseline was already over budget: even stronger.
        if let Ok(ms) = mid.cross_ms {
            assert!(
                ms > mid.iejoin_ms,
                "baseline {ms:.1} ms should lose to iejoin {:.1} ms",
                mid.iejoin_ms
            );
        }
        // At 64k the baseline must have been stopped/projected out.
        assert!(rows[2].cross_ms.is_err(), "baseline should exceed budget");
        assert!(rows[2].violations > 0);
    }
}
