//! Ablation H — failover re-planning around a platform outage.
//!
//! The robustness counterpart of the [`crate::replanning`] experiment: the
//! optimizer legitimately routes the expensive suffix of a job to the
//! cluster engine, but the cluster is down — every atom targeting it fails
//! on every attempt. A rigid configuration (failover disabled) dies with
//! the execution error once the retry budget is spent. With failover
//! enabled, the executor commits the java prefix as usual, observes the
//! outage mid-job when the cluster atom's wave runs, re-enumerates the
//! unexecuted suffix with the cluster excluded, and finishes on the
//! single-process engine — with outputs identical to a fault-free run and
//! without re-executing anything already committed.

use std::sync::Arc;

use rheem_core::data::Record;
use rheem_core::{FailureInjector, FaultPolicy, JobResult, ScheduleMode};

use crate::replanning::{misestimated_plan, replanning_context};

/// What [`run_failover_ablation`] measured.
pub struct FailoverReport {
    /// Per-node platform assignments the optimizer chose up front.
    pub initial_assignments: Vec<String>,
    /// Per-node assignments the surviving run actually executed under.
    pub effective_assignments: Vec<String>,
    /// Failover re-plans the surviving run performed.
    pub failovers: usize,
    /// Committed atoms that were re-executed by a failover — the contract
    /// is that this is always zero (failover only replaces pending work).
    pub recommitted_atoms: usize,
    /// Whether the rigid (failover-disabled) run failed outright.
    pub rigid_run_failed: bool,
    /// Whether the surviving run's outputs match the fault-free run's.
    pub outputs_identical: bool,
}

fn outputs(r: &JobResult) -> Vec<Vec<Record>> {
    let mut out: Vec<(usize, Vec<Record>)> = r
        .outputs
        .iter()
        .map(|(n, d)| (n.0, d.records().to_vec()))
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out.into_iter().map(|(_, d)| d).collect()
}

/// Optimize the workload once, then: (a) run it fault-free for reference
/// outputs, (b) run it against a permanently-down cluster with failover
/// disabled (must fail), and (c) run it against the same outage with
/// failover enabled (must finish on the fallback platform).
pub fn run_failover_ablation(n: i64, mode: ScheduleMode) -> FailoverReport {
    let exec = replanning_context().optimize(misestimated_plan(n)).unwrap();
    let baseline = replanning_context()
        .with_schedule_mode(mode)
        .execute_plan(&exec)
        .unwrap();

    // Failover disabled: the outage is fatal once retries are exhausted.
    let rigid = replanning_context()
        .with_schedule_mode(mode)
        .with_max_retries(1)
        .with_fault_policy(FaultPolicy {
            failover: false,
            ..FaultPolicy::instant()
        })
        .with_failure_injector(Arc::new(FailureInjector::platform_down("cluster")))
        .execute_plan(&exec);

    // Failover enabled: same outage, job must survive on the fallback.
    let adaptive = replanning_context()
        .with_schedule_mode(mode)
        .with_max_retries(1)
        .with_fault_policy(FaultPolicy::instant())
        .with_failure_injector(Arc::new(FailureInjector::platform_down("cluster")))
        .execute_plan(&exec)
        .unwrap();

    let mut ids: Vec<usize> = adaptive.stats.atoms.iter().map(|a| a.atom_id).collect();
    ids.sort_unstable();
    let recommitted = ids.windows(2).filter(|w| w[0] == w[1]).count();

    FailoverReport {
        initial_assignments: exec.assignments.clone(),
        effective_assignments: adaptive
            .effective_plan
            .as_ref()
            .map(|p| p.assignments.clone())
            .unwrap_or_else(|| exec.assignments.clone()),
        failovers: adaptive.stats.failovers,
        recommitted_atoms: recommitted,
        rigid_run_failed: rigid.is_err(),
        outputs_identical: outputs(&adaptive) == outputs(&baseline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_job_survives_a_cluster_outage_in_both_modes() {
        for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
            let report = run_failover_ablation(2_000, mode);
            assert!(
                report.initial_assignments.iter().any(|p| p == "cluster"),
                "{mode:?}: the optimizer should route the sort to the cluster: {:?}",
                report.initial_assignments
            );
            assert!(
                report.rigid_run_failed,
                "{mode:?}: without failover the outage must be fatal"
            );
            assert!(report.failovers >= 1, "{mode:?}: at least one failover");
            assert_eq!(
                report.recommitted_atoms, 0,
                "{mode:?}: failover must never re-execute committed atoms"
            );
            assert!(
                report.effective_assignments.iter().all(|p| p != "cluster"),
                "{mode:?}: the effective plan must avoid the downed platform: {:?}",
                report.effective_assignments
            );
            assert!(
                report.outputs_identical,
                "{mode:?}: failover must not change outputs"
            );
        }
    }
}
