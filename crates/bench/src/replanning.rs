//! Ablation G — adaptive mid-job re-optimization at wave boundaries.
//!
//! The paper's freedom argument cuts both ways: a cost-based optimizer is
//! only as good as its cardinality estimates, and those can be wildly off
//! *before* the job runs while being exactly known *during* it. This
//! experiment stages the failure mode: a flat-map whose declared fanout
//! hint is 500× reality makes the optimizer route the downstream sort to a
//! cluster engine whose high per-atom startup only amortizes over millions
//! of records. A [`rheem_core::ReplanPolicy`] lets the executor catch the
//! drift at the first wave boundary and flip the remaining atoms back to
//! the single-process engine mid-flight — same outputs, strictly lower
//! simulated cost.

use std::sync::Arc;
use std::time::Duration;

use rheem_core::cost::{op_work_units, requires_shuffle, MovementCostModel, PlatformCostModel};
use rheem_core::data::Record;
use rheem_core::plan::{ExecutionPlan, PhysicalPlan, PlanBuilder};
use rheem_core::platform::{AtomInputs, AtomResult, ExecutionContext, Platform, ProcessingProfile};
use rheem_core::rec;
use rheem_core::udf::{FlatMapUdf, KeyUdf};
use rheem_core::{PhysicalOp, ReplanPolicy, RheemContext, TaskAtom};
use rheem_platforms::{JavaPlatform, OverheadConfig, SparkLikePlatform};

/// Cost model of the [`ClusterPlatform`]: very cheap shuffles (that is
/// what the cluster is for), pricier per-record linear work than plain
/// Java, and a hefty per-atom startup that only pays off at scale.
struct ClusterCostModel;

impl PlatformCostModel for ClusterCostModel {
    fn op_cost(&self, op: &PhysicalOp, input_cards: &[f64], output_card: f64) -> f64 {
        let work = op_work_units(op, input_cards, output_card);
        let per_unit = if requires_shuffle(op) { 2e-5 } else { 1.5e-4 };
        work * per_unit
    }

    fn atom_startup_cost(&self) -> f64 {
        50.0
    }
}

/// A Spark-like engine re-priced for this experiment: execution is
/// delegated verbatim to [`SparkLikePlatform`], but the cost model is
/// `ClusterCostModel` so the optimizer sees a shuffle specialist with a
/// serious startup bill — the profile that makes sort-at-a-million-rows
/// attractive and sort-at-two-thousand-rows a blunder.
pub struct ClusterPlatform {
    inner: SparkLikePlatform,
}

impl ClusterPlatform {
    /// An 8-worker cluster with deterministic (accounted, never slept)
    /// overheads.
    pub fn new() -> Self {
        ClusterPlatform {
            inner: SparkLikePlatform::new(8).with_overheads(OverheadConfig::accounted_only(
                Duration::from_millis(25),
                Duration::from_millis(2),
            )),
        }
    }
}

impl Default for ClusterPlatform {
    fn default() -> Self {
        ClusterPlatform::new()
    }
}

impl Platform for ClusterPlatform {
    fn name(&self) -> &str {
        "cluster"
    }
    fn profile(&self) -> ProcessingProfile {
        self.inner.profile()
    }
    fn supports(&self, op: &PhysicalOp) -> bool {
        self.inner.supports(op)
    }
    fn cost_model(&self) -> Arc<dyn PlatformCostModel> {
        Arc::new(ClusterCostModel)
    }
    fn execute_atom(
        &self,
        plan: &PhysicalPlan,
        atom: &TaskAtom,
        inputs: &AtomInputs,
        ctx: &ExecutionContext,
    ) -> rheem_core::Result<AtomResult> {
        self.inner.execute_atom(plan, atom, inputs, ctx)
    }
}

/// The mis-estimated workload: `n` records through a flat-map that
/// *declares* a fanout of 500 (so the optimizer prices the sort at
/// `500·n` rows) but actually emits one record per input, then a sort and
/// a collect.
pub fn misestimated_plan(n: i64) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection(
        "events",
        (0..n).map(|i| rec![(i * 37) % 8_191, i]).collect(),
    );
    let expanded = b.flat_map(
        src,
        // The hint models a historic worst case that never materializes.
        FlatMapUdf::new("expand", |r| vec![r.clone()]).with_fanout(500.0),
    );
    let sorted = b.sort(expanded, KeyUdf::field(0), false);
    b.collect(sorted);
    b.build().unwrap()
}

/// A context with the single-process engine, the [`ClusterPlatform`], and
/// cheap per-record movement.
pub fn replanning_context() -> RheemContext {
    let mut ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(ClusterPlatform::new()));
    ctx.optimizer_mut().movement = MovementCostModel::new(0.0, 1e-5);
    ctx
}

/// What [`run_replanning_ablation`] measured.
pub struct ReplanningReport {
    /// Per-node platform assignments the optimizer chose up front.
    pub initial_assignments: Vec<String>,
    /// Per-node assignments the adaptive run actually executed under.
    pub effective_assignments: Vec<String>,
    /// Simulated cost of running the initial plan as-is (ms).
    pub static_simulated_ms: f64,
    /// Simulated cost with mid-job re-optimization enabled (ms).
    pub adaptive_simulated_ms: f64,
    /// Re-plans the adaptive run performed.
    pub replans: usize,
    /// Whether both runs produced identical sink outputs.
    pub outputs_identical: bool,
}

/// Optimize the workload once, then execute the *same* plan twice — once
/// as planned, once with an aggressive [`ReplanPolicy`] — and report the
/// mid-flight platform flip.
pub fn run_replanning_ablation(n: i64) -> ReplanningReport {
    let exec: ExecutionPlan = replanning_context().optimize(misestimated_plan(n)).unwrap();

    let static_run = replanning_context().execute_plan(&exec).unwrap();
    let adaptive_run = replanning_context()
        .with_replan_policy(ReplanPolicy {
            threshold: 2.0,
            max_replans: 2,
        })
        .execute_plan(&exec)
        .unwrap();

    let outputs = |r: &rheem_core::JobResult| -> Vec<Vec<Record>> {
        let mut out: Vec<(usize, Vec<Record>)> = r
            .outputs
            .iter()
            .map(|(n, d)| (n.0, d.records().to_vec()))
            .collect();
        out.sort_by_key(|(n, _)| *n);
        out.into_iter().map(|(_, d)| d).collect()
    };

    ReplanningReport {
        initial_assignments: exec.assignments.clone(),
        effective_assignments: adaptive_run
            .effective_plan
            .as_ref()
            .map(|p| p.assignments.clone())
            .unwrap_or_else(|| exec.assignments.clone()),
        static_simulated_ms: static_run.stats.total_simulated_ms(),
        adaptive_simulated_ms: adaptive_run.stats.total_simulated_ms(),
        replans: adaptive_run.stats.replans,
        outputs_identical: outputs(&static_run) == outputs(&adaptive_run),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_optimizer_is_fooled_and_the_replan_recovers() {
        let report = run_replanning_ablation(2_000);
        assert!(
            report.initial_assignments.iter().any(|p| p == "cluster"),
            "the fanout lie should route the sort to the cluster: {:?}",
            report.initial_assignments
        );
        assert_eq!(report.replans, 1, "one wave boundary, one re-plan");
        assert!(
            report.effective_assignments.iter().all(|p| p == "java"),
            "the re-plan should bring the suffix home: {:?}",
            report.effective_assignments
        );
        assert!(
            report.adaptive_simulated_ms < report.static_simulated_ms,
            "adaptive must be strictly cheaper: {} vs {}",
            report.adaptive_simulated_ms,
            report.static_simulated_ms
        );
        assert!(
            report.outputs_identical,
            "re-planning must not change outputs"
        );
    }
}
