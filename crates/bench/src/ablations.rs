//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * **A — platform selection** (§2's core promise): the optimizer's free
//!   choice vs. every forced platform, at both ends of the size spectrum.
//! * **B — movement-cost awareness** (§4.2, third aspect): optimizing with
//!   vs. without the inter-platform movement model on a mixed pipeline.
//! * **C — IEJoin vs. cross product** (§5.1): scaling of the extension
//!   operator against the naive pair join.
//! * **D — SortGroupBy vs. HashGroupBy** (§3.1 Example 2): the algorithmic
//!   alternative the mapping hints switch between.
//! * **E — storage**: hot-buffer on/off (§6 "embracing hot data") and
//!   Cartilage transformation plans vs. raw re-parsing.

use std::sync::Arc;
use std::time::Instant;

use rheem_cleaning::{DenialConstraint, DetectionStrategy};
use rheem_core::cost::MovementCostModel;
use rheem_core::data::{Dataset, Record};
use rheem_core::plan::{PhysicalPlan, PlanBuilder};
use rheem_core::platform::StorageService;
use rheem_core::rec;
use rheem_core::udf::{FilterUdf, GroupMapUdf, KeyUdf, MapUdf, ReduceUdf};
use rheem_core::RheemContext;
use rheem_datagen::tax::{columns, generate, TaxConfig};
use rheem_platforms::test_context;
use rheem_storage::{
    MemStore, SimHdfsConfig, SimHdfsStore, StorageLayer, TransformStep, TransformationPlan,
};

/// Ablation A: the aggregation task used for platform selection.
///
/// `group by key, sum values` over `[key(Int), value(Int)]` records.
pub fn aggregation_plan(n: usize, keys: usize) -> PhysicalPlan {
    let data: Vec<Record> = (0..n as i64)
        .map(|i| rec![i % keys.max(1) as i64, i])
        .collect();
    let mut b = PlanBuilder::new();
    let src = b.collection("pairs", data);
    let red = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(keys as f64),
        ReduceUdf::new("sum", |a, x: &Record| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(red);
    b.build().expect("valid plan")
}

/// One measurement of ablation A.
#[derive(Clone, Debug)]
pub struct PlatformChoiceRow {
    /// Input size.
    pub rows: usize,
    /// Platform the free optimizer picked.
    pub chosen: String,
    /// Wall-clock (ms) per configuration: (label, ms).
    pub timings: Vec<(String, f64)>,
}

/// Run ablation A: free choice vs. each forced platform.
pub fn run_platform_choice(sizes: &[usize]) -> Vec<PlatformChoiceRow> {
    sizes
        .iter()
        .map(|&n| {
            let plan = aggregation_plan(n, 64);
            let free = test_context();
            let exec = free.optimize(plan.clone()).expect("optimizes");
            let chosen = exec.assignments[1].clone(); // the reduce node
            let mut timings = Vec::new();
            let run = free.execute_plan(&exec).expect("runs");
            timings.push(("optimizer".to_string(), run.stats.total_simulated_ms()));
            for platform in ["java", "sparklike", "mapreduce"] {
                let ctx = test_context().force_platform(platform);
                let run = ctx.execute(plan.clone()).expect("forced run succeeds");
                timings.push((platform.to_string(), run.stats.total_simulated_ms()));
            }
            PlatformChoiceRow {
                rows: n,
                chosen,
                timings,
            }
        })
        .collect()
}

/// Ablation B: a mixed pipeline whose data starts in simulated HDFS, gets a
/// UDF transformation, then a relational-friendly aggregation.
pub fn mixed_pipeline_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.storage_source("readings");
    let clean = b.filter(
        src,
        FilterUdf::new("plausible", |r: &Record| {
            rheem_datagen::relational::plausible_pressure(r.float(2).unwrap_or(-1.0))
        })
        .with_selectivity(0.9),
    );
    let feat = b.map(
        clean,
        MapUdf::new("normalize", |r: &Record| {
            rec![
                r.int(1).expect("sensor"),
                (r.float(2).expect("pressure") - 100.0) / 20.0
            ]
        }),
    );
    let agg = b.group_by(
        feat,
        KeyUdf::field(0).with_distinct_keys(16.0),
        GroupMapUdf::new("mean", |k, members| {
            let mean =
                members.iter().map(|r| r.float(1).unwrap()).sum::<f64>() / members.len() as f64;
            vec![Record::new(vec![k.clone(), mean.into()])]
        }),
    );
    b.collect(agg);
    b.build().expect("valid plan")
}

/// Ablation B result.
#[derive(Clone, Debug)]
pub struct MovementCostRow {
    /// Estimated cost and executed movement with the movement model on.
    pub aware: (f64, f64),
    /// Same, with movement priced at zero during optimization.
    pub oblivious: (f64, f64),
    /// Platform switches per plan (aware, oblivious).
    pub switches: (usize, usize),
}

/// Build a context whose storage holds the sensor readings.
pub fn movement_context(n: usize) -> RheemContext {
    let storage = Arc::new(
        StorageLayer::new(Arc::new(SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig::default(),
        )))
        .with_store(Arc::new(MemStore::new("mem"))),
    );
    let readings = rheem_datagen::relational::sensor_readings(n, 16, 0.05, 11);
    StorageService::write(storage.as_ref(), "readings", &Dataset::new(readings))
        .expect("seed storage");
    let mut ctx = test_context().with_storage(storage);
    ctx.optimizer_mut().estimator.hint("readings", n as f64);
    // Make cross-platform movement expensive enough to matter.
    ctx.optimizer_mut().movement = MovementCostModel::new(5.0, 5e-3);
    ctx
}

/// Run ablation B.
pub fn run_movement_cost(n: usize) -> MovementCostRow {
    let plan = mixed_pipeline_plan();

    let aware_ctx = movement_context(n);
    let aware_exec = aware_ctx.optimize(plan.clone()).expect("optimizes");
    let aware_run = aware_ctx.execute_plan(&aware_exec).expect("runs");

    let mut oblivious_ctx = movement_context(n);
    let optimizer = std::mem::take(oblivious_ctx.optimizer_mut());
    *oblivious_ctx.optimizer_mut() = optimizer.ignore_movement_costs();
    let obl_exec = oblivious_ctx.optimize(plan).expect("optimizes");
    // Execute with the *true* movement model to see what obliviousness costs.
    let obl_run = aware_ctx.execute_plan(&obl_exec).expect("runs");

    MovementCostRow {
        aware: (aware_exec.estimated_cost, aware_run.stats.total_movement_ms),
        oblivious: (obl_exec.estimated_cost, obl_run.stats.total_movement_ms),
        switches: (aware_exec.platform_switches(), obl_exec.platform_switches()),
    }
}

/// Ablation C: IEJoin vs cross-product detection wall-clock at one size.
pub fn run_iejoin_scaling(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let ctx = crate::fig3::detection_context(4);
    let rule = crate::fig3::inequality_rule();
    sizes
        .iter()
        .map(|&n| {
            let ineq_rate = (10.0 / n as f64).min(0.05);
            let (data, _) = generate(
                &TaxConfig::new(n)
                    .with_seed(3)
                    .with_error_rates(0.0, ineq_rate),
            );
            let (_, rj) =
                rheem_cleaning::detect(&ctx, data.clone(), &rule, DetectionStrategy::IeJoin)
                    .expect("iejoin");
            let ie_ms = rj.stats.total_simulated_ms();
            let (_, rc) =
                rheem_cleaning::detect(&ctx, data, &rule, DetectionStrategy::CrossProduct)
                    .expect("cross");
            let cross_ms = rc.stats.total_simulated_ms();
            (n, ie_ms, cross_ms)
        })
        .collect()
}

/// Ablation D: sort- vs hash-based grouping on skew-free integer keys.
pub fn run_groupby(n: usize, keys: usize) -> (f64, f64) {
    let data: Vec<Record> = (0..n as i64)
        .map(|i| rec![i % keys.max(1) as i64, i])
        .collect();
    let run = |sort_based: bool| {
        let mut b = PlanBuilder::new();
        let src = b.collection("g", data.clone());
        let group = GroupMapUdf::new("count", |k, members| {
            vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
        });
        let g = if sort_based {
            b.sort_group_by(src, KeyUdf::field(0), group)
        } else {
            b.group_by(src, KeyUdf::field(0), group)
        };
        b.collect(g);
        let ctx = crate::fig2::java_only();
        let t = Instant::now();
        ctx.execute(b.build().expect("valid plan")).expect("runs");
        t.elapsed().as_secs_f64() * 1e3
    };
    (run(true), run(false)) // (sort_ms, hash_ms)
}

/// Ablation E result.
#[derive(Clone, Debug)]
pub struct StorageRow {
    /// Repeated-read wall-clock with the hot buffer (ms).
    pub hot_ms: f64,
    /// Repeated-read wall-clock without it (ms).
    pub cold_ms: f64,
    /// Query over a Cartilage-prepared (parsed once) dataset (ms).
    pub transformed_ms: f64,
    /// Same query re-parsing raw CSV lines every time (ms).
    pub raw_ms: f64,
}

/// Run ablation E.
pub fn run_storage(n: usize, reads: usize) -> StorageRow {
    let hdfs = || {
        Arc::new(SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig {
                block_records: 1_000,
                replication: 3,
                block_latency: std::time::Duration::from_micros(400),
                sleep: true,
            },
        ))
    };
    let data = Dataset::new(rheem_datagen::relational::sensor_readings(n, 8, 0.02, 5));

    // Hot buffer on/off.
    let timed_reads = |layer: &StorageLayer| {
        StorageService::write(layer, "d", &data).expect("write");
        let t = Instant::now();
        for _ in 0..reads {
            StorageService::read(layer, "d").expect("read");
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    let hot_layer = StorageLayer::new(hdfs()).with_hot_buffer(10 * n);
    let cold_layer = StorageLayer::new(hdfs());
    let hot_ms = timed_reads(&hot_layer);
    let cold_ms = timed_reads(&cold_layer);

    // Cartilage: parse CSV once at load vs. on every access.
    let raw_lines: Vec<Record> = data
        .iter()
        .map(|r| {
            rec![format!(
                "{},{},{}",
                r.int(0).unwrap(),
                r.int(1).unwrap(),
                r.float(2).unwrap()
            )]
        })
        .collect();
    let parse_plan = TransformationPlan::named("ingest").then(TransformStep::ParseCsv);
    let prepared = parse_plan
        .apply(Dataset::new(raw_lines.clone()))
        .expect("parses");
    let query = |d: &Dataset| {
        d.iter()
            .filter(|r| r.float(2).map(|p| p > 100.0).unwrap_or(false))
            .count()
    };
    let t = Instant::now();
    let mut acc = 0usize;
    for _ in 0..reads {
        acc += query(&prepared);
    }
    let transformed_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    for _ in 0..reads {
        let parsed = parse_plan
            .apply(Dataset::new(raw_lines.clone()))
            .expect("parses");
        acc += query(&parsed);
    }
    let raw_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(acc > 0, "queries should match rows");

    StorageRow {
        hot_ms,
        cold_ms,
        transformed_ms,
        raw_ms,
    }
}

/// The FD rule reused by benches (re-exported for the criterion targets).
pub fn fd_rule() -> DenialConstraint {
    DenialConstraint::functional_dependency("zip-state", columns::ID, columns::ZIP, columns::STATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_choice_prefers_java_for_small_inputs() {
        let rows = run_platform_choice(&[500]);
        assert_eq!(rows[0].chosen, "java");
        // The free choice should be at least as fast as the worst forced one.
        let free = rows[0].timings[0].1;
        let worst = rows[0]
            .timings
            .iter()
            .map(|(_, ms)| *ms)
            .fold(0.0f64, f64::max);
        assert!(free <= worst);
    }

    #[test]
    fn movement_aware_plan_estimates_no_higher_than_oblivious_execution() {
        let row = run_movement_cost(20_000);
        // The aware optimizer can never move *more* data than the oblivious
        // one when both run under the true movement model.
        assert!(
            row.aware.1 <= row.oblivious.1 + 1e-9,
            "aware moved {} ms worth, oblivious {}",
            row.aware.1,
            row.oblivious.1
        );
    }

    #[test]
    fn iejoin_scales_better_than_cross() {
        let rows = run_iejoin_scaling(&[3_000]);
        let (_, ie, cross) = rows[0];
        assert!(
            cross > ie * 2.0,
            "cross {cross:.1} ms should dwarf iejoin {ie:.1} ms"
        );
    }

    #[test]
    fn groupby_variants_both_run() {
        let (sort_ms, hash_ms) = run_groupby(20_000, 100);
        assert!(sort_ms > 0.0 && hash_ms > 0.0);
    }

    #[test]
    fn hot_buffer_and_cartilage_pay_off() {
        let row = run_storage(5_000, 8);
        assert!(
            row.cold_ms > row.hot_ms,
            "cold {:.1} ms should exceed hot {:.1} ms",
            row.cold_ms,
            row.hot_ms
        );
        assert!(
            row.raw_ms > row.transformed_ms * 2.0,
            "re-parsing {:.1} ms should dwarf prepared {:.1} ms",
            row.raw_ms,
            row.transformed_ms
        );
    }
}
