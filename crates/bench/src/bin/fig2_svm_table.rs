//! Prints the Figure 2 series: SVM (100 iterations) on the Spark-like
//! engine vs. the plain single-process engine, across dataset sizes.
//!
//! Usage: `cargo run -p rheem-bench --bin fig2_svm_table --release [--quick]`

use rheem_bench::fig2::{render, render_iteration_sweep, run, run_iteration_sweep, Fig2Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        Fig2Config {
            sizes: vec![100, 1_000, 10_000],
            iterations: 30,
            ..Fig2Config::default()
        }
    } else {
        Fig2Config::default()
    };
    eprintln!(
        "running Figure 2 sweep: sizes {:?}, {} iterations, {} workers ...",
        config.sizes, config.iterations, config.workers
    );
    let rows = run(&config);
    print!("{}", render(&rows));

    let iter_counts: Vec<u64> = if quick {
        vec![10, 50]
    } else {
        vec![10, 50, 100, 200]
    };
    eprintln!("running iteration sweep on 1000 rows ...");
    let series = run_iteration_sweep(1_000, &iter_counts);
    print!("\n{}", render_iteration_sweep(1_000, &series));
}
