//! Prints both Figure 3 series: detection granularity (left) and
//! BigDansing+IEJoin vs. the cross-product baseline with a time budget
//! (right).
//!
//! Usage: `cargo run -p rheem-bench --bin fig3_table --release [--quick]`

use std::time::Duration;

use rheem_bench::fig3::{render, run_left, run_right};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workers = rheem_platforms::num_workers();
    let (left_sizes, right_sizes, budget): (Vec<usize>, Vec<usize>, Duration) = if quick {
        (
            vec![1_000, 4_000],
            vec![500, 2_000, 8_000],
            Duration::from_millis(1_000),
        )
    } else {
        (
            vec![1_000, 5_000, 20_000, 50_000],
            vec![1_000, 4_000, 16_000, 64_000, 256_000],
            Duration::from_secs(5),
        )
    };
    eprintln!("running Figure 3 sweeps ({workers} workers) ...");
    let left = run_left(&left_sizes, workers);
    let right = run_right(&right_sizes, workers, budget);
    print!("{}", render(&left, &right, budget));
}
