//! Prints every ablation series (A–E, see DESIGN.md §5).
//!
//! Usage: `cargo run -p rheem-bench --bin ablation_table --release [--quick]`

use rheem_bench::ablations;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (a_sizes, b_n, c_sizes, d_n, e_n) = if quick {
        (
            vec![1_000, 100_000],
            20_000,
            vec![1_000, 3_000],
            50_000,
            5_000,
        )
    } else {
        (
            vec![1_000, 100_000, 1_000_000],
            100_000,
            vec![1_000, 4_000, 16_000],
            500_000,
            20_000,
        )
    };

    println!("Ablation A — platform selection (group-sum aggregation)");
    println!("rows        chosen      configuration timings (ms)");
    for row in ablations::run_platform_choice(&a_sizes) {
        let timings: Vec<String> = row
            .timings
            .iter()
            .map(|(label, ms)| format!("{label}={ms:.1}"))
            .collect();
        println!(
            "{:<10}  {:<10}  {}",
            row.rows,
            row.chosen,
            timings.join("  ")
        );
    }

    println!("\nAblation B — movement-cost awareness (mixed HDFS→UDF→aggregate pipeline, n={b_n})");
    let b = ablations::run_movement_cost(b_n);
    println!(
        "aware:     estimated {:.1} ms, executed movement {:.1} ms, switches {}",
        b.aware.0, b.aware.1, b.switches.0
    );
    println!(
        "oblivious: estimated {:.1} ms, executed movement {:.1} ms, switches {}",
        b.oblivious.0, b.oblivious.1, b.switches.1
    );

    println!("\nAblation C — IEJoin vs cross-product detection");
    println!("rows        iejoin_ms   cross_ms    speedup");
    for (n, ie, cross) in ablations::run_iejoin_scaling(&c_sizes) {
        println!("{n:<10}  {ie:>9.1}  {cross:>9.1}  {:>6.1}x", cross / ie);
    }

    println!("\nAblation D — SortGroupBy vs HashGroupBy (n={d_n}, 100 keys)");
    let (sort_ms, hash_ms) = ablations::run_groupby(d_n, 100);
    println!("sort-based: {sort_ms:.1} ms   hash-based: {hash_ms:.1} ms");

    println!("\nAblation E — storage: hot buffer and Cartilage transformation plans (n={e_n})");
    let e = ablations::run_storage(e_n, 10);
    println!(
        "repeated reads: hot buffer {:.1} ms vs cold {:.1} ms ({:.1}x)",
        e.hot_ms,
        e.cold_ms,
        e.cold_ms / e.hot_ms
    );
    println!(
        "query over prepared layout {:.1} ms vs re-parsing raw {:.1} ms ({:.1}x)",
        e.transformed_ms,
        e.raw_ms,
        e.raw_ms / e.transformed_ms
    );
}
