//! Figure 2 reproduction: SVM (100 iterations) as a "Spark job" vs. a
//! "plain Java program", across dataset sizes.
//!
//! Paper claim: "for small datasets, executing SVM as a plain Java program
//! is up to one order of magnitude faster than executing it on Spark ...
//! Using Spark pays off for big datasets only", and the gap grows with the
//! iteration count.

use std::sync::Arc;
use std::time::Duration;

use rheem_core::RheemContext;
use rheem_datagen::libsvm::{generate, LibsvmConfig};
use rheem_ml::SvmTrainer;
use rheem_platforms::{JavaPlatform, OverheadConfig, SparkLikePlatform};

/// One row of the Figure 2 series. Times are *simulated elapsed*
/// milliseconds (deterministic, host-independent; see DESIGN.md).
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Dataset size (rows).
    pub rows: usize,
    /// Simulated milliseconds as a plain single-process program.
    pub java_ms: f64,
    /// Simulated milliseconds as a Spark-like job.
    pub spark_ms: f64,
}

impl Fig2Row {
    /// `java_ms / spark_ms` — above 1.0 means the Spark-like engine wins.
    pub fn spark_speedup(&self) -> f64 {
        self.java_ms / self.spark_ms
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig2Config {
    /// Dataset sizes to sweep.
    pub sizes: Vec<usize>,
    /// Feature dimensionality.
    pub dims: usize,
    /// Training iterations (the paper uses 100).
    pub iterations: u64,
    /// Spark-like worker threads.
    pub workers: usize,
    /// Spark-like job-submission overhead.
    pub job_startup: Duration,
    /// Spark-like per-stage overhead (paid per iteration).
    pub stage_overhead: Duration,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            sizes: vec![100, 1_000, 10_000, 50_000, 200_000],
            dims: 10,
            iterations: 100,
            workers: rheem_platforms::num_workers(),
            job_startup: Duration::from_millis(25),
            stage_overhead: Duration::from_millis(2),
        }
    }
}

/// A context pinned to the single-process platform.
pub fn java_only() -> RheemContext {
    RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
}

/// A context pinned to the Spark-like platform with the given overheads.
pub fn spark_only(config: &Fig2Config) -> RheemContext {
    RheemContext::new().with_platform(Arc::new(
        SparkLikePlatform::new(config.workers).with_overheads(OverheadConfig::accounted_only(
            config.job_startup,
            config.stage_overhead,
        )),
    ))
}

/// Run the sweep, reporting simulated elapsed time per platform.
pub fn run(config: &Fig2Config) -> Vec<Fig2Row> {
    let java = java_only();
    let spark = spark_only(config);
    let mut rows = Vec::with_capacity(config.sizes.len());
    for &n in &config.sizes {
        let data = generate(&LibsvmConfig::new(n, config.dims).with_seed(n as u64));
        let trainer = SvmTrainer::new(config.dims).with_iterations(config.iterations);
        let (_, jr) = trainer
            .train(&java, data.clone())
            .expect("java training succeeds");
        let (_, sr) = trainer
            .train(&spark, data)
            .expect("spark-like training succeeds");
        rows.push(Fig2Row {
            rows: n,
            java_ms: jr.stats.total_simulated_ms(),
            spark_ms: sr.stats.total_simulated_ms(),
        });
    }
    rows
}

/// One row of the iteration sweep: same dataset, growing iteration count.
#[derive(Clone, Debug)]
pub struct Fig2IterRow {
    /// Training iterations.
    pub iterations: u64,
    /// Simulated ms, single-process.
    pub java_ms: f64,
    /// Simulated ms, Spark-like.
    pub spark_ms: f64,
}

/// The paper's secondary Figure 2 claim: "this performance gap gets bigger
/// with the number of iterations" on small data. Sweep the iteration count
/// on a fixed small dataset.
pub fn run_iteration_sweep(rows: usize, iteration_counts: &[u64]) -> Vec<Fig2IterRow> {
    let config = Fig2Config::default();
    let java = java_only();
    let spark = spark_only(&config);
    let data = generate(&LibsvmConfig::new(rows, config.dims));
    iteration_counts
        .iter()
        .map(|&iterations| {
            let trainer = SvmTrainer::new(config.dims).with_iterations(iterations);
            let (_, jr) = trainer.train(&java, data.clone()).expect("java trains");
            let (_, sr) = trainer.train(&spark, data.clone()).expect("spark trains");
            Fig2IterRow {
                iterations,
                java_ms: jr.stats.total_simulated_ms(),
                spark_ms: sr.stats.total_simulated_ms(),
            }
        })
        .collect()
}

/// Render the iteration sweep.
pub fn render_iteration_sweep(rows: usize, series: &[Fig2IterRow]) -> String {
    let mut s = format!(
        "Figure 2 (iteration effect) — SVM on {rows} rows: absolute gap grows with iterations
         iterations  java_ms     spark_ms    gap_ms
"
    );
    for r in series {
        s.push_str(&format!(
            "{:<10}  {:>10.1}  {:>10.1}  {:>8.1}
",
            r.iterations,
            r.java_ms,
            r.spark_ms,
            r.spark_ms - r.java_ms
        ));
    }
    s
}

/// Render the series like the paper's figure (one row per dataset).
pub fn render(rows: &[Fig2Row]) -> String {
    let mut s = String::from(
        "Figure 2 — SVM (100 iterations): Spark-like vs plain single-process\n\
         rows        java_ms     spark_ms    spark_speedup  winner\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<10}  {:>10.1}  {:>10.1}  {:>12.2}x  {}\n",
            r.rows,
            r.java_ms,
            r.spark_ms,
            r.spark_speedup(),
            if r.spark_speedup() > 1.0 {
                "spark-like"
            } else {
                "java"
            },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shape of Figure 2 on a scaled-down sweep: the
    /// single-process engine wins clearly on the small end, and the gap
    /// narrows (or flips) by the large end.
    #[test]
    fn shape_java_wins_small_and_gap_narrows() {
        let config = Fig2Config {
            sizes: vec![100, 50_000],
            dims: 8,
            iterations: 30,
            workers: 4,
            job_startup: Duration::from_millis(10),
            stage_overhead: Duration::from_millis(2),
        };
        let rows = run(&config);
        assert!(
            rows[0].spark_speedup() < 0.5,
            "java should win small inputs by >2x, got {:.2}x",
            rows[0].spark_speedup()
        );
        assert!(
            rows[1].spark_speedup() > 1.0,
            "spark-like should win the large input: {:.3}x",
            rows[1].spark_speedup()
        );
    }

    /// "This performance gap gets bigger with the number of iterations":
    /// on small data, the Spark-like absolute disadvantage grows with the
    /// iteration count (each iteration re-pays the stage overhead).
    #[test]
    fn small_data_gap_grows_with_iterations() {
        let series = run_iteration_sweep(500, &[5, 20, 80]);
        let gap: Vec<f64> = series.iter().map(|r| r.spark_ms - r.java_ms).collect();
        assert!(
            gap[0] > 0.0 && gap[1] > gap[0] && gap[2] > gap[1] && gap[2] > gap[0] * 2.0,
            "gap should grow with iterations: {gap:?}"
        );
    }
}
