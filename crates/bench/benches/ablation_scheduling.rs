//! Ablation (criterion): sequential vs. wave-parallel atom scheduling on a
//! fan-out plan whose branches are pinned to distinct platforms and are
//! mutually independent — the workload shape the wave scheduler exists for.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_core::optimizer::enumerate::split_into_atoms;
use rheem_core::plan::PlanBuilder;
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, MapUdf, ReduceUdf};
use rheem_core::{ExecutionPlan, ScheduleMode};
use rheem_platforms::test_context;

const PLATFORMS: [&str; 3] = ["sparklike", "mapreduce", "java"];

/// One shared source on java fanning out to `branches` independent
/// aggregation branches, each pinned to a platform round-robin.
fn fanout_plan(n: i64, branches: usize) -> ExecutionPlan {
    let mut b = PlanBuilder::new();
    let mut assignments = vec!["java".to_string()];
    let src = b.collection("s", (0..n).map(|i| rec![i % 64, i]).collect());
    for branch in 0..branches {
        let platform = PLATFORMS[branch % PLATFORMS.len()];
        let shift = branch as i64;
        let m = b.map(
            src,
            MapUdf::new("shift", move |r| {
                rec![r.int(0).unwrap(), r.int(1).unwrap() + shift]
            }),
        );
        let agg = b.reduce_by_key(
            m,
            KeyUdf::field(0).with_distinct_keys(64.0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        b.collect(agg);
        assignments.extend([
            platform.to_string(),
            platform.to_string(),
            platform.to_string(),
        ]);
    }
    let physical = b.build().unwrap();
    let atoms = split_into_atoms(&physical, &assignments);
    ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates: vec![],
        enumeration: Default::default(),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    for branches in [3usize, 6] {
        let exec = fanout_plan(20_000, branches);
        let sequential = test_context().with_schedule_mode(ScheduleMode::Sequential);
        let parallel = test_context()
            .with_schedule_mode(ScheduleMode::Parallel)
            .with_max_parallel_atoms(branches);
        let stats = parallel.execute_plan(&exec).unwrap().stats;
        eprintln!(
            "branches {branches}: {} atoms in {} waves (parallel)",
            stats.atoms.len(),
            stats.waves
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", branches),
            &exec,
            |b, exec| b.iter(|| sequential.execute_plan(exec).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("parallel", branches), &exec, |b, exec| {
            b.iter(|| parallel.execute_plan(exec).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
