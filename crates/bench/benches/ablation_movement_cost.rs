//! Ablation B (criterion): executing the plans chosen by the
//! movement-aware vs. movement-oblivious optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use rheem_bench::ablations::{mixed_pipeline_plan, movement_context};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_movement_cost");
    group.sample_size(10);
    let ctx = movement_context(20_000);
    let plan = mixed_pipeline_plan();
    let aware = ctx.optimize(plan.clone()).unwrap();
    let oblivious_ctx = {
        let mut c2 = movement_context(20_000);
        let opt = std::mem::take(c2.optimizer_mut());
        *c2.optimizer_mut() = opt.ignore_movement_costs();
        c2
    };
    let oblivious = oblivious_ctx.optimize(plan).unwrap();
    group.bench_function("aware_plan", |b| {
        b.iter(|| ctx.execute_plan(&aware).unwrap())
    });
    group.bench_function("oblivious_plan", |b| {
        b.iter(|| ctx.execute_plan(&oblivious).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
