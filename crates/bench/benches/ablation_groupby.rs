//! Ablation D (criterion): SortGroupBy vs HashGroupBy kernels (the
//! paper's Example 2 choice point), under few and many keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_core::kernels::{hash_group, sort_group};
use rheem_core::rec;
use rheem_core::udf::KeyUdf;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_groupby");
    group.sample_size(10);
    let n = 100_000i64;
    for &keys in &[16i64, 50_000] {
        let data: Vec<_> = (0..n).map(|i| rec![i % keys, i]).collect();
        let key = KeyUdf::field(0);
        group.bench_with_input(BenchmarkId::new("hash", keys), &data, |b, d| {
            b.iter(|| hash_group(d, &key).len())
        });
        group.bench_with_input(BenchmarkId::new("sort", keys), &data, |b, d| {
            b.iter(|| sort_group(d, &key).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
