//! Ablation (self-timed): exhaustive-exponential vs. lattice-v2 plan
//! enumeration, emitting `BENCH_enumeration.json` at the repo root.
//!
//! Two claims are measured and *asserted*, not just reported:
//!
//! 1. On every small plan (≤ 10 nodes here; the oracle caps at 12) the v2
//!    enumerator's chosen cost equals the exhaustive optimum exactly
//!    (`costs_match` per entry), while visiting polynomially many states
//!    where the oracle visits `platforms^nodes`.
//! 2. A 120-operator plan enumerates on the lattice path within the
//!    default expansion budget (`within_budget` on the `large` entry) —
//!    the shape that motivates chain contraction in the first place.
//!
//! `ENUM_BENCH_QUICK=1` trims the sweep and iteration count for CI.

use std::sync::Arc;
use std::time::Instant;

use rheem_core::data::Record;
use rheem_core::optimizer::enumerate_with_config;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{FilterUdf, GroupMapUdf, KeyUdf, MapUdf};
use rheem_core::{enumerate_exhaustive, EnumerationConfig, EnumerationPath, EnumerationStrategy};
use rheem_platforms::test_context;

/// Time `f` over `iters` runs; return best milliseconds.
fn time_best<T>(iters: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 1..iters {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    if iters == 1 {
        best = 0.0;
    }
    (best.max(0.0), out)
}

fn map_inc(b: &mut PlanBuilder, input: NodeId) -> NodeId {
    b.map(
        input,
        MapUdf::new("inc", |r| {
            rec![r.int(0).unwrap() + 1, r.int(1).unwrap_or(1)]
        }),
    )
}

/// A linear chain of `nodes` operators: source → maps/filter → sink.
fn chain_plan(nodes: usize) -> PhysicalPlan {
    assert!(nodes >= 2);
    let mut b = PlanBuilder::new();
    let mut cur = b.collection("s", (0..60i64).map(|i| rec![i % 7, 1i64]).collect());
    for i in 0..nodes - 2 {
        cur = if i % 3 == 2 {
            b.filter(cur, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0))
        } else {
            map_inc(&mut b, cur)
        };
    }
    b.collect(cur);
    b.build().unwrap()
}

/// `width` two-node branches merged by a union tree: 3·width nodes total.
fn bushy_plan(width: usize) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut branches = Vec::new();
    for br in 0..width {
        let src = b.collection(
            format!("s{br}"),
            (0..40i64).map(|i| rec![i % 5, 1i64]).collect(),
        );
        branches.push(map_inc(&mut b, src));
    }
    while branches.len() > 1 {
        let l = branches.remove(0);
        let r = branches.remove(0);
        branches.push(b.union(l, r));
    }
    b.collect(branches[0]);
    b.build().unwrap()
}

/// The budget showcase: `branches` long map chains (ending in a group-by)
/// merged into one sink — 120+ operators.
fn large_plan(branches: usize, chain_len: usize) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut tips = Vec::new();
    for br in 0..branches {
        let mut cur = b.collection(
            format!("s{br}"),
            (0..50i64).map(|i| rec![i % 9, 1i64]).collect(),
        );
        for _ in 0..chain_len {
            cur = map_inc(&mut b, cur);
        }
        cur = b.group_by(
            cur,
            KeyUdf::field(0),
            GroupMapUdf::new("tally", |k, members| {
                vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
            }),
        );
        tips.push(cur);
    }
    while tips.len() > 1 {
        let l = tips.remove(0);
        let r = tips.remove(0);
        tips.push(b.union(l, r));
    }
    b.collect(tips[0]);
    b.build().unwrap()
}

struct Entry {
    shape: &'static str,
    nodes: usize,
    oracle_ms: f64,
    v2_ms: f64,
    oracle_cost: f64,
    v2_cost: f64,
    costs_match: bool,
    expansions: usize,
    within_budget: bool,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "{{\"shape\":\"{}\",\"nodes\":{},\"oracle_ms\":{:.3},\"v2_ms\":{:.3},\
             \"oracle_cost\":{:.6},\"v2_cost\":{:.6},\"costs_match\":{},\
             \"expansions\":{},\"within_budget\":{}}}",
            self.shape,
            self.nodes,
            self.oracle_ms,
            self.v2_ms,
            self.oracle_cost,
            self.v2_cost,
            self.costs_match,
            self.expansions,
            self.within_budget
        )
    }
}

fn main() {
    let quick = std::env::var_os("ENUM_BENCH_QUICK").is_some();
    let iters = if quick { 1 } else { 5 };
    let ctx = test_context();
    let opt = ctx.optimizer();
    let movement = opt.movement.channelized(ctx.platforms());
    let config = EnumerationConfig {
        strategy: EnumerationStrategy::LatticeV2,
        ..EnumerationConfig::default()
    };

    let mut entries: Vec<Entry> = Vec::new();

    // Depth sweep (chains) and width sweep (bushy union trees), all under
    // the oracle's 12-node cap so both sides enumerate the same space.
    let mut small: Vec<(&'static str, PhysicalPlan)> = Vec::new();
    let depths: &[usize] = if quick { &[8] } else { &[4, 8, 10] };
    for &d in depths {
        small.push(("chain", chain_plan(d)));
    }
    let widths: &[usize] = if quick { &[3] } else { &[2, 3] };
    for &w in widths {
        small.push(("bushy", bushy_plan(w)));
    }

    for (shape, plan) in small {
        let nodes = plan.len();
        let (oracle_ms, (_, oracle_cost)) = time_best(iters.max(2), || {
            enumerate_exhaustive(
                &plan,
                ctx.platforms(),
                &opt.estimator,
                &movement,
                &config,
                &opt.calibration,
            )
            .expect("oracle enumerates")
        });
        let arc = Arc::new(plan);
        let (v2_ms, exec) = time_best(iters.max(2), || {
            enumerate_with_config(
                arc.clone(),
                ctx.platforms(),
                &opt.estimator,
                &movement,
                &config,
                &opt.calibration,
            )
            .expect("v2 enumerates")
        });
        assert_eq!(exec.enumeration.path, EnumerationPath::LatticeV2);
        let tol = 1e-9 * oracle_cost.max(1.0);
        let costs_match = (exec.estimated_cost - oracle_cost).abs() <= tol;
        assert!(
            costs_match,
            "{shape}/{nodes}: v2 {} != oracle {oracle_cost}",
            exec.estimated_cost
        );
        eprintln!(
            "{shape} nodes={nodes}: oracle {oracle_ms:.3} ms, v2 {v2_ms:.3} ms \
             ({} expansions), costs match",
            exec.enumeration.expansions
        );
        entries.push(Entry {
            shape,
            nodes,
            oracle_ms,
            v2_ms,
            oracle_cost,
            v2_cost: exec.estimated_cost,
            costs_match,
            expansions: exec.enumeration.expansions,
            within_budget: exec.enumeration.expansions <= config.max_expansions,
        });
    }

    // The 120-operator plan: far past the oracle, must stay on the
    // lattice path (no greedy fallback) under the default budget.
    let plan = large_plan(10, 10);
    let nodes = plan.len();
    assert!(nodes >= 120, "large plan has {nodes} nodes");
    let arc = Arc::new(plan);
    let (v2_ms, exec) = time_best(iters.max(2), || {
        enumerate_with_config(
            arc.clone(),
            ctx.platforms(),
            &opt.estimator,
            &movement,
            &config,
            &opt.calibration,
        )
        .expect("v2 enumerates the large plan")
    });
    let within_budget = exec.enumeration.path == EnumerationPath::LatticeV2
        && exec.enumeration.expansions <= config.max_expansions;
    assert!(
        within_budget,
        "large plan fell off the lattice path: {:?} after {} expansions",
        exec.enumeration.path, exec.enumeration.expansions
    );
    eprintln!(
        "large nodes={nodes}: v2 {v2_ms:.3} ms, {} expansions, within budget",
        exec.enumeration.expansions
    );
    entries.push(Entry {
        shape: "large",
        nodes,
        oracle_ms: -1.0, // exponential — not run
        v2_ms,
        oracle_cost: -1.0,
        v2_cost: exec.estimated_cost,
        costs_match: true,
        expansions: exec.enumeration.expansions,
        within_budget,
    });

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let body: Vec<String> = entries
        .iter()
        .map(|e| format!("    {}", e.json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_enumeration\",\n  \"unix_time\": {stamp},\n  \
         \"host\": {{\"cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"}},\n  \"note\": \
         \"oracle_ms/oracle_cost are -1 on the large entry (the exhaustive sweep is \
         exponential and not run past 12 nodes); costs_match asserts the v2 optimum \
         equals the oracle optimum on every small plan; within_budget asserts the \
         120-op plan stayed on the lattice path under the default expansion budget\",\
         \n  \"entries\": [\n{}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        body.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_enumeration.json");
    std::fs::write(path, &json).expect("write BENCH_enumeration.json");
    eprintln!("wrote {path} ({} entries)", entries.len());
}
