//! Figure 3 right (criterion): BigDansing+IEJoin vs. the cross-product
//! baseline on the inequality rule. (The time-budget wall is demonstrated
//! by the `fig3_table` binary; criterion tracks the crossover region.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_cleaning::{detect, DenialConstraint, DetectionStrategy};
use rheem_core::RheemContext;
use rheem_datagen::tax::{columns, generate, TaxConfig};
use rheem_platforms::{OverheadConfig, SparkLikePlatform};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_baselines");
    group.sample_size(10);
    let ctx = RheemContext::new().with_platform(Arc::new(
        SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
    ));
    let rule = DenialConstraint::inequality(
        "salary-rate",
        columns::ID,
        columns::SALARY,
        columns::TAX_RATE,
    );
    for &n in &[1_000usize, 4_000] {
        let (data, _) =
            generate(&TaxConfig::new(n).with_error_rates(0.0, (10.0 / n as f64).min(0.05)));
        group.bench_with_input(BenchmarkId::new("iejoin", n), &data, |b, d| {
            b.iter(|| detect(&ctx, d.clone(), &rule, DetectionStrategy::IeJoin).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cross_product", n), &data, |b, d| {
            b.iter(|| detect(&ctx, d.clone(), &rule, DetectionStrategy::CrossProduct).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
