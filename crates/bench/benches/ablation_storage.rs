//! Ablation E (criterion): hot-buffer hits vs. cold simulated-HDFS reads,
//! and Cartilage-prepared layouts vs. raw re-parsing.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rheem_core::data::Dataset;
use rheem_core::platform::StorageService;
use rheem_core::rec;
use rheem_storage::{SimHdfsConfig, SimHdfsStore, StorageLayer, TransformStep, TransformationPlan};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_storage");
    group.sample_size(10);
    let data = Dataset::new(rheem_datagen::relational::sensor_readings(
        20_000, 8, 0.02, 5,
    ));

    let hdfs = || {
        Arc::new(SimHdfsStore::new(
            "hdfs",
            SimHdfsConfig {
                block_records: 1_000,
                sleep: false, // criterion measures the decode work itself
                ..SimHdfsConfig::default()
            },
        ))
    };
    let hot = StorageLayer::new(hdfs()).with_hot_buffer(1_000_000);
    let cold = StorageLayer::new(hdfs());
    StorageService::write(&hot, "d", &data).unwrap();
    StorageService::write(&cold, "d", &data).unwrap();
    StorageService::read(&hot, "d").unwrap(); // warm the buffer
    group.bench_function("read_hot", |b| {
        b.iter(|| StorageService::read(&hot, "d").unwrap().len())
    });
    group.bench_function("read_cold", |b| {
        b.iter(|| StorageService::read(&cold, "d").unwrap().len())
    });

    let raw: Vec<_> = data
        .iter()
        .map(|r| {
            rec![format!(
                "{},{},{}",
                r.int(0).unwrap(),
                r.int(1).unwrap(),
                r.float(2).unwrap()
            )]
        })
        .collect();
    let plan = TransformationPlan::named("ingest").then(TransformStep::ParseCsv);
    let prepared = plan.apply(Dataset::new(raw.clone())).unwrap();
    group.bench_function("query_prepared", |b| {
        b.iter(|| {
            prepared
                .iter()
                .filter(|r| r.float(2).map(|p| p > 100.0).unwrap_or(false))
                .count()
        })
    });
    group.bench_function("query_reparsing", |b| {
        b.iter(|| {
            plan.apply(Dataset::new(raw.clone()))
                .unwrap()
                .iter()
                .filter(|r| r.float(2).map(|p| p > 100.0).unwrap_or(false))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
