//! Ablation (self-timed): sequential vs. morsel-parallel kernels on
//! groupby and join workloads at 10^5–10^6 rows across 1/2/4/8 kernel
//! threads, emitting machine-readable `BENCH_kernels.json` at the repo
//! root with host metadata.
//!
//! Determinism is asserted inline: every morsel run must be byte-equal to
//! the sequential run it is compared against, so the numbers can never
//! come from a kernel that cheated on the merge contract.

use std::time::Instant;

use rheem_core::kernels::{self, parallel};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, ReduceUdf};
use rheem_core::KernelParallelism;

const ITERS: u32 = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Time `f` over `ITERS` runs; return (best_ms, mean_ms).
fn time<F: FnMut()>(mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..ITERS {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
    }
    (best, total / ITERS as f64)
}

struct Entry {
    workload: &'static str,
    kernel: &'static str,
    rows: usize,
    threads: usize,
    best_ms: f64,
    mean_ms: f64,
    speedup: f64,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"kernel\":\"{}\",\"rows\":{},\"threads\":{},\
             \"best_ms\":{:.3},\"mean_ms\":{:.3},\"speedup_vs_sequential\":{:.3}}}",
            self.workload,
            self.kernel,
            self.rows,
            self.threads,
            self.best_ms,
            self.mean_ms,
            self.speedup
        )
    }
}

/// Benchmark one kernel: a sequential baseline entry (threads = 0 marks
/// the non-morsel code path) plus one morsel entry per thread count.
fn sweep(
    entries: &mut Vec<Entry>,
    workload: &'static str,
    kernel: &'static str,
    rows: usize,
    sequential: &mut dyn FnMut(),
    morsel: &mut dyn FnMut(&KernelParallelism),
) {
    let (best, mean) = time(&mut *sequential);
    entries.push(Entry {
        workload,
        kernel,
        rows,
        threads: 0,
        best_ms: best,
        mean_ms: mean,
        speedup: 1.0,
    });
    let baseline = best;
    for t in THREADS {
        let p = KernelParallelism::sequential().with_threads(t);
        let (best, mean) = time(|| morsel(&p));
        entries.push(Entry {
            workload,
            kernel,
            rows,
            threads: t,
            best_ms: best,
            mean_ms: mean,
            speedup: baseline / best.max(1e-9),
        });
        eprintln!("{workload}/{kernel} rows={rows} threads={t}: best {best:.1} ms");
    }
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    for rows in [100_000usize, 1_000_000] {
        let keys = 64i64;
        let data: Vec<_> = (0..rows as i64).map(|i| rec![i % keys, i]).collect();
        let key = KeyUdf::field(0);
        let reduce = ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        });

        let expect = kernels::hash_group(&data, &key);
        sweep(
            &mut entries,
            "groupby",
            "hash_group",
            rows,
            &mut || {
                kernels::hash_group(&data, &key);
            },
            &mut |p| assert_eq!(parallel::hash_group(&data, &key, p), expect),
        );
        let expect = kernels::reduce_by_key(&data, &key, &reduce);
        sweep(
            &mut entries,
            "groupby",
            "reduce_by_key",
            rows,
            &mut || {
                kernels::reduce_by_key(&data, &key, &reduce);
            },
            &mut |p| assert_eq!(parallel::reduce_by_key(&data, &key, &reduce, p), expect),
        );

        // Dimension-style equi-join: unique right keys covering every left
        // key exactly once, so the output stays linear in `rows` (a shared
        // key domain as small as the group-by's would make the match
        // rectangles — and the output — quadratic).
        let dim_keys = (rows / 10) as i64;
        let fact: Vec<_> = (0..rows as i64).map(|i| rec![i % dim_keys, i]).collect();
        let dims: Vec<_> = (0..dim_keys).map(|i| rec![i, i * 7]).collect();
        let expect = kernels::hash_join(&fact, &dims, &key, &key);
        sweep(
            &mut entries,
            "join",
            "hash_join",
            rows,
            &mut || {
                kernels::hash_join(&fact, &dims, &key, &key);
            },
            &mut |p| assert_eq!(parallel::hash_join(&fact, &dims, &key, &key, p), expect),
        );
        // Unique-key sides keep the sort-merge output linear in `rows`.
        let left_u: Vec<_> = (0..rows as i64).map(|i| rec![i, i]).collect();
        let right_u: Vec<_> = (0..rows as i64 / 2).map(|i| rec![i * 2, i]).collect();
        let expect = kernels::sort_merge_join(&left_u, &right_u, &key, &key);
        sweep(
            &mut entries,
            "join",
            "sort_merge_join",
            rows,
            &mut || {
                kernels::sort_merge_join(&left_u, &right_u, &key, &key);
            },
            &mut |p| {
                assert_eq!(
                    parallel::sort_merge_join(&left_u, &right_u, &key, &key, p),
                    expect
                )
            },
        );
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let body: Vec<String> = entries
        .iter()
        .map(|e| format!("    {}", e.json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_kernels\",\n  \"unix_time\": {stamp},\n  \"iters\": {ITERS},\
         \n  \"host\": {{\"cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"}},\n  \"note\": \
         \"threads=0 rows are the sequential (non-morsel) baseline; speedups are physically \
         bounded by host cpus\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        body.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    eprintln!("wrote {path} ({} entries, {cpus} cpu(s))", entries.len());
}
