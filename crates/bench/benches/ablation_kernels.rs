//! Ablation (self-timed), two experiments emitting one machine-readable
//! `BENCH_kernels.json` at the repo root with host metadata:
//!
//! 1. **morsel** — sequential vs. morsel-parallel kernels on groupby and
//!    join workloads at 10^5–10^6 rows across 1/2/4/8 kernel threads;
//! 2. **columnar** — row (pre) vs. chunk (post) kernels on the same row
//!    counts: each entry carries both timings side by side. Per-kernel
//!    entries compare representation-native runs (records in/out vs.
//!    chunk in/out); the `pipeline` entry is the full production path —
//!    records in, one `Chunk::from_records`, the fused stage chain, and
//!    `to_records` back out — against the equivalent row operator chain,
//!    so conversion costs are charged where the executor pays them.
//!
//! Determinism is asserted inline: every morsel or chunk run must be
//! byte-equal to the row run it is compared against, so the numbers can
//! never come from a kernel that cheated on its equivalence contract.

use std::sync::Arc;
use std::time::Instant;

use rheem_core::data::Chunk;
use rheem_core::expr::Expr;
use rheem_core::kernels::{self, chunked, parallel};
use rheem_core::physical::{PipelineStage, StageKind};
use rheem_core::rec;
use rheem_core::udf::{FieldReduce, FilterUdf, KeyUdf, MapUdf, ReduceUdf};
use rheem_core::KernelParallelism;

const ITERS: u32 = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Smallest nonzero interval the monotonic clock can report, in ms, with
/// a 1 µs floor. Speedup denominators are clamped here: a timing below
/// this is indistinguishable from zero, so dividing by it fabricates
/// ratios (the old report showed a 681477× "speedup" from a 0.000 ms
/// denominator). Entries whose denominator was clamped carry
/// `below_timer_resolution: true` instead of pretending the ratio is real.
fn timer_resolution_ms() -> f64 {
    let mut res = f64::INFINITY;
    for _ in 0..64 {
        let t = Instant::now();
        let ms = loop {
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if ms > 0.0 {
                break ms;
            }
        };
        res = res.min(ms);
    }
    res.max(1e-3)
}

/// Time `f` over `ITERS` runs; return (best_ms, mean_ms).
fn time<F: FnMut()>(mut f: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..ITERS {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
    }
    (best, total / ITERS as f64)
}

struct Entry {
    workload: &'static str,
    kernel: &'static str,
    rows: usize,
    threads: usize,
    best_ms: f64,
    mean_ms: f64,
    speedup: f64,
    below_timer_resolution: bool,
}

impl Entry {
    fn json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"kernel\":\"{}\",\"rows\":{},\"threads\":{},\
             \"best_ms\":{:.3},\"mean_ms\":{:.3},\"speedup_vs_sequential\":{:.3},\
             \"below_timer_resolution\":{}}}",
            self.workload,
            self.kernel,
            self.rows,
            self.threads,
            self.best_ms,
            self.mean_ms,
            self.speedup,
            self.below_timer_resolution
        )
    }
}

/// Benchmark one kernel: a sequential baseline entry (threads = 0 marks
/// the non-morsel code path) plus one morsel entry per thread count.
fn sweep(
    entries: &mut Vec<Entry>,
    resolution_ms: f64,
    workload: &'static str,
    kernel: &'static str,
    rows: usize,
    sequential: &mut dyn FnMut(),
    morsel: &mut dyn FnMut(&KernelParallelism),
) {
    let (best, mean) = time(&mut *sequential);
    entries.push(Entry {
        workload,
        kernel,
        rows,
        threads: 0,
        best_ms: best,
        mean_ms: mean,
        speedup: 1.0,
        below_timer_resolution: best < resolution_ms,
    });
    let baseline = best;
    for t in THREADS {
        let p = KernelParallelism::sequential().with_threads(t);
        let (best, mean) = time(|| morsel(&p));
        entries.push(Entry {
            workload,
            kernel,
            rows,
            threads: t,
            best_ms: best,
            mean_ms: mean,
            speedup: baseline / best.max(resolution_ms),
            below_timer_resolution: best < resolution_ms,
        });
        eprintln!("{workload}/{kernel} rows={rows} threads={t}: best {best:.1} ms");
    }
}

/// One row-vs-chunk comparison: `row_ms` is the pre-columnar (row kernel)
/// timing, `chunk_ms` the post-columnar one.
struct ColEntry {
    kernel: &'static str,
    rows: usize,
    row_ms: f64,
    chunk_ms: f64,
    resolution_ms: f64,
}

impl ColEntry {
    fn speedup(&self) -> f64 {
        self.row_ms / self.chunk_ms.max(self.resolution_ms)
    }

    fn json(&self) -> String {
        format!(
            "{{\"workload\":\"columnar\",\"kernel\":\"{}\",\"rows\":{},\
             \"row_ms\":{:.3},\"chunk_ms\":{:.3},\"speedup_chunk_vs_row\":{:.3},\
             \"below_timer_resolution\":{}}}",
            self.kernel,
            self.rows,
            self.row_ms,
            self.chunk_ms,
            self.speedup(),
            self.chunk_ms < self.resolution_ms
        )
    }
}

/// Row (pre) vs. chunk (post) on one kernel; both sides best-of-`ITERS`.
fn col_sweep(
    entries: &mut Vec<ColEntry>,
    resolution_ms: f64,
    kernel: &'static str,
    rows: usize,
    row: &mut dyn FnMut(),
    chunk: &mut dyn FnMut(),
) {
    let (row_best, _) = time(&mut *row);
    let (chunk_best, _) = time(&mut *chunk);
    let entry = ColEntry {
        kernel,
        rows,
        row_ms: row_best,
        chunk_ms: chunk_best,
        resolution_ms,
    };
    eprintln!(
        "columnar/{kernel} rows={rows}: row {row_best:.1} ms, chunk {chunk_best:.1} ms ({:.2}x)",
        entry.speedup()
    );
    entries.push(entry);
}

/// The columnar experiment: row kernels vs. chunk kernels on a 2-column
/// Int dataset (64 skewed keys) — except group-by, which runs on a
/// string-keyed dataset to exercise the dictionary lane — plus the
/// fused-pipeline production path.
fn columnar_experiment(entries: &mut Vec<ColEntry>, resolution_ms: f64, rows: usize) {
    let keys = 64i64;
    let data: Vec<_> = (0..rows as i64).map(|i| rec![i % keys, i]).collect();
    let chunk = Chunk::from_records(&data).expect("rectangular");
    let key = KeyUdf::field(0);

    // Filter: expression predicate on both sides (same derived closure).
    let pred = Expr::field(1).rem(Expr::lit(3i64)).eq(Expr::lit(1i64));
    let filter_udf = FilterUdf::from_expr("mod3", pred.clone());
    let expect = kernels::filter(&data, &filter_udf);
    assert_eq!(chunked::filter(&chunk, &pred).to_records(), expect);
    col_sweep(
        entries,
        resolution_ms,
        "filter",
        rows,
        &mut || {
            kernels::filter(&data, &filter_udf);
        },
        &mut || {
            chunked::filter(&chunk, &pred);
        },
    );

    // Map: arithmetic over both fields.
    let exprs = vec![Expr::field(0).add(Expr::field(1)), Expr::field(1)];
    let map_udf = MapUdf::from_exprs("sum", exprs.clone());
    assert_eq!(
        chunked::map(&chunk, &exprs).to_records(),
        kernels::map(&data, &map_udf)
    );
    col_sweep(
        entries,
        resolution_ms,
        "map",
        rows,
        &mut || {
            kernels::map(&data, &map_udf);
        },
        &mut || {
            chunked::map(&chunk, &exprs);
        },
    );

    // Project: per-record field clones vs. an O(1) column view.
    assert_eq!(
        chunked::project(&chunk, &[1]).unwrap().to_records(),
        kernels::project(&data, &[1]).unwrap()
    );
    col_sweep(
        entries,
        resolution_ms,
        "project",
        rows,
        &mut || {
            kernels::project(&data, &[1]).unwrap();
        },
        &mut || {
            chunked::project(&chunk, &[1]).unwrap();
        },
    );

    // Reduce-by-key with a declarative spec: Value-hashed record folds vs.
    // flat i64 accumulators.
    let reduce = ReduceUdf::from_spec("sum", vec![FieldReduce::First, FieldReduce::SumInt]);
    let expect = kernels::reduce_by_key(&data, &key, &reduce);
    assert_eq!(chunked::reduce_by_key(&chunk, &key, &reduce), expect);
    col_sweep(
        entries,
        resolution_ms,
        "reduce_by_key",
        rows,
        &mut || {
            kernels::reduce_by_key(&data, &key, &reduce);
        },
        &mut || {
            chunked::reduce_by_key(&chunk, &key, &reduce);
        },
    );

    // Group-by on a string key (URL-style, 8k distinct): the row kernel
    // re-hashes and re-compares the full key bytes for every record, while
    // the chunk side groups by dictionary code — no string bytes are
    // touched per row. This is the dictionary lane's representative
    // workload; both sides still materialize the same `Vec<(Value,
    // Vec<Record>)>`, so the ratio is honest about output cost.
    let group_keys = 8192i64;
    let group_data: Vec<_> = (0..rows as i64)
        .map(|i| {
            let k = i % group_keys;
            rec![
                format!(
                    "https://example.com/products/cat-{:04}/item-9f8a7b6c5d4e3f2a1b0c{:08}",
                    k,
                    k * 7
                ),
                i
            ]
        })
        .collect();
    let group_chunk = Chunk::from_records(&group_data).expect("rectangular");
    assert_eq!(
        chunked::hash_group(&group_chunk, &key),
        kernels::hash_group(&group_data, &key)
    );
    col_sweep(
        entries,
        resolution_ms,
        "hash_group",
        rows,
        &mut || {
            kernels::hash_group(&group_data, &key);
        },
        &mut || {
            chunked::hash_group(&group_chunk, &key);
        },
    );

    // Joins: engine build+probe with selection-vector output vs. the row
    // kernels' HashMap build / record-concat probe. Dimension-style right
    // side (unique keys covering every left key once) keeps the output
    // linear in `rows`.
    let dim_keys = (rows / 10) as i64;
    let fact: Vec<_> = (0..rows as i64).map(|i| rec![i % dim_keys, i]).collect();
    let dims: Vec<_> = (0..dim_keys).map(|i| rec![i, i * 7]).collect();
    let fact_chunk = Chunk::from_records(&fact).expect("rectangular");
    let dims_chunk = Chunk::from_records(&dims).expect("rectangular");
    assert_eq!(
        chunked::hash_join(&fact_chunk, &dims_chunk, &key, &key).to_records(),
        kernels::hash_join(&fact, &dims, &key, &key)
    );
    col_sweep(
        entries,
        resolution_ms,
        "hash_join",
        rows,
        &mut || {
            kernels::hash_join(&fact, &dims, &key, &key);
        },
        &mut || {
            chunked::hash_join(&fact_chunk, &dims_chunk, &key, &key);
        },
    );
    assert_eq!(
        chunked::sort_merge_join(&fact_chunk, &dims_chunk, &key, &key).to_records(),
        kernels::sort_merge_join(&fact, &dims, &key, &key)
    );
    col_sweep(
        entries,
        resolution_ms,
        "sort_merge_join",
        rows,
        &mut || {
            kernels::sort_merge_join(&fact, &dims, &key, &key);
        },
        &mut || {
            chunked::sort_merge_join(&fact_chunk, &dims_chunk, &key, &key);
        },
    );

    // The production path: records → chunk → fused filter+map+project →
    // records, vs. three row operator passes. Conversion is inside the
    // timed region on the chunk side.
    let stages = vec![
        PipelineStage {
            name: "mod3".into(),
            kind: StageKind::Filter {
                expr: Arc::new(pred.clone()),
                selectivity: 1.0 / 3.0,
            },
        },
        PipelineStage {
            name: "sum".into(),
            kind: StageKind::Map {
                exprs: exprs.clone().into(),
            },
        },
        PipelineStage {
            name: "π[0]".into(),
            kind: StageKind::Project {
                indices: vec![0usize].into(),
            },
        },
    ];
    let seq = KernelParallelism::sequential();
    let expect = {
        let f = kernels::filter(&data, &filter_udf);
        let m = kernels::map(&f, &map_udf);
        kernels::project(&m, &[0]).unwrap()
    };
    assert_eq!(
        parallel::run_pipeline(&data, &stages, &seq).unwrap(),
        expect
    );
    col_sweep(
        entries,
        resolution_ms,
        "pipeline",
        rows,
        &mut || {
            let f = kernels::filter(&data, &filter_udf);
            let m = kernels::map(&f, &map_udf);
            kernels::project(&m, &[0]).unwrap();
        },
        &mut || {
            parallel::run_pipeline(&data, &stages, &seq).unwrap();
        },
    );
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    let mut col_entries: Vec<ColEntry> = Vec::new();
    let resolution_ms = timer_resolution_ms();
    eprintln!("timer resolution: {resolution_ms:.6} ms");
    for rows in [100_000usize, 1_000_000] {
        columnar_experiment(&mut col_entries, resolution_ms, rows);
    }
    for rows in [100_000usize, 1_000_000] {
        let keys = 64i64;
        let data: Vec<_> = (0..rows as i64).map(|i| rec![i % keys, i]).collect();
        let key = KeyUdf::field(0);
        let reduce = ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        });

        let expect = kernels::hash_group(&data, &key);
        sweep(
            &mut entries,
            resolution_ms,
            "groupby",
            "hash_group",
            rows,
            &mut || {
                kernels::hash_group(&data, &key);
            },
            &mut |p| assert_eq!(parallel::hash_group(&data, &key, p), expect),
        );
        let expect = kernels::reduce_by_key(&data, &key, &reduce);
        sweep(
            &mut entries,
            resolution_ms,
            "groupby",
            "reduce_by_key",
            rows,
            &mut || {
                kernels::reduce_by_key(&data, &key, &reduce);
            },
            &mut |p| assert_eq!(parallel::reduce_by_key(&data, &key, &reduce, p), expect),
        );

        // Dimension-style equi-join: unique right keys covering every left
        // key exactly once, so the output stays linear in `rows` (a shared
        // key domain as small as the group-by's would make the match
        // rectangles — and the output — quadratic).
        let dim_keys = (rows / 10) as i64;
        let fact: Vec<_> = (0..rows as i64).map(|i| rec![i % dim_keys, i]).collect();
        let dims: Vec<_> = (0..dim_keys).map(|i| rec![i, i * 7]).collect();
        let expect = kernels::hash_join(&fact, &dims, &key, &key);
        sweep(
            &mut entries,
            resolution_ms,
            "join",
            "hash_join",
            rows,
            &mut || {
                kernels::hash_join(&fact, &dims, &key, &key);
            },
            &mut |p| assert_eq!(parallel::hash_join(&fact, &dims, &key, &key, p), expect),
        );
        // Unique-key sides keep the sort-merge output linear in `rows`.
        let left_u: Vec<_> = (0..rows as i64).map(|i| rec![i, i]).collect();
        let right_u: Vec<_> = (0..rows as i64 / 2).map(|i| rec![i * 2, i]).collect();
        let expect = kernels::sort_merge_join(&left_u, &right_u, &key, &key);
        sweep(
            &mut entries,
            resolution_ms,
            "join",
            "sort_merge_join",
            rows,
            &mut || {
                kernels::sort_merge_join(&left_u, &right_u, &key, &key);
            },
            &mut |p| {
                assert_eq!(
                    parallel::sort_merge_join(&left_u, &right_u, &key, &key, p),
                    expect
                )
            },
        );
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let body: Vec<String> = col_entries
        .iter()
        .map(|e| format!("    {}", e.json()))
        .chain(entries.iter().map(|e| format!("    {}", e.json())))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_kernels\",\n  \"unix_time\": {stamp},\n  \"iters\": {ITERS},\
         \n  \"host\": {{\"cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\", \
         \"timer_resolution_ms\": {resolution_ms:.6}}},\n  \"note\": \
         \"columnar entries carry pre (row_ms) and post (chunk_ms) columns; per-kernel entries \
         are representation-native, the pipeline entry includes record<->chunk conversion. \
         threads=0 rows are the sequential (non-morsel) baseline; morsel speedups are \
         physically bounded by host cpus. speedup denominators clamp to timer_resolution_ms; \
         entries with below_timer_resolution=true have untrustworthy ratios\",\
         \n  \"entries\": [\n{}\n  ]\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        body.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    eprintln!(
        "wrote {path} ({} entries, {cpus} cpu(s))",
        entries.len() + col_entries.len()
    );
}
