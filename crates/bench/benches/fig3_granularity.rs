//! Figure 3 left (criterion): monolithic detect UDF vs. the BigDansing
//! operator pipeline on the Spark-like engine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_cleaning::{detect, DenialConstraint, DetectionStrategy};
use rheem_core::RheemContext;
use rheem_datagen::tax::{columns, generate, TaxConfig};
use rheem_platforms::{OverheadConfig, SparkLikePlatform};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_granularity");
    group.sample_size(10);
    let ctx = RheemContext::new().with_platform(Arc::new(
        SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
    ));
    let rule = DenialConstraint::functional_dependency(
        "zip-state",
        columns::ID,
        columns::ZIP,
        columns::STATE,
    );
    for &n in &[2_000usize, 8_000] {
        let (data, _) = generate(&TaxConfig::new(n));
        group.bench_with_input(BenchmarkId::new("single_udf", n), &data, |b, d| {
            b.iter(|| detect(&ctx, d.clone(), &rule, DetectionStrategy::SingleUdf).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pipeline", n), &data, |b, d| {
            b.iter(|| detect(&ctx, d.clone(), &rule, DetectionStrategy::OperatorPipeline).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
