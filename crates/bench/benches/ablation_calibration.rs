//! Ablation (criterion): does one calibrated run pay for itself?
//!
//! Benchmarks the same aggregation workload executed on the uncalibrated
//! plan (picked by a lying cost model) vs. the plan the optimizer chooses
//! after a single observed run folded real runtimes into the calibration
//! table. Prints the estimated-vs-observed `explain` views so the flip and
//! the per-atom error ratios are visible in the run log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_bench::calibration::{flip_context, flip_plan, run_calibration_flip};

fn bench(c: &mut Criterion) {
    let n = 20_000;
    let report = run_calibration_flip(n);
    eprintln!(
        "uncalibrated plan: {:?} ({:.3} ms observed)",
        report.first_assignments, report.first_observed_ms
    );
    eprintln!("{}", report.first_explain_observed);
    eprintln!(
        "calibrated plan:   {:?} ({:.3} ms observed)",
        report.second_assignments, report.second_observed_ms
    );
    eprintln!("{}", report.second_explain_observed);
    assert_ne!(
        report.first_assignments, report.second_assignments,
        "calibration must change the plan"
    );

    let mut group = c.benchmark_group("ablation_calibration");
    group.sample_size(10);

    // Uncalibrated: a fresh context per iteration batch, first plan only.
    group.bench_with_input(BenchmarkId::new("uncalibrated", n), &n, |b, &n| {
        let (ctx, _observe) = flip_context();
        let exec = ctx.optimize(flip_plan(n)).unwrap();
        b.iter(|| ctx.execute_plan(&exec).unwrap())
    });

    // Calibrated: one observed run, then benchmark the corrected plan.
    group.bench_with_input(BenchmarkId::new("calibrated", n), &n, |b, &n| {
        let (ctx, _observe) = flip_context();
        let warmup = ctx.optimize(flip_plan(n)).unwrap();
        ctx.execute_plan(&warmup).unwrap();
        let exec = ctx.optimize(flip_plan(n)).unwrap();
        b.iter(|| ctx.execute_plan(&exec).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
