//! Figure 2 (criterion): SVM training on the single-process vs. the
//! Spark-like engine at both ends of the size spectrum.
//!
//! Sleeps are disabled here so criterion measures pure engine mechanics
//! (threading and shuffles vs. straight-line execution); the `fig2_svm_table`
//! binary runs the slept, paper-shaped sweep.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_core::RheemContext;
use rheem_datagen::libsvm::{generate, LibsvmConfig};
use rheem_ml::SvmTrainer;
use rheem_platforms::{JavaPlatform, OverheadConfig, SparkLikePlatform};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_svm");
    group.sample_size(10);
    let java = RheemContext::new().with_platform(Arc::new(JavaPlatform::new()));
    let spark = RheemContext::new().with_platform(Arc::new(
        SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
    ));
    for &n in &[500usize, 20_000] {
        let data = generate(&LibsvmConfig::new(n, 8));
        let trainer = SvmTrainer::new(8).with_iterations(10);
        group.bench_with_input(BenchmarkId::new("java", n), &data, |b, d| {
            b.iter(|| trainer.train(&java, d.clone()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sparklike", n), &data, |b, d| {
            b.iter(|| trainer.train(&spark, d.clone()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
