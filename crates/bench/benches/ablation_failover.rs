//! Ablation (criterion): a job whose expensive suffix is routed to a
//! cluster engine that turns out to be down. The failover-enabled
//! configuration commits the java prefix, re-plans the suffix around the
//! outage, and finishes with fault-free outputs; the rigid configuration
//! errors. The bench tracks the latency of the surviving run (outage +
//! re-plan + fallback execution) in both schedule modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_bench::failover::run_failover_ablation;
use rheem_bench::replanning::{misestimated_plan, replanning_context};
use rheem_core::{FailureInjector, FaultPolicy, ScheduleMode};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_failover");
    group.sample_size(10);
    for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
        for n in [2_000i64, 8_000] {
            let report = run_failover_ablation(n, mode);
            eprintln!(
                "{mode:?} n {n}: rigid failed: {}, failovers: {}, recommitted: {}, \
                 outputs identical: {}, {:?} → {:?}",
                report.rigid_run_failed,
                report.failovers,
                report.recommitted_atoms,
                report.outputs_identical,
                report.initial_assignments,
                report.effective_assignments,
            );

            let exec = replanning_context().optimize(misestimated_plan(n)).unwrap();
            let ctx = replanning_context()
                .with_schedule_mode(mode)
                .with_max_retries(1)
                .with_fault_policy(FaultPolicy::instant())
                .with_failure_injector(Arc::new(FailureInjector::platform_down("cluster")));
            let id = BenchmarkId::new(format!("failover_{mode:?}"), n);
            group.bench_with_input(id, &exec, |b, exec| {
                b.iter(|| ctx.execute_plan(exec).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
