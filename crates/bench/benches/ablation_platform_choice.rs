//! Ablation A (criterion): optimizer free choice vs forced platforms on a
//! keyed aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_bench::ablations::aggregation_plan;
use rheem_platforms::test_context;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_platform_choice");
    group.sample_size(10);
    for &n in &[1_000usize, 200_000] {
        let plan = aggregation_plan(n, 64);
        let free = test_context();
        group.bench_with_input(BenchmarkId::new("optimizer", n), &plan, |b, p| {
            b.iter(|| free.execute(p.clone()).unwrap())
        });
        for platform in ["java", "sparklike"] {
            let forced = test_context().force_platform(platform);
            group.bench_with_input(BenchmarkId::new(platform, n), &plan, |b, p| {
                b.iter(|| forced.execute(p.clone()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
