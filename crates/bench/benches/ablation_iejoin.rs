//! Ablation C (criterion): IEJoin vs brute-force pair scan, algorithm-only
//! (no plan machinery), across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_cleaning::iejoin::ie_self_join_canonical;

fn brute_force(tuples: &[(i64, f64, f64)]) -> usize {
    let mut n = 0;
    for s in tuples {
        for t in tuples {
            if s.0 != t.0 && s.1 > t.1 && s.2 < t.2 {
                n += 1;
            }
        }
    }
    n
}

fn data(n: usize) -> Vec<(i64, f64, f64)> {
    // Monotone b in a (few violations), with ~10 outliers.
    (0..n)
        .map(|i| {
            let a = (i as f64 * 17.0) % 1000.0;
            let b = if i % (n / 10).max(1) == 0 {
                0.0
            } else {
                a / 10.0 + 1.0
            };
            (i as i64, a, b)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iejoin");
    group.sample_size(10);
    for &n in &[1_000usize, 8_000, 32_000] {
        let tuples = data(n);
        group.bench_with_input(BenchmarkId::new("iejoin", n), &tuples, |b, t| {
            b.iter(|| ie_self_join_canonical(t).len())
        });
        if n <= 8_000 {
            group.bench_with_input(BenchmarkId::new("brute_force", n), &tuples, |b, t| {
                b.iter(|| brute_force(t))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
