//! Closed-loop multi-tenant load generator for the job server (self-timed),
//! emitting `BENCH_server.json` at the repo root.
//!
//! Two tenants run concurrent sessions against one in-process
//! `RheemServer`, each looping over a small statement mix against its own
//! registered table. Three claims are measured and *asserted*, not just
//! reported:
//!
//! 1. Fair-share wave scheduling: both tenants are granted waves and the
//!    scheduler's grant log interleaves them (`grant_switches > 0`).
//! 2. The plan cache hits on repeated statements (`hits > 0`), because
//!    each session's statement cache preserves UDF closure identity.
//! 3. Cached-plan executions return byte-identical rows to the cold
//!    execution of the same statement (`outputs_match`, compared on the
//!    canonical wire encoding).
//! 4. A *cancel storm* (DESIGN.md §14): one tenant hurls zero-deadline
//!    requests (shed in the admission queue) while a second connection
//!    spams `CANCEL`; the storm's shed/cancelled/completed counts and the
//!    survivors' p99 are recorded, and the server must stay fully
//!    serviceable afterwards.
//!
//! `SERVER_BENCH_QUICK=1` trims the request count for CI.

use std::time::Instant;

use rheem_core::{DataType, PlanCacheConfig, Record, Schema, Value};
use rheem_server::protocol::encode_rows;
use rheem_server::{Client, RheemServer, ServerConfig};

fn table_schema() -> Schema {
    Schema::new(vec![
        ("region", DataType::Str),
        ("amount", DataType::Int),
        ("price", DataType::Float),
    ])
}

fn table_rows(seed: i64, n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(vec![
                Value::str(match (seed + i) % 3 {
                    0 => "east",
                    1 => "west",
                    _ => "north",
                }),
                Value::Int(seed + i),
                Value::Float(((seed + i) % 97) as f64 * 0.5),
            ])
        })
        .collect()
}

/// The per-tenant statement mix; repeated requests cycle through these, so
/// every statement past the first pass can hit the plan cache.
const STATEMENTS: &[&str] = &[
    "SELECT region, SUM(amount) AS total FROM orders GROUP BY region ORDER BY region",
    "SELECT region, amount, price FROM orders WHERE amount > 100 ORDER BY amount LIMIT 25",
    "SELECT COUNT(*) AS n, AVG(price) AS avg_price FROM orders",
];

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct TenantReport {
    tenant: &'static str,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    granted_waves: u64,
}

struct StormReport {
    requests: usize,
    shed_deadline: u64,
    cancelled: u64,
    completed: usize,
    p99_ms: f64,
}

fn main() {
    let quick = std::env::var_os("SERVER_BENCH_QUICK").is_some();
    let requests_per_tenant = if quick { 24 } else { 150 };
    let rows_per_table: i64 = if quick { 300 } else { 2000 };

    // A high drift threshold keeps early calibration swings from
    // invalidating entries: this bench measures steady-state caching;
    // drift invalidation is covered by its own tests.
    let config = ServerConfig {
        cache: PlanCacheConfig {
            drift_threshold: 1e12,
            ..PlanCacheConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut handle = RheemServer::start(config).expect("server starts");
    let addr = handle.addr();

    let tenants: &[(&'static str, i64)] = &[("alpha", 0), ("beta", 5000)];
    let wall = Instant::now();
    let mut per_tenant_lat: Vec<(&'static str, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|&(tenant, seed)| {
                s.spawn(move || {
                    let mut client = Client::connect(addr, tenant).expect("connect");
                    client
                        .register("orders", table_schema(), table_rows(seed, rows_per_table))
                        .expect("register");
                    let mut latencies = Vec::with_capacity(requests_per_tenant);
                    for i in 0..requests_per_tenant {
                        let sql = STATEMENTS[i % STATEMENTS.len()];
                        let t = Instant::now();
                        let (_, rows) = client.query(sql).expect("query");
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        assert!(!rows.is_empty(), "{tenant}: `{sql}` returned no rows");
                    }
                    client.goodbye().expect("goodbye");
                    (tenant, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    // Byte-identical outputs: a fresh session runs each statement cold
    // (first execution in its cache scope is a miss) and then warm (hit),
    // and the canonical wire encodings must match exactly.
    let mut outputs_match = true;
    {
        let mut client = Client::connect(addr, "verifier").expect("connect");
        client
            .register("orders", table_schema(), table_rows(42, rows_per_table))
            .expect("register");
        for sql in STATEMENTS {
            let (_, cold) = client.query(sql).expect("cold run");
            let (_, warm) = client.query(sql).expect("warm run");
            let identical = encode_rows(&cold) == encode_rows(&warm);
            assert!(identical, "cached run of `{sql}` diverged from cold run");
            outputs_match &= identical;
        }
        client.goodbye().expect("goodbye");
    }

    // Cancel storm: a third tenant alternates zero-deadline requests
    // (aged out in the admission queue before costing a worker) with
    // normal ones, while a second connection under the same tenant spams
    // CANCEL-all. Shed/cancelled counts come off the server's own
    // counters; the p99 is over the requests that survived the storm.
    let storm = {
        let storm_requests = if quick { 12 } else { 60 };
        let metrics = handle.observability().metrics();
        let shed_before = metrics.counter_value("server.jobs.shed_deadline");
        let cancelled_before = metrics.counter_value("server.jobs.cancelled");
        let mut client = Client::connect(addr, "storm").expect("connect");
        client
            .register("orders", table_schema(), table_rows(7, rows_per_table))
            .expect("register");
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut survivors: Vec<f64> = Vec::new();
        let mut completed = 0usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut canceller = Client::connect(addr, "storm").expect("connect canceller");
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    canceller.cancel(0).expect("cancel-all");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                canceller.goodbye().expect("goodbye");
            });
            for i in 0..storm_requests {
                let sql = STATEMENTS[i % STATEMENTS.len()];
                let t = Instant::now();
                let outcome = if i % 3 == 0 {
                    client.query_with_deadline(sql, std::time::Duration::ZERO)
                } else {
                    client.query(sql)
                };
                match outcome {
                    Ok((_, rows)) => {
                        survivors.push(t.elapsed().as_secs_f64() * 1e3);
                        completed += 1;
                        assert!(!rows.is_empty(), "storm: `{sql}` returned no rows");
                    }
                    Err(err) => {
                        // The only acceptable failures are the storm's own
                        // doing: a queue shed or a cancellation — never a
                        // protocol error or a lost worker.
                        let message = err.to_string();
                        assert!(
                            message.contains("deadline") || message.contains("cancelled"),
                            "storm request failed for a non-storm reason: {message}"
                        );
                    }
                }
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        });

        // The storm must not degrade the server: the storm tenant's own
        // session and a fresh tenant both get full service afterwards.
        for sql in STATEMENTS {
            let (_, rows) = client.query(sql).expect("post-storm query");
            assert!(!rows.is_empty(), "post-storm `{sql}` returned no rows");
        }
        client.goodbye().expect("goodbye");
        let mut after = Client::connect(addr, "aftermath").expect("connect");
        after
            .register("orders", table_schema(), table_rows(11, rows_per_table))
            .expect("register");
        let (_, rows) = after.query(STATEMENTS[0]).expect("post-storm fresh tenant");
        assert!(!rows.is_empty());
        after.goodbye().expect("goodbye");

        let shed_deadline = metrics.counter_value("server.jobs.shed_deadline") - shed_before;
        let cancelled = metrics.counter_value("server.jobs.cancelled") - cancelled_before;
        assert!(shed_deadline >= 1, "zero-deadline requests never shed");
        survivors.sort_by(|a, b| a.total_cmp(b));
        StormReport {
            requests: storm_requests,
            shed_deadline,
            cancelled,
            completed,
            p99_ms: percentile(&survivors, 0.99),
        }
    };

    let granted = handle.scheduler().granted_waves();
    let log = handle.scheduler().grant_log();
    let grant_switches = log
        .windows(2)
        .filter(|pair| pair[0].tenant != pair[1].tenant)
        .count();
    let total_grants = handle.scheduler().total_grants();
    let cache = handle.plan_cache().stats();
    handle.shutdown();

    // Assert the measured claims.
    for (tenant, _) in tenants {
        let waves = granted.get(*tenant).copied().unwrap_or(0);
        assert!(waves > 0, "tenant {tenant} was granted no waves");
    }
    assert!(
        grant_switches > 0,
        "grant log never interleaved tenants: {log:?}"
    );
    assert!(
        cache.hits > 0,
        "repeated statements never hit the plan cache: {cache:?}"
    );
    assert!(outputs_match);

    let mut all: Vec<f64> = Vec::new();
    let mut reports: Vec<TenantReport> = Vec::new();
    for (tenant, latencies) in per_tenant_lat.iter_mut() {
        all.extend_from_slice(latencies);
        latencies.sort_by(|a, b| a.total_cmp(b));
        reports.push(TenantReport {
            tenant,
            requests: latencies.len(),
            p50_ms: percentile(latencies, 0.50),
            p99_ms: percentile(latencies, 0.99),
            granted_waves: granted.get(*tenant).copied().unwrap_or(0),
        });
    }
    all.sort_by(|a, b| a.total_cmp(b));
    let requests_total: usize = reports.iter().map(|r| r.requests).sum();
    let p50 = percentile(&all, 0.50);
    let p99 = percentile(&all, 0.99);
    assert!(p99 >= p50);
    let throughput_rps = requests_total as f64 / (wall_ms / 1e3);
    let hit_rate = cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64;

    for r in &reports {
        eprintln!(
            "{}: {} requests, p50 {:.2} ms, p99 {:.2} ms, {} waves granted",
            r.tenant, r.requests, r.p50_ms, r.p99_ms, r.granted_waves
        );
    }
    eprintln!(
        "total: {requests_total} requests in {wall_ms:.0} ms ({throughput_rps:.1} req/s), \
         cache hit rate {:.2}, {grant_switches} grant interleavings",
        hit_rate
    );
    eprintln!(
        "storm: {} requests, {} shed on deadline, {} cancelled, {} completed, \
         survivor p99 {:.2} ms",
        storm.requests, storm.shed_deadline, storm.cancelled, storm.completed, storm.p99_ms
    );

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let tenant_json: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"tenant\":\"{}\",\"requests\":{},\"p50_ms\":{:.3},\
                 \"p99_ms\":{:.3},\"granted_waves\":{}}}",
                r.tenant, r.requests, r.p50_ms, r.p99_ms, r.granted_waves
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ablation_server\",\n  \"unix_time\": {stamp},\n  \
         \"host\": {{\"cpus\": {cpus}, \"os\": \"{}\", \"arch\": \"{}\"}},\n  \"note\": \
         \"closed-loop load generator: two concurrent tenant sessions against one \
         in-process server; fairness is read off the scheduler's wave-grant log, \
         outputs_match asserts cached-plan rows are byte-identical to the cold run \
         on the canonical wire encoding; cancel_storm drives a zero-deadline plus \
         CANCEL-spam storm at a third tenant and records shed/cancelled counts and \
         the survivors' p99\",\n  \
         \"tenants\": {},\n  \"requests_total\": {requests_total},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \"throughput_rps\": {throughput_rps:.2},\n  \
         \"latency_ms\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}}},\n  \
         \"per_tenant\": [\n{}\n  ],\n  \
         \"fair_share\": {{\"grant_switches\": {grant_switches}, \"total_grants\": {}}},\n  \
         \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}, \
         \"hit_rate\": {hit_rate:.4}}},\n  \
         \"cancel_storm\": {{\"requests\": {}, \"shed_deadline\": {}, \"cancelled\": {}, \
         \"completed\": {}, \"p99_ms\": {:.3}}},\n  \"outputs_match\": {outputs_match}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        tenants.len(),
        tenant_json.join(",\n"),
        total_grants,
        cache.hits,
        cache.misses,
        cache.invalidations,
        storm.requests,
        storm.shed_deadline,
        storm.cancelled,
        storm.completed,
        storm.p99_ms,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    eprintln!("wrote {path}");
}
