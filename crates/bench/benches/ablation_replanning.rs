//! Ablation (criterion): static execution of a mis-estimated plan vs. the
//! same plan with adaptive mid-job re-optimization enabled. The adaptive
//! run flips the remaining atoms off the cluster engine at the first wave
//! boundary once the observed cardinality exposes the fanout lie.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rheem_bench::replanning::{misestimated_plan, replanning_context, run_replanning_ablation};
use rheem_core::ReplanPolicy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replanning");
    group.sample_size(10);
    for n in [2_000i64, 8_000] {
        let report = run_replanning_ablation(n);
        eprintln!(
            "n {n}: static {:.2} ms → adaptive {:.2} ms ({} replan(s), outputs identical: {}), \
             {:?} → {:?}",
            report.static_simulated_ms,
            report.adaptive_simulated_ms,
            report.replans,
            report.outputs_identical,
            report.initial_assignments,
            report.effective_assignments,
        );

        let exec = replanning_context().optimize(misestimated_plan(n)).unwrap();
        let static_ctx = replanning_context();
        let adaptive_ctx = replanning_context().with_replan_policy(ReplanPolicy {
            threshold: 2.0,
            max_replans: 2,
        });
        group.bench_with_input(BenchmarkId::new("static", n), &exec, |b, exec| {
            b.iter(|| static_ctx.execute_plan(exec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("adaptive", n), &exec, |b, exec| {
            b.iter(|| adaptive_ctx.execute_plan(exec).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
