//! Chaos tests for cancellation, deadlines, and panic isolation
//! (DESIGN.md §14).
//!
//! The property under storm: whatever mix of panicking UDFs, pre- and
//! mid-flight cancels one tenant throws at the service, (a) every
//! submission completes with a *typed* outcome — no hung submitter, no
//! lost worker thread — and (b) an innocent tenant running concurrently
//! still gets byte-identical results.
//!
//! The panicking-UDF cases drive [`JobService`] + `RheemContext` directly
//! rather than over the wire, because the SQL surface cannot express a
//! panicking closure; the wire-level tests below cover the protocol side
//! (deadline shedding, `CANCEL`, idle eviction).

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rheem_core::udf::MapUdf;
use rheem_core::{
    rec, CancelReason, KernelParallelism, MetricsRegistry, PhysicalPlan, PlanBuilder, Record,
    RheemContext, RheemError, ScheduleMode,
};
use rheem_server::{AdmissionError, Client, JobService, RheemServer, ServerConfig, ServiceConfig};

fn chaos_service(workers: usize) -> (Arc<JobService>, Arc<MetricsRegistry>) {
    let metrics = Arc::new(MetricsRegistry::new());
    let svc = JobService::start(
        ServiceConfig {
            workers,
            queue_capacity: 32,
            max_inflight_per_tenant: 8,
            drain_grace: Duration::from_secs(5),
        },
        metrics.clone(),
    );
    (Arc::new(svc), metrics)
}

/// A linear plan over `records` rows whose map UDF panics at row
/// `panic_at` (when set) and naps `nap_per_record` per row (to hold a
/// wave open long enough for mid-flight cancels to land mid-execution).
fn chaos_plan(records: usize, panic_at: Option<usize>, nap_per_record: Duration) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let rows: Vec<Record> = (0..records as i64).map(|i| rec![i]).collect();
    let src = b.collection("chaos", rows);
    let mapped = b.map(
        src,
        MapUdf::new("chaos-map", move |r| {
            if !nap_per_record.is_zero() {
                std::thread::sleep(nap_per_record);
            }
            if panic_at == Some(r.int(0).unwrap() as usize) {
                panic!("chaos panic at row {}", r.int(0).unwrap());
            }
            r.clone()
        }),
    );
    b.collect(mapped);
    b.build().unwrap()
}

/// The steady tenant's fixed reference workload.
fn steady_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let rows: Vec<Record> = (0..64i64).map(|i| rec![i]).collect();
    let src = b.collection("steady", rows);
    let mapped = b.map(
        src,
        MapUdf::new("steady-map", |r| rec![r.int(0).unwrap() * 3]),
    );
    b.collect(mapped);
    b.build().unwrap()
}

fn run_steady(ctx: &RheemContext) -> Vec<Record> {
    ctx.execute(steady_plan())
        .expect("steady job completes")
        .single()
        .expect("one sink")
        .records()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random chaos jobs (clean / panicking / pre-cancelled / cancelled at
    /// a random point mid-flight) share the pool with a steady tenant.
    /// Every chaos submission resolves typed, the steady tenant's answer
    /// stays byte-identical, and both workers survive the storm.
    #[test]
    fn chaos_storm_never_breaks_the_service(
        specs in proptest::collection::vec(
            (
                4usize..40,   // rows in the chaos plan
                0u8..4,       // 0 clean, 1 panic, 2 pre-cancel, 3 cancel mid-flight
                0usize..40,   // panic row (mod rows)
                0u64..1500,   // cancel delay, microseconds
            ),
            1..6,
        ),
        sequential in any::<bool>(),
    ) {
        let (svc, _metrics) = chaos_service(2);
        let mut base = rheem_platforms::full_context();
        if sequential {
            base = base.with_schedule_mode(ScheduleMode::Sequential);
        }
        let expected = run_steady(&base);

        let outcomes = std::thread::scope(|s| {
            let chaos_handles: Vec<_> = specs
                .iter()
                .map(|&(rows, mode, panic_row, delay_us)| {
                    let svc = svc.clone();
                    let ctx = base.clone();
                    s.spawn(move || {
                        svc.submit_job("chaos", None, move |run| {
                            match mode {
                                2 => {
                                    run.cancel.cancel(CancelReason::Explicit);
                                }
                                3 => {
                                    let token = run.cancel.clone();
                                    std::thread::spawn(move || {
                                        std::thread::sleep(Duration::from_micros(delay_us));
                                        token.cancel(CancelReason::Explicit);
                                    });
                                }
                                _ => {}
                            }
                            let panic_at = (mode == 1).then_some(panic_row % rows);
                            // A small nap per row keeps mid-flight cancels
                            // genuinely mid-execution.
                            let nap = if mode == 3 {
                                Duration::from_micros(100)
                            } else {
                                Duration::ZERO
                            };
                            let ctx = ctx.with_cancel_token(run.cancel.clone());
                            ctx.execute(chaos_plan(rows, panic_at, nap))
                                .map(|r| r.single().map(|d| d.records().len()).unwrap_or(0))
                        })
                    })
                })
                .collect();

            // The steady tenant keeps querying while the storm rages.
            for _ in 0..3 {
                let ctx = base.clone();
                let rows = svc
                    .submit_job("steady", None, move |run| {
                        let ctx = ctx.with_cancel_token(run.cancel.clone());
                        ctx.execute(steady_plan())
                            .map(|r| r.single().map(|d| d.records().to_vec()))
                    })
                    .expect("steady admission")
                    .expect("steady execution")
                    .expect("steady single sink");
                assert_eq!(rows, expected, "steady tenant's answer drifted");
            }

            chaos_handles
                .into_iter()
                .map(|h| h.join().expect("chaos submitter thread survived"))
                .collect::<Vec<_>>()
        });

        for (outcome, &(_, mode, _, _)) in outcomes.iter().zip(&specs) {
            // Panic isolation happens at the executor layer: the service's
            // own catch_unwind backstop must never be what saves us here.
            prop_assert!(
                !matches!(outcome, Err(AdmissionError::JobPanicked { .. })),
                "a panic escaped the executor: {outcome:?}"
            );
            match mode {
                1 => prop_assert!(
                    matches!(outcome, Ok(Err(RheemError::Panic { .. }))),
                    "panicking job must surface a typed Panic, got {outcome:?}"
                ),
                2 => prop_assert!(
                    matches!(outcome, Ok(Err(RheemError::Cancelled { .. }))),
                    "pre-cancelled job must surface Cancelled, got {outcome:?}"
                ),
                // Clean jobs succeed; mid-flight cancels race the finish
                // line, so either completion or Cancelled is legitimate.
                0 => prop_assert!(matches!(outcome, Ok(Ok(_))), "clean job failed: {outcome:?}"),
                _ => prop_assert!(
                    matches!(outcome, Ok(Ok(_)) | Ok(Err(RheemError::Cancelled { .. }))),
                    "mid-flight cancel gave {outcome:?}"
                ),
            }
        }

        // No worker thread was lost: both pool workers can still meet at a
        // barrier, which needs two live threads running simultaneously.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let svc = svc.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    svc.submit("prober", move || {
                        barrier.wait();
                    })
                    .expect("prober job runs");
                });
            }
        });
        prop_assert_eq!(svc.queued(), 0);
        prop_assert_eq!(svc.inflight("chaos"), 0);
        prop_assert_eq!(svc.inflight("steady"), 0);
    }
}

/// A running job cancelled by id returns `Cancelled` within one wave +
/// one morsel — long before its uncancelled runtime — and frees its slot.
#[test]
fn cancelling_a_running_job_stops_it_within_a_morsel() {
    let (svc, metrics) = chaos_service(1);
    // Small morsels so "within one morsel" is a tight bound (with the
    // default 4096-record morsels the whole 400-row input is one morsel).
    let ctx = rheem_platforms::full_context().with_kernel_parallelism(KernelParallelism {
        threads: 2,
        morsel_size: 16,
        min_rows: 0,
    });
    // 400 rows × 5 ms/row ≈ 2 s uncancelled.
    let full_runtime = Duration::from_secs(2);
    let started = Instant::now();
    let job_ctx = ctx.clone();
    let handle = svc
        .submit_handle("t", None, move |run| {
            let ctx = job_ctx.with_cancel_token(run.cancel.clone());
            ctx.execute(chaos_plan(400, None, Duration::from_millis(5)))
        })
        .expect("admitted");
    // Wait until the job is registered and has had a moment to start
    // chewing morsels, then cancel it by its public id.
    while svc.inflight_ids("t").is_empty() {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(30));
    assert!(svc.cancel_job("t", handle.id(), CancelReason::Explicit));
    let outcome = handle.wait().expect("typed completion, not a hang");
    let elapsed = started.elapsed();
    match outcome {
        Err(RheemError::Cancelled {
            reason: CancelReason::Explicit,
        }) => {}
        other => panic!("expected Cancelled(Explicit), got {other:?}"),
    }
    assert!(
        elapsed < full_runtime / 2,
        "cancel took {elapsed:?}, uncancelled runtime is {full_runtime:?}"
    );
    assert_eq!(metrics.counter_value("server.jobs.cancelled"), 1);
    assert_eq!(svc.inflight("t"), 0, "cancelled job freed its slot");
}

/// Over the wire: a request whose deadline has already lapsed is shed in
/// the admission queue — typed error, `server.jobs.shed_deadline` counter
/// — and the session survives to serve the retry.
#[test]
fn an_expired_deadline_is_shed_before_costing_a_worker() {
    let mut handle = RheemServer::start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr(), "dl").expect("connect");
    client
        .register(
            "t",
            rheem_core::Schema::new(vec![("x", rheem_core::DataType::Int)]),
            vec![rec![1i64], rec![2i64]],
        )
        .expect("register");
    let err = client
        .query_with_deadline("SELECT x FROM t", Duration::ZERO)
        .unwrap_err();
    assert!(
        err.to_string().contains("deadline exceeded"),
        "expected a typed deadline rejection, got: {err}"
    );
    // The session survives and the same statement runs without a deadline.
    let (_, rows) = client.query("SELECT x FROM t").expect("retry succeeds");
    assert_eq!(rows.len(), 2);
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("server.jobs.shed_deadline 1"),
        "missing shed counter in:\n{stats}"
    );
    client.goodbye().expect("goodbye");
    handle.shutdown();
}

/// Over the wire: `CANCEL` is tenant-scoped and idempotent, and STATS
/// reports the tenant's live job ids for addressing it.
#[test]
fn cancel_requests_are_idempotent_and_stats_lists_inflight_ids() {
    let mut handle = RheemServer::start(ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr(), "c").expect("connect");
    // Nothing in flight: both the targeted and the cancel-all forms are
    // accepted no-ops.
    client.cancel(42).expect("targeted cancel is idempotent");
    client.cancel(0).expect("cancel-all is idempotent");
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("server.tenant.c.inflight_ids []"),
        "missing inflight ids line in:\n{stats}"
    );
    client.goodbye().expect("goodbye");
    handle.shutdown();
}

/// A session that goes quiet past the idle timeout is evicted and counted
/// under `server.sessions.idle_evicted`; active sessions are untouched.
#[test]
fn an_idle_session_is_evicted_and_counted() {
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(60)),
        ..ServerConfig::default()
    };
    let mut handle = RheemServer::start(config).expect("server starts");
    let mut idle = Client::connect(handle.addr(), "idle").expect("connect");
    std::thread::sleep(Duration::from_millis(250));
    // The server has closed (or is closing) the idle session: the next
    // call fails rather than serving a request.
    assert!(idle.stats().is_err(), "idle session should be gone");
    let evicted = handle
        .observability()
        .metrics()
        .counter_value("server.sessions.idle_evicted");
    assert_eq!(evicted, 1, "eviction must be counted");
    // A fresh session works fine; the timeout only bites idle ones.
    let mut fresh = Client::connect(handle.addr(), "fresh").expect("connect");
    fresh.stats().expect("active session serves requests");
    fresh.goodbye().expect("goodbye");
    handle.shutdown();
}

/// Idleness is judged at frame boundaries only: a slow client whose
/// request frame trickles in byte by byte — every gap longer than the
/// idle timeout — is active, not idle, and still gets its response
/// (REVIEW: the idle timeout must not ride on per-`read()` timeouts).
#[test]
fn a_slow_mid_frame_client_is_not_idle_evicted() {
    use rheem_server::protocol::{read_frame, write_frame, Request, Response};
    use std::io::Write;
    use std::net::TcpStream;

    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(60)),
        ..ServerConfig::default()
    };
    let mut handle = RheemServer::start(config).expect("server starts");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let hello = Request::Hello {
        tenant: "slow".into(),
    };
    write_frame(&mut stream, &hello.encode()).expect("hello");
    let body = read_frame(&mut stream)
        .expect("hello reply")
        .expect("frame");
    assert!(matches!(
        Response::decode(&body).expect("decode"),
        Response::Ok
    ));

    // Drip a STATS request one byte at a time, stalling longer than the
    // idle timeout between bytes — both inside the length prefix and
    // inside the body.
    let body = Request::Stats.encode();
    let mut frame = (body.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&body);
    for (i, byte) in frame.iter().enumerate() {
        if i > 0 {
            // Stall between bytes only: once the frame completes the test
            // must read its reply promptly, or the post-response boundary
            // wait would itself (correctly) count as idleness.
            std::thread::sleep(Duration::from_millis(90));
        }
        stream.write_all(&[*byte]).expect("write byte");
        stream.flush().expect("flush");
    }
    let body = read_frame(&mut stream).expect("reply").expect("frame");
    assert!(
        matches!(
            Response::decode(&body).expect("decode"),
            Response::Stats { .. }
        ),
        "slow-but-active client must get its response, not an eviction"
    );
    let evicted = handle
        .observability()
        .metrics()
        .counter_value("server.sessions.idle_evicted");
    assert_eq!(evicted, 0, "mid-frame stalls must not count as idleness");
    handle.shutdown();
}

/// Shutdown with jobs in flight: the cancel path bounds the drain — the
/// server comes down in far less time than the stuck job would have run.
#[test]
fn shutdown_cancels_in_flight_jobs_and_drains_bounded() {
    let (svc, _metrics) = chaos_service(1);
    let ctx = rheem_platforms::full_context().with_kernel_parallelism(KernelParallelism {
        threads: 2,
        morsel_size: 16,
        min_rows: 0,
    });
    let job_ctx = ctx.clone();
    // ~2 s of work if never cancelled.
    let handle = svc
        .submit_handle("t", None, move |run| {
            let ctx = job_ctx.with_cancel_token(run.cancel.clone());
            ctx.execute(chaos_plan(400, None, Duration::from_millis(5)))
        })
        .expect("admitted");
    while svc.inflight_ids("t").is_empty() {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(20));
    let started = Instant::now();
    svc.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "shutdown drain took {:?}",
        started.elapsed()
    );
    match handle.wait() {
        Ok(Err(RheemError::Cancelled {
            reason: CancelReason::Shutdown,
        })) => {}
        other => panic!("expected Cancelled(Shutdown), got {other:?}"),
    }
}

/// Over the wire: a client that vanishes mid-query has its job cancelled
/// by the session's disconnect poll — counted under
/// `server.jobs.cancelled` — and both the worker and the other tenant's
/// queries come through unharmed.
#[test]
fn a_vanished_client_gets_its_job_cancelled() {
    use rheem_server::protocol::{read_frame, write_frame, Request, Response};

    // One worker, so the vanishing client's job sits queued behind two
    // blocker queries: a wide-open window for the 25 ms disconnect poll
    // to notice the hangup while the job is still live.
    let config = ServerConfig {
        service: ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut handle = RheemServer::start(config).expect("server starts");
    let addr = handle.addr();

    let schema = rheem_core::Schema::new(vec![
        ("region", rheem_core::DataType::Str),
        ("amount", rheem_core::DataType::Int),
    ]);
    let rows: Vec<Record> = (0..120_000i64)
        .map(|i| {
            Record::new(vec![
                rheem_core::Value::str(format!("r{:06}", (i * 7919) % 99_991)),
                rheem_core::Value::Int(i),
            ])
        })
        .collect();
    // A full string sort: tens of milliseconds even in release.
    let heavy = "SELECT region, amount FROM orders ORDER BY region LIMIT 50";

    let blockers = std::thread::scope(|s| {
        let slow: Vec<_> = (0..2)
            .map(|i| {
                let (schema, rows) = (schema.clone(), rows.clone());
                s.spawn(move || {
                    let mut client =
                        Client::connect(addr, if i == 0 { "block-a" } else { "block-b" })
                            .expect("connect blocker");
                    client.register("orders", schema, rows).expect("register");
                    let out = client.query(heavy);
                    client.goodbye().expect("goodbye");
                    out
                })
            })
            .collect();

        // Give the blockers a head start so the single worker is busy,
        // then submit from a raw stream and hang up without reading the
        // response.
        std::thread::sleep(Duration::from_millis(50));
        {
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            for request in [
                Request::Hello {
                    tenant: "gone".to_string(),
                },
                Request::Register {
                    name: "orders".to_string(),
                    schema: schema.clone(),
                    rows: rows.clone(),
                },
            ] {
                write_frame(&mut stream, &request.encode()).expect("send");
                let body = read_frame(&mut stream).expect("reply").expect("open");
                assert!(matches!(Response::decode(&body), Ok(Response::Ok)));
            }
            write_frame(
                &mut stream,
                &Request::Query {
                    sql: heavy.to_string(),
                    deadline_ms: None,
                }
                .encode(),
            )
            .expect("send query");
            // Vanish: the stream drops here, mid-query.
        }

        let metrics = handle.observability().metrics().clone();
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.counter_value("server.jobs.cancelled") == 0 {
            assert!(
                Instant::now() < deadline,
                "disconnect never cancelled the abandoned job"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        slow.into_iter()
            .map(|h| h.join().expect("blocker thread survived"))
            .collect::<Vec<_>>()
    });
    for out in blockers {
        let (_, rows) = out.expect("blocker query unharmed by the hangup");
        assert_eq!(rows.len(), 50);
    }
    handle.shutdown();
}
