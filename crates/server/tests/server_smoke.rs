//! End-to-end smoke test: start a server, run two concurrent tenant
//! sessions against it over real sockets, and shut it down cleanly.

use rheem_core::{DataType, PlanCacheConfig, Record, Schema, Value};
use rheem_server::{Client, RheemServer, ServerConfig};

fn sales_schema() -> Schema {
    Schema::new(vec![("region", DataType::Str), ("amount", DataType::Int)])
}

fn sales_rows(seed: i64) -> Vec<Record> {
    (0..40)
        .map(|i| {
            Record::new(vec![
                Value::str(if i % 2 == 0 { "east" } else { "west" }),
                Value::Int(seed + i),
            ])
        })
        .collect()
}

#[test]
fn two_concurrent_sessions_query_independently_and_shutdown_is_clean() {
    // A huge drift threshold keeps early cost-calibration swings from
    // invalidating entries mid-test: this test pins down the caching and
    // fairness mechanics; drift invalidation has its own tests.
    let config = ServerConfig {
        cache: PlanCacheConfig {
            drift_threshold: 1e12,
            ..PlanCacheConfig::default()
        },
        ..ServerConfig::default()
    };
    let mut handle = RheemServer::start(config).expect("server starts");
    let addr = handle.addr();

    let worker = |tenant: &'static str, seed: i64| {
        move || {
            let mut client = Client::connect(addr, tenant).expect("connect");
            client
                .register("sales", sales_schema(), sales_rows(seed))
                .expect("register");
            let sql = "SELECT region, SUM(amount) AS total FROM sales \
                       GROUP BY region ORDER BY region";
            let mut first: Option<Vec<Record>> = None;
            for _ in 0..3 {
                let (schema, rows) = client.query(sql).expect("query");
                assert_eq!(schema.width(), 2);
                assert_eq!(rows.len(), 2, "east and west groups");
                assert_eq!(rows[0].str(0).unwrap(), "east");
                assert_eq!(rows[1].str(0).unwrap(), "west");
                match &first {
                    None => first = Some(rows),
                    // Repeated executions of the same statement (which may
                    // be plan-cache hits) must return identical rows.
                    Some(expected) => assert_eq!(&rows, expected),
                }
            }
            let stats = client.stats().expect("stats");
            assert!(
                stats.contains(&format!("server.tenant.{tenant}.completed 3")),
                "missing tenant counter in:\n{stats}"
            );
            client.goodbye().expect("goodbye");
            first.unwrap()
        }
    };

    let (alpha_rows, beta_rows) = std::thread::scope(|s| {
        let alpha = s.spawn(worker("alpha", 0));
        let beta = s.spawn(worker("beta", 1000));
        (alpha.join().unwrap(), beta.join().unwrap())
    });
    // Same query shape, different data per session: results must differ
    // (no cross-session leakage through the plan cache).
    assert_ne!(alpha_rows, beta_rows);

    // Fair-share evidence: both tenants were granted waves.
    let granted = handle.scheduler().granted_waves();
    assert!(granted.get("alpha").copied().unwrap_or(0) > 0);
    assert!(granted.get("beta").copied().unwrap_or(0) > 0);

    // The repeated statements hit the shared plan cache.
    let cache = handle.plan_cache().stats();
    assert!(
        cache.hits >= 4,
        "expected >= 4 plan-cache hits (2 per session), got {cache:?}"
    );

    handle.shutdown();
    // Idempotent and clean: a second shutdown is a no-op, and new
    // connections are refused or dropped without a session.
    handle.shutdown();
    assert!(Client::connect(addr, "late").is_err());
}

#[test]
fn malformed_and_unadmitted_requests_get_clean_errors() {
    let mut handle = RheemServer::start(ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    // Querying an unregistered table is a planning error, not a hangup.
    let mut client = Client::connect(addr, "gamma").expect("connect");
    let err = client.query("SELECT x FROM nowhere").unwrap_err();
    assert!(err.to_string().contains("unknown table"), "{err}");

    // The session survives the error and still serves valid requests.
    client
        .register(
            "t",
            Schema::new(vec![("x", DataType::Int)]),
            vec![Record::new(vec![Value::Int(5)])],
        )
        .expect("register");
    let (_, rows) = client.query("SELECT x FROM t").expect("query");
    assert_eq!(rows, vec![Record::new(vec![Value::Int(5)])]);
    client.goodbye().expect("goodbye");

    handle.shutdown();
}
