//! Multi-tenant job service over the RHEEM core (DESIGN.md §13).
//!
//! The embedded [`rheem_core::RheemContext`] is a library: one process, one
//! job at a time, full trust. This crate turns it into a *service*: a
//! long-running process owning a shared worker pool that accepts concurrent
//! jobs from many clients over a simple length-prefixed wire protocol.
//!
//! The moving parts, each in its own module:
//!
//! * [`protocol`] — framing and message codec (`u32` big-endian length
//!   prefix, one opcode byte, flat payload encodings for schemas, rows, and
//!   values);
//! * [`scheduler`] — [`scheduler::FairShareScheduler`]: fair-share
//!   scheduling of *waves* across concurrently running jobs. The executor's
//!   wave boundary is the natural preemption point (no task is ever
//!   interrupted mid-atom), so the scheduler plugs in as a
//!   [`rheem_core::WaveGate`] and grants wave slots to the tenant with the
//!   least service so far;
//! * [`service`] — [`service::JobService`]: admission control in front of
//!   the worker pool. Per-tenant in-flight quotas and a bounded global
//!   queue; over-quota submissions are rejected immediately
//!   (backpressure), never silently queued without bound;
//! * [`server`] — the TCP server: per-session `QueryCatalog`, a statement
//!   cache preserving UDF closure identity across executions of the same
//!   SQL text (which is what makes opaque plan fingerprints hit the shared
//!   [`rheem_core::PlanCache`]), and per-session cache scopes so
//!   closure-identity cache entries are never shared across sessions;
//! * [`client`] — a small blocking client used by the tests and the
//!   closed-loop load generator in `crates/bench`.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod service;

pub use client::Client;
pub use scheduler::{FairShareScheduler, JobGate, WaveGrant};
pub use server::{RheemServer, ServerConfig, ServerHandle};
pub use service::{AdmissionError, JobHandle, JobRun, JobService, ServiceConfig};
