//! Wire protocol: length-prefixed frames with a one-byte opcode.
//!
//! Every message is `u32` big-endian body length, then the body; the body's
//! first byte is the opcode, the rest is the opcode-specific payload. All
//! integers are big-endian, all strings are `u32`-length-prefixed UTF-8.
//!
//! Requests: [`Request::Hello`] (tenant name), [`Request::Register`]
//! (table name + schema + rows), [`Request::Query`] (SQL text + optional
//! deadline), [`Request::Stats`], [`Request::Cancel`] (in-flight job id),
//! [`Request::Goodbye`]. Responses: [`Response::Ok`],
//! [`Response::Err`] (message), [`Response::Rows`] (schema + rows),
//! [`Response::Stats`] (key/value lines).
//!
//! Values are tagged: `0` null, `1` bool (+1 byte), `2` int (+8 bytes),
//! `3` float (+8 bytes, IEEE bits), `4` string (+length-prefixed UTF-8).
//! The encoding is canonical — equal rows encode to equal bytes — which the
//! byte-identical plan-cache acceptance checks rely on.

use std::io::{Read, Write};

use rheem_core::{DataType, Record, Schema, Value};

/// Largest frame body accepted (16 MiB): a malformed or malicious length
/// prefix must not make the server attempt an unbounded allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// A protocol-level error (I/O or malformed frame).
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Frame violated the encoding (bad opcode, bad tag, overlong, ...).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Result alias for protocol operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session as the named tenant. Must be the first message.
    Hello {
        /// Tenant (accounting/quota identity), e.g. `"alpha"`.
        tenant: String,
    },
    /// Register (or replace) an in-memory table in the session catalog.
    Register {
        /// Table name as referenced from SQL.
        name: String,
        /// Column names and types.
        schema: Schema,
        /// Table rows.
        rows: Vec<Record>,
    },
    /// Plan and execute a SQL query; replies with [`Response::Rows`].
    Query {
        /// SQL text.
        sql: String,
        /// Optional per-request deadline in milliseconds, counted from
        /// the moment the server admits the request: queue-wait time is
        /// charged against it, and a request that ages out in the
        /// admission queue is shed before ever costing a worker.
        deadline_ms: Option<u64>,
    },
    /// Ask for server-side counters; replies with [`Response::Stats`].
    Stats,
    /// Cancel an in-flight job of this session's tenant. `job: 0`
    /// cancels every in-flight job of the tenant. Replies with
    /// [`Response::Ok`] whether or not the id was still running
    /// (cancellation is idempotent).
    Cancel {
        /// Server-assigned job id (reported in `STATS` under
        /// `server.tenant.<t>.inflight_ids`), or `0` for all.
        job: u64,
    },
    /// Close the session cleanly.
    Goodbye,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without data.
    Ok,
    /// Failure: admission rejection, planning error, execution error.
    Err {
        /// Human-readable cause.
        message: String,
    },
    /// Query output.
    Rows {
        /// Output schema.
        schema: Schema,
        /// Result rows.
        rows: Vec<Record>,
    },
    /// Counter snapshot as `name=value` lines.
    Stats {
        /// The rendered counter lines.
        text: String,
    },
}

const OP_HELLO: u8 = 0x01;
const OP_REGISTER: u8 = 0x02;
const OP_QUERY: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_GOODBYE: u8 = 0x05;
const OP_CANCEL: u8 = 0x06;
const OP_OK: u8 = 0x80;
const OP_ERR: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u32(buf, schema.fields().len() as u32);
    for field in schema.fields() {
        put_str(buf, &field.name);
        buf.push(match field.dtype {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
        });
    }
}

/// Encode rows canonically (used both inside frames and by the bench's
/// byte-identical output comparison).
pub fn encode_rows(rows: &[Record]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, rows.len() as u32);
    for row in rows {
        put_u32(&mut buf, row.width() as u32);
        for v in row.fields() {
            put_value(&mut buf, v);
        }
    }
    buf
}

impl Request {
    /// Serialize into a frame body (opcode + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { tenant } => {
                buf.push(OP_HELLO);
                put_str(&mut buf, tenant);
            }
            Request::Register { name, schema, rows } => {
                buf.push(OP_REGISTER);
                put_str(&mut buf, name);
                put_schema(&mut buf, schema);
                buf.extend_from_slice(&encode_rows(rows));
            }
            Request::Query { sql, deadline_ms } => {
                buf.push(OP_QUERY);
                put_str(&mut buf, sql);
                // Presence byte keeps the strict trailing-bytes check:
                // a deadline is either fully there or fully absent.
                match deadline_ms {
                    Some(ms) => {
                        buf.push(1);
                        buf.extend_from_slice(&ms.to_be_bytes());
                    }
                    None => buf.push(0),
                }
            }
            Request::Stats => buf.push(OP_STATS),
            Request::Cancel { job } => {
                buf.push(OP_CANCEL);
                buf.extend_from_slice(&job.to_be_bytes());
            }
            Request::Goodbye => buf.push(OP_GOODBYE),
        }
        buf
    }
}

impl Response {
    /// Serialize into a frame body (opcode + payload, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Ok => buf.push(OP_OK),
            Response::Err { message } => {
                buf.push(OP_ERR);
                put_str(&mut buf, message);
            }
            Response::Rows { schema, rows } => {
                buf.push(OP_ROWS);
                put_schema(&mut buf, schema);
                buf.extend_from_slice(&encode_rows(rows));
            }
            Response::Stats { text } => {
                buf.push(OP_STATS_REPLY);
                put_str(&mut buf, text);
            }
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("truncated frame".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> WireResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn value(&mut self) -> WireResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.u64()? as i64),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::str(self.str()?),
            tag => return Err(WireError::Malformed(format!("unknown value tag {tag}"))),
        })
    }

    fn schema(&mut self) -> WireResult<Schema> {
        let n = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = self.str()?;
            let dtype = match self.u8()? {
                0 => DataType::Bool,
                1 => DataType::Int,
                2 => DataType::Float,
                3 => DataType::Str,
                tag => return Err(WireError::Malformed(format!("unknown dtype tag {tag}"))),
            };
            fields.push((name, dtype));
        }
        Ok(Schema::new(fields))
    }

    fn rows(&mut self) -> WireResult<Vec<Record>> {
        let n = self.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let width = self.u32()? as usize;
            let mut fields = Vec::with_capacity(width.min(1024));
            for _ in 0..width {
                fields.push(self.value()?);
            }
            rows.push(Record::new(fields));
        }
        Ok(rows)
    }

    fn finished(&self) -> WireResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes in frame".into()))
        }
    }
}

impl Request {
    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> WireResult<Self> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_HELLO => Request::Hello { tenant: c.str()? },
            OP_REGISTER => Request::Register {
                name: c.str()?,
                schema: c.schema()?,
                rows: c.rows()?,
            },
            OP_QUERY => {
                let sql = c.str()?;
                let deadline_ms = match c.u8()? {
                    0 => None,
                    1 => Some(c.u64()?),
                    tag => {
                        return Err(WireError::Malformed(format!(
                            "unknown deadline presence tag {tag}"
                        )))
                    }
                };
                Request::Query { sql, deadline_ms }
            }
            OP_STATS => Request::Stats,
            OP_CANCEL => Request::Cancel { job: c.u64()? },
            OP_GOODBYE => Request::Goodbye,
            op => {
                return Err(WireError::Malformed(format!(
                    "unknown request opcode {op:#x}"
                )))
            }
        };
        c.finished()?;
        Ok(req)
    }
}

impl Response {
    /// Decode a frame body.
    pub fn decode(body: &[u8]) -> WireResult<Self> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            OP_OK => Response::Ok,
            OP_ERR => Response::Err { message: c.str()? },
            OP_ROWS => Response::Rows {
                schema: c.schema()?,
                rows: c.rows()?,
            },
            OP_STATS_REPLY => Response::Stats { text: c.str()? },
            op => {
                return Err(WireError::Malformed(format!(
                    "unknown response opcode {op:#x}"
                )))
            }
        };
        c.finished()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame (length prefix + body) to a stream.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> WireResult<()> {
    if body.len() > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame of {} bytes exceeds MAX_FRAME",
            body.len()
        )));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame body from a stream. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (peer hung up between messages).
pub fn read_frame(r: &mut impl Read) -> WireResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Malformed("EOF inside length prefix".into())),
            Ok(n) => filled += n,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "declared frame of {len} bytes exceeds MAX_FRAME"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Hello {
            tenant: "alpha".into(),
        });
        roundtrip_request(Request::Query {
            sql: "SELECT a FROM t WHERE a > 1".into(),
            deadline_ms: None,
        });
        roundtrip_request(Request::Query {
            sql: "SELECT a FROM t".into(),
            deadline_ms: Some(1_500),
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Cancel { job: 7 });
        roundtrip_request(Request::Cancel { job: 0 });
        roundtrip_request(Request::Goodbye);
        roundtrip_request(Request::Register {
            name: "t".into(),
            schema: Schema::new(vec![("a", DataType::Int), ("s", DataType::Str)]),
            rows: vec![
                Record::new(vec![Value::Int(1), Value::str("x")]),
                Record::new(vec![Value::Null, Value::Bool(true)]),
                Record::new(vec![Value::Float(2.5), Value::str("")]),
            ],
        });
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ok,
            Response::Err {
                message: "over quota".into(),
            },
            Response::Rows {
                schema: Schema::new(vec![("n", DataType::Int)]),
                rows: vec![Record::new(vec![Value::Int(42)])],
            },
            Response::Stats {
                text: "optimizer.plan_cache.hits=3\n".into(),
            },
        ];
        for resp in resps {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn equal_rows_encode_to_equal_bytes() {
        let a = vec![Record::new(vec![Value::Int(7), Value::str("abc")])];
        let b = vec![Record::new(vec![Value::Int(7), Value::str("abc")])];
        assert_eq!(encode_rows(&a), encode_rows(&b));
        let c = vec![Record::new(vec![Value::Int(8), Value::str("abc")])];
        assert_ne!(encode_rows(&a), encode_rows(&c));
    }

    #[test]
    fn framing_roundtrips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats.encode()).unwrap();
        let mut r = std::io::Cursor::new(buf);
        let body = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::decode(&body).unwrap(), Request::Stats);
        assert!(read_frame(&mut r).unwrap().is_none());

        // A hostile length prefix is rejected without allocating.
        let mut hostile = std::io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(matches!(
            read_frame(&mut hostile),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_frames_are_malformed_not_panics() {
        let mut body = Request::Query {
            sql: "SELECT".into(),
            deadline_ms: Some(9),
        }
        .encode();
        body.truncate(body.len() - 2);
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage is also rejected.
        let mut body = Request::Stats.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::Malformed(_))
        ));
    }
}
