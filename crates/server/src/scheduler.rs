//! Fair-share scheduling of executor waves across concurrent jobs.
//!
//! The core executor runs each job as a sequence of *waves* (the levels of
//! the task-atom DAG); between waves it calls its [`WaveGate`], which is
//! the natural preemption point — no task atom is ever interrupted
//! mid-flight. [`FairShareScheduler`] implements that gate: it holds a
//! bounded number of wave slots and, when jobs contend, grants the next
//! free slot to the waiting tenant with the least service (fewest waves
//! granted) so far. A tenant running one long job cannot starve a tenant
//! running many short ones — their waves interleave.
//!
//! Every grant is appended to a bounded log ([`WaveGrant`]) so tests and
//! the load generator can verify the interleaving instead of trusting it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rheem_core::{CancelToken, WaveGate};

/// How often a cancellable waiter re-checks its token while blocked on a
/// wave slot. Bounds how long a cancelled job can sit in the wait queue.
const CANCEL_POLL: Duration = Duration::from_millis(25);

/// One wave-slot grant, in grant order.
#[derive(Clone, Debug)]
pub struct WaveGrant {
    /// Monotone grant sequence number (0-based).
    pub seq: u64,
    /// Tenant the slot was granted to.
    pub tenant: String,
    /// The session/job gate the grant went to.
    pub gate_id: u64,
    /// The job-local wave index that ran under this grant.
    pub wave_index: usize,
    /// Task atoms in the granted wave.
    pub atoms: usize,
}

struct Waiter {
    ticket: u64,
    tenant: String,
}

struct SchedState {
    /// Wave slots currently occupied.
    running: usize,
    /// FIFO tie-break ticket counter.
    next_ticket: u64,
    /// Gates currently blocked in `before_wave`.
    waiting: Vec<Waiter>,
    /// Total waves granted per tenant (the "service" fairness is over).
    granted: HashMap<String, u64>,
    /// Grant log, capped at `LOG_CAP` most recent entries.
    log: Vec<WaveGrant>,
    /// Total grants ever (also the next grant's `seq`).
    grants: u64,
}

const LOG_CAP: usize = 4096;

/// Fair-share wave scheduler shared by every session of one server.
///
/// `slots` bounds how many waves execute concurrently across *all* jobs;
/// the intra-wave morsel parallelism of each wave still uses the worker
/// pool it always did. With `slots == 1` jobs strictly interleave at wave
/// granularity, which the deterministic scheduling tests exploit.
pub struct FairShareScheduler {
    slots: usize,
    state: Mutex<SchedState>,
    cv: Condvar,
    next_gate: std::sync::atomic::AtomicU64,
}

impl FairShareScheduler {
    /// A scheduler with `slots` concurrent wave slots (clamped to ≥ 1).
    pub fn new(slots: usize) -> Arc<Self> {
        Arc::new(FairShareScheduler {
            slots: slots.max(1),
            state: Mutex::new(SchedState {
                running: 0,
                next_ticket: 0,
                waiting: Vec::new(),
                granted: HashMap::new(),
                log: Vec::new(),
                grants: 0,
            }),
            cv: Condvar::new(),
            next_gate: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// A [`WaveGate`] for one session of `tenant`; install it on that
    /// session's context. All gates of one scheduler share its slots.
    pub fn gate(self: &Arc<Self>, tenant: impl Into<String>) -> Arc<JobGate> {
        let gate_id = self
            .next_gate
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Arc::new(JobGate {
            scheduler: self.clone(),
            tenant: tenant.into(),
            gate_id,
            cancel: Mutex::new(None),
            engaged: AtomicBool::new(false),
        })
    }

    /// Waves granted so far, per tenant.
    pub fn granted_waves(&self) -> HashMap<String, u64> {
        self.state.lock().granted.clone()
    }

    /// The most recent grants, oldest first (capped at an internal limit).
    pub fn grant_log(&self) -> Vec<WaveGrant> {
        self.state.lock().log.clone()
    }

    /// Total wave grants ever issued.
    pub fn total_grants(&self) -> u64 {
        self.state.lock().grants
    }

    /// Jobs currently blocked waiting for a wave slot.
    pub fn waiting_jobs(&self) -> usize {
        self.state.lock().waiting.len()
    }

    /// Block until a wave slot is granted (returns `true`) or `cancel`
    /// trips while waiting (returns `false`, and the waiter has left the
    /// queue without consuming a slot).
    fn acquire(
        &self,
        tenant: &str,
        gate_id: u64,
        wave_index: usize,
        atoms: usize,
        cancel: Option<&CancelToken>,
    ) -> bool {
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return false;
        }
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push(Waiter {
            ticket,
            tenant: tenant.to_string(),
        });
        loop {
            if st.running < self.slots {
                // Least-service-first, FIFO ticket as the tie break. The
                // grant totals are read under the same lock, so two waiters
                // cannot both observe themselves as the minimum.
                let best = st
                    .waiting
                    .iter()
                    .min_by_key(|w| (st.granted.get(&w.tenant).copied().unwrap_or(0), w.ticket))
                    .expect("self is in the wait list")
                    .ticket;
                if best == ticket {
                    st.waiting.retain(|w| w.ticket != ticket);
                    st.running += 1;
                    *st.granted.entry(tenant.to_string()).or_insert(0) += 1;
                    let seq = st.grants;
                    st.grants += 1;
                    if st.log.len() == LOG_CAP {
                        st.log.remove(0);
                    }
                    st.log.push(WaveGrant {
                        seq,
                        tenant: tenant.to_string(),
                        gate_id,
                        wave_index,
                        atoms,
                    });
                    // Another slot may still be free for a different waiter.
                    if st.running < self.slots && !st.waiting.is_empty() {
                        self.cv.notify_all();
                    }
                    return true;
                }
            }
            match cancel {
                Some(token) => {
                    // Poll the token: a cancelled job must leave the wait
                    // queue within one CANCEL_POLL, not whenever the next
                    // grant happens to wake it.
                    self.cv.wait_for(&mut st, CANCEL_POLL);
                    if token.is_cancelled() {
                        st.waiting.retain(|w| w.ticket != ticket);
                        drop(st);
                        // Our departure can change the least-service
                        // minimum, so re-run the grant decision.
                        self.cv.notify_all();
                        return false;
                    }
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    fn release(&self) {
        let mut st = self.state.lock();
        st.running = st.running.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }
}

/// Per-session [`WaveGate`] handle produced by
/// [`FairShareScheduler::gate`].
pub struct JobGate {
    scheduler: Arc<FairShareScheduler>,
    tenant: String,
    gate_id: u64,
    /// Cancel token of the job currently running under this gate. A
    /// session runs its jobs serially, so one slot suffices.
    cancel: Mutex<Option<CancelToken>>,
    /// Whether `before_wave` actually acquired a slot (false when the
    /// job was cancelled while waiting) so `after_wave` releases exactly
    /// what was taken.
    engaged: AtomicBool,
}

impl JobGate {
    /// Install (or clear, with `None`) the cancel token of the job about
    /// to run under this gate, so a cancelled job stops waiting for wave
    /// slots instead of queueing dead waves behind live tenants.
    pub fn set_cancel(&self, token: Option<CancelToken>) {
        *self.cancel.lock() = token;
    }
}

impl WaveGate for JobGate {
    fn before_wave(&self, wave_index: usize, atoms: usize) {
        let token = self.cancel.lock().clone();
        let granted = self.scheduler.acquire(
            &self.tenant,
            self.gate_id,
            wave_index,
            atoms,
            token.as_ref(),
        );
        // When the grant was refused (cancelled mid-wait) the wave still
        // "runs", but every atom fails at its cancellation checkpoint
        // immediately — the executor surfaces Cancelled within that wave.
        self.engaged.store(granted, Ordering::SeqCst);
    }

    fn after_wave(&self, _wave_index: usize) {
        if self.engaged.swap(false, Ordering::SeqCst) {
            self.scheduler.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    /// Deterministic two-job interleaving: with one slot, each holder only
    /// releases once the other job is provably enqueued (or finished), so
    /// every release happens under contention and the least-service policy
    /// must alternate the tenants strictly.
    #[test]
    fn single_slot_interleaves_two_tenants_fairly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        const WAVES: usize = 10;
        let sched = FairShareScheduler::new(1);
        let done = [AtomicBool::new(false), AtomicBool::new(false)];
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for (i, tenant) in ["alpha", "beta"].into_iter().enumerate() {
                let gate = sched.gate(tenant);
                let (sched, done, barrier) = (&sched, &done, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for wave in 0..WAVES {
                        gate.before_wave(wave, 1);
                        // Hold the slot until the peer is waiting on it (or
                        // has finished all its waves).
                        while sched.waiting_jobs() == 0 && !done[1 - i].load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        gate.after_wave(wave);
                    }
                    done[i].store(true, Ordering::SeqCst);
                });
            }
        });
        let granted = sched.granted_waves();
        assert_eq!(granted["alpha"], WAVES as u64);
        assert_eq!(granted["beta"], WAVES as u64);
        let log = sched.grant_log();
        assert_eq!(log.len(), 2 * WAVES);
        for pair in log.windows(2) {
            assert_ne!(
                pair[0].tenant, pair[1].tenant,
                "grants did not alternate: {log:?}"
            );
        }
    }

    /// A tenant far behind on service is granted ahead of a tenant far
    /// ahead, regardless of arrival order.
    #[test]
    fn least_service_tenant_wins_contended_slot() {
        let sched = FairShareScheduler::new(1);
        let veteran = sched.gate("veteran");
        let newcomer = sched.gate("newcomer");
        // Veteran accumulates service while alone.
        for wave in 0..10 {
            veteran.before_wave(wave, 1);
            veteran.after_wave(wave);
        }
        // Occupy the slot, then line both up behind it; the newcomer asked
        // *after* the veteran but has less service, so it is granted first.
        let blocker = sched.gate("veteran");
        blocker.before_wave(0, 1);
        std::thread::scope(|s| {
            let sched_ref = &sched;
            let vet = s.spawn(|| {
                veteran.before_wave(10, 1);
                veteran.after_wave(10);
            });
            // Give the veteran time to enqueue first.
            while sched_ref.waiting_jobs() == 0 {
                std::thread::yield_now();
            }
            let newc = s.spawn(|| {
                newcomer.before_wave(0, 1);
                newcomer.after_wave(0);
            });
            while sched_ref.waiting_jobs() < 2 {
                std::thread::yield_now();
            }
            blocker.after_wave(0);
            newc.join().unwrap();
            vet.join().unwrap();
        });
        let log = sched.grant_log();
        let tail: Vec<&str> = log
            .iter()
            .rev()
            .take(2)
            .map(|g| g.tenant.as_str())
            .collect();
        // Last two grants: newcomer first (so it appears *before* the
        // veteran's final grant in the log tail, i.e. last entry is veteran).
        assert_eq!(tail, ["veteran", "newcomer"]);
    }

    /// A waiter whose job is cancelled leaves the wait queue promptly and
    /// never consumes a slot, so its `after_wave` releases nothing.
    #[test]
    fn a_cancelled_waiter_leaves_the_queue_without_taking_a_slot() {
        use rheem_core::{CancelReason, CancelToken};
        let sched = FairShareScheduler::new(1);
        let blocker = sched.gate("a");
        blocker.before_wave(0, 1); // occupy the only slot
        let victim = sched.gate("b");
        let token = CancelToken::new();
        victim.set_cancel(Some(token.clone()));
        std::thread::scope(|s| {
            let victim = &victim;
            let handle = s.spawn(move || {
                victim.before_wave(0, 1); // blocks: the slot is taken
                victim.after_wave(0); // must be a no-op (nothing acquired)
            });
            while sched.waiting_jobs() == 0 {
                std::thread::yield_now();
            }
            token.cancel(CancelReason::Explicit);
            handle.join().unwrap();
        });
        assert_eq!(sched.waiting_jobs(), 0);
        // The blocker still holds the single slot: release it and take it
        // again to prove the count never went negative or leaked.
        blocker.after_wave(0);
        blocker.before_wave(1, 1);
        blocker.after_wave(1);
        assert_eq!(sched.granted_waves().get("b"), None);
    }

    /// Slots bound concurrency: with 2 slots, never more than 2 waves run.
    #[test]
    fn slots_bound_concurrent_waves() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sched = FairShareScheduler::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..6 {
                let gate = sched.gate(format!("t{i}"));
                let (running, peak) = (&running, &peak);
                s.spawn(move || {
                    for wave in 0..5 {
                        gate.before_wave(wave, 1);
                        let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        running.fetch_sub(1, Ordering::SeqCst);
                        gate.after_wave(wave);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(sched.total_grants(), 30);
    }
}
