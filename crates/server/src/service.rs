//! Admission control and the shared worker pool.
//!
//! [`JobService`] sits between the sessions and the execution layer. Every
//! job goes through `submit_job` which enforces, *before* any work is
//! queued:
//!
//! * a per-tenant in-flight quota (`max_inflight_per_tenant`): a tenant's
//!   jobs queued-or-running may not exceed it;
//! * a bounded global queue (`queue_capacity`): jobs waiting for a pool
//!   worker may not exceed it.
//!
//! Violating either rejects the submission immediately with an
//! [`AdmissionError`] — backpressure is explicit and prompt, never an
//! unbounded queue. Admitted jobs run on a fixed pool of worker threads;
//! the submitting session blocks until its job completes (the session is
//! the client's connection thread, so per-session jobs are naturally
//! serial while cross-session jobs are concurrent).
//!
//! # Deadlines, cancellation, and panic containment (`DESIGN.md` §14)
//!
//! Every admitted job gets a server-assigned id and a
//! [`CancelToken`], both exposed to the job closure through [`JobRun`].
//! Queue-wait time counts against a request's deadline: a job whose
//! deadline expires while still queued is *shed* at dequeue — typed
//! [`AdmissionError::DeadlineExceeded`], `server.jobs.shed_deadline`
//! counter — without ever costing a worker. [`JobService::cancel_job`] /
//! [`cancel_tenant`](JobService::cancel_tenant) trip a job's token
//! (`server.jobs.cancelled`), and [`JobService::shutdown`] cancels
//! everything with [`CancelReason::Shutdown`] so the drain is bounded by
//! `drain_grace`. A panicking job is caught at the pool boundary
//! ([`AdmissionError::JobPanicked`]): the worker thread survives and the
//! submitter is always woken — a poisoned job can neither shrink the pool
//! nor hang its session.
//!
//! Per-tenant counters (`server.tenant.<t>.submitted/completed/rejected`)
//! are reported into the shared [`MetricsRegistry`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rheem_core::{CancelReason, CancelToken, MetricsRegistry};

/// Why a submission was refused at the door (or shed before running).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant already has `max_inflight_per_tenant` jobs in flight.
    TenantOverQuota {
        /// The offending tenant.
        tenant: String,
        /// The quota it hit.
        quota: usize,
    },
    /// The global queue is full.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The job's deadline expired while it waited in the admission
    /// queue; it was shed without costing a worker.
    DeadlineExceeded,
    /// The job panicked; the panic was contained at the pool boundary
    /// and the worker thread survived.
    JobPanicked {
        /// Rendering of the panic payload.
        message: String,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantOverQuota { tenant, quota } => {
                write!(f, "tenant `{tenant}` is over its in-flight quota ({quota})")
            }
            AdmissionError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity})")
            }
            AdmissionError::DeadlineExceeded => {
                write!(f, "deadline exceeded while queued")
            }
            AdmissionError::JobPanicked { message } => {
                write!(f, "job panicked: {message}")
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Knobs for [`JobService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing admitted jobs.
    pub workers: usize,
    /// Bound on jobs queued for a worker (running jobs do not count).
    pub queue_capacity: usize,
    /// Bound on one tenant's queued-plus-running jobs.
    pub max_inflight_per_tenant: usize,
    /// How long [`JobService::shutdown`] waits for cancelled in-flight
    /// jobs to drain before detaching any worker still stuck in one.
    pub drain_grace: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            max_inflight_per_tenant: 4,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// What the pool hands a running job: its server-assigned id, its cancel
/// token (install into the execution context so every layer below
/// observes it), and the deadline budget left after queue wait.
pub struct JobRun {
    /// Server-assigned job id; the `CANCEL` wire request addresses it.
    pub id: u64,
    /// The job's cooperative cancel token.
    pub cancel: CancelToken,
    /// Deadline budget remaining when the job left the queue, if the
    /// request carried a deadline (queue wait already deducted).
    pub remaining: Option<Duration>,
}

/// Completion rendezvous shared by the pool worker and the waiter. The
/// worker always fills it — run, shed, or panic — so waiters cannot hang.
type Slot<R> = Arc<(Mutex<Option<Result<R, AdmissionError>>>, Condvar)>;

/// Handle to an admitted job, from [`JobService::submit_handle`]. Lets
/// the submitter poll for completion (interleaving its own bookkeeping,
/// like watching the client socket) instead of blocking blindly.
pub struct JobHandle<R> {
    id: u64,
    done: Slot<R>,
}

impl<R> JobHandle<R> {
    /// The server-assigned job id; [`JobService::cancel_job`] addresses it.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job completes (ran, was shed, or panicked).
    pub fn wait(self) -> Result<R, AdmissionError> {
        let (slot, cv) = &*self.done;
        let mut guard = slot.lock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            cv.wait(&mut guard);
        }
    }

    /// Wait up to `timeout` for completion; `None` means still running.
    /// The result is *taken*: once this returns `Some`, later waits
    /// would block forever, so stop polling at the first `Some`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<R, AdmissionError>> {
        let (slot, cv) = &*self.done;
        let mut guard = slot.lock();
        if guard.is_none() {
            cv.wait_for(&mut guard, timeout);
        }
        guard.take()
    }
}

/// A queued job: the work itself plus the metadata the worker needs to
/// decide between running and shedding it.
struct QueuedJob {
    /// Invoked exactly once, with `Fate::Run` to execute or `Fate::Shed`
    /// to complete the rendezvous with a typed deadline rejection.
    task: Box<dyn FnOnce(Fate) + Send + 'static>,
    /// Absolute deadline, when the request carried one.
    deadline: Option<Instant>,
    /// The job's cancel token (so a worker can observe pre-cancellation).
    cancel: CancelToken,
}

#[derive(Clone, Copy)]
enum Fate {
    Run,
    Shed,
}

/// Registry entry for a queued-or-running job.
struct LiveJob {
    tenant: String,
    cancel: CancelToken,
}

struct QueueState {
    queue: VecDeque<QueuedJob>,
    /// Queued-plus-running jobs per tenant.
    inflight: HashMap<String, usize>,
    /// Every queued-or-running job by id (for `CANCEL` addressing).
    jobs: HashMap<u64, LiveJob>,
    /// Id fountain; ids start at 1 because `CANCEL { job: 0 }` means
    /// "all of the tenant's jobs" on the wire.
    next_job: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers sleep on this when the queue is empty.
    work_cv: Condvar,
    config: ServiceConfig,
    metrics: Arc<MetricsRegistry>,
}

/// The admission-controlled worker pool.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobService {
    /// Start `config.workers` pool threads reporting into `metrics`.
    pub fn start(config: ServiceConfig, metrics: Arc<MetricsRegistry>) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_inflight_per_tenant: config.max_inflight_per_tenant.max(1),
            drain_grace: config.drain_grace,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                jobs: HashMap::new(),
                next_job: 1,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            config,
            metrics,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rheem-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        JobService {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit `job` for `tenant` and block until it has run, returning its
    /// result. Rejections (quota, queue, shutdown) return immediately.
    /// Convenience wrapper over [`submit_job`](Self::submit_job) for jobs
    /// that need neither an id, a cancel token, nor a deadline.
    pub fn submit<R, F>(&self, tenant: &str, job: F) -> Result<R, AdmissionError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.submit_job(tenant, None, |_run| job())
    }

    /// Admit `job` for `tenant` and block until it completes, was shed,
    /// or panicked. The closure receives a [`JobRun`] carrying the job's
    /// id, cancel token, and — when `deadline` is set — the budget left
    /// after queue wait. A job whose deadline expires while queued is
    /// shed with [`AdmissionError::DeadlineExceeded`] without costing a
    /// worker; a panicking job returns [`AdmissionError::JobPanicked`]
    /// while the worker thread keeps running.
    pub fn submit_job<R, F>(
        &self,
        tenant: &str,
        deadline: Option<Duration>,
        job: F,
    ) -> Result<R, AdmissionError>
    where
        R: Send + 'static,
        F: FnOnce(&JobRun) -> R + Send + 'static,
    {
        self.submit_handle(tenant, deadline, job)?.wait()
    }

    /// Like [`submit_job`](Self::submit_job) but returns a [`JobHandle`]
    /// instead of blocking, so the caller can poll for completion while
    /// watching for out-of-band events (a client hanging up, say) and
    /// cancel the job by its [`JobHandle::id`] in the meantime.
    pub fn submit_handle<R, F>(
        &self,
        tenant: &str,
        deadline: Option<Duration>,
        job: F,
    ) -> Result<JobHandle<R>, AdmissionError>
    where
        R: Send + 'static,
        F: FnOnce(&JobRun) -> R + Send + 'static,
    {
        let metrics = &self.shared.metrics;
        let deadline_at = deadline.and_then(|d| Instant::now().checked_add(d));
        let done: Slot<R>;
        let job_id;
        {
            let mut st = self.shared.state.lock();
            if st.shutdown {
                return Err(AdmissionError::ShuttingDown);
            }
            let quota = self.shared.config.max_inflight_per_tenant;
            let inflight = st.inflight.get(tenant).copied().unwrap_or(0);
            if inflight >= quota {
                drop(st);
                metrics
                    .counter(&format!("server.tenant.{tenant}.rejected"))
                    .inc();
                return Err(AdmissionError::TenantOverQuota {
                    tenant: tenant.to_string(),
                    quota,
                });
            }
            let capacity = self.shared.config.queue_capacity;
            if st.queue.len() >= capacity {
                drop(st);
                metrics
                    .counter(&format!("server.tenant.{tenant}.rejected"))
                    .inc();
                return Err(AdmissionError::QueueFull { capacity });
            }
            *st.inflight.entry(tenant.to_string()).or_insert(0) += 1;
            let id = st.next_job;
            st.next_job += 1;
            job_id = id;
            let cancel = CancelToken::new();
            st.jobs.insert(
                id,
                LiveJob {
                    tenant: tenant.to_string(),
                    cancel: cancel.clone(),
                },
            );

            // Completion rendezvous between the pool worker and this
            // caller. The worker *always* fills it — run, shed, or panic
            // — so the submitting session can never hang on a lost job.
            done = Arc::new((Mutex::new(None), Condvar::new()));
            let done_tx = done.clone();
            let shared = self.shared.clone();
            let job_tenant = tenant.to_string();
            let job_cancel = cancel.clone();
            let task = Box::new(move |fate| {
                let result = match fate {
                    Fate::Shed => {
                        shared.metrics.counter("server.jobs.shed_deadline").inc();
                        Err(AdmissionError::DeadlineExceeded)
                    }
                    Fate::Run => {
                        let run = JobRun {
                            id,
                            cancel: job_cancel,
                            remaining: deadline_at
                                .map(|d| d.saturating_duration_since(Instant::now())),
                        };
                        // Contain panics at the pool boundary: the job's
                        // state is discarded wholesale on the error path,
                        // so AssertUnwindSafe is sound here (the same
                        // contract as the executor's atom guard).
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&run)))
                                .map_err(|payload| AdmissionError::JobPanicked {
                                    message: panic_message(payload.as_ref()),
                                });
                        if result.is_ok() {
                            shared
                                .metrics
                                .counter(&format!("server.tenant.{job_tenant}.completed"))
                                .inc();
                        }
                        result
                    }
                };
                // Release the quota slot and registry entry *before*
                // waking the submitter, so an observer unblocked by the
                // result never sees a stale in-flight count.
                {
                    let mut st = shared.state.lock();
                    st.jobs.remove(&id);
                    if let Some(n) = st.inflight.get_mut(&job_tenant) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            st.inflight.remove(&job_tenant);
                        }
                    }
                }
                let (slot, cv) = &*done_tx;
                *slot.lock() = Some(result);
                cv.notify_all();
            });
            st.queue.push_back(QueuedJob {
                task,
                deadline: deadline_at,
                cancel,
            });
        }
        metrics
            .counter(&format!("server.tenant.{tenant}.submitted"))
            .inc();
        self.shared.work_cv.notify_one();
        Ok(JobHandle { id: job_id, done })
    }

    /// Cancel one of `tenant`'s queued-or-running jobs by id. Returns
    /// `true` when the id named a live job of that tenant whose token
    /// this call tripped (idempotent: a second cancel returns `false`).
    pub fn cancel_job(&self, tenant: &str, id: u64, reason: CancelReason) -> bool {
        let token = {
            let st = self.shared.state.lock();
            st.jobs
                .get(&id)
                .filter(|j| j.tenant == tenant)
                .map(|j| j.cancel.clone())
        };
        match token {
            Some(token) if token.cancel(reason) => {
                self.shared.metrics.counter("server.jobs.cancelled").inc();
                true
            }
            _ => false,
        }
    }

    /// Cancel every queued-or-running job of `tenant` (client hung up,
    /// or a wire `CANCEL { job: 0 }`). Returns how many tokens tripped.
    pub fn cancel_tenant(&self, tenant: &str, reason: CancelReason) -> usize {
        let tokens: Vec<CancelToken> = {
            let st = self.shared.state.lock();
            st.jobs
                .values()
                .filter(|j| j.tenant == tenant)
                .map(|j| j.cancel.clone())
                .collect()
        };
        let tripped = tokens.into_iter().filter(|t| t.cancel(reason)).count();
        self.shared
            .metrics
            .counter("server.jobs.cancelled")
            .add(tripped as u64);
        tripped
    }

    /// Cancel every queued-or-running job of every tenant (shutdown).
    /// Returns how many tokens tripped.
    pub fn cancel_all(&self, reason: CancelReason) -> usize {
        let tokens: Vec<CancelToken> = {
            let st = self.shared.state.lock();
            st.jobs.values().map(|j| j.cancel.clone()).collect()
        };
        let tripped = tokens.into_iter().filter(|t| t.cancel(reason)).count();
        self.shared
            .metrics
            .counter("server.jobs.cancelled")
            .add(tripped as u64);
        tripped
    }

    /// Ids of `tenant`'s queued-or-running jobs, ascending.
    pub fn inflight_ids(&self, tenant: &str) -> Vec<u64> {
        let st = self.shared.state.lock();
        let mut ids: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, j)| j.tenant == tenant)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// A tenant's queued-plus-running jobs.
    pub fn inflight(&self, tenant: &str) -> usize {
        self.shared
            .state
            .lock()
            .inflight
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Stop accepting jobs, cancel everything in flight (reason
    /// [`CancelReason::Shutdown`]), and wait up to
    /// [`ServiceConfig::drain_grace`] for the workers to drain. A worker
    /// still stuck in a job past the grace period — a job that ignored
    /// its cancel token — is detached rather than joined, so shutdown is
    /// bounded.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        // Queued jobs still run (their submitters are blocked waiting),
        // but with tripped tokens they fail at their first checkpoint,
        // so the drain is prompt.
        self.cancel_all(CancelReason::Shutdown);
        self.shared.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        let grace_until = Instant::now() + self.shared.config.drain_grace;
        while Instant::now() < grace_until && handles.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(Duration::from_millis(1));
        }
        for h in handles {
            if h.is_finished() {
                let _ = h.join();
            }
            // else: detached — the job ignored cancellation for the whole
            // grace period; its thread dies with the process instead of
            // blocking shutdown forever.
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(next) = st.queue.pop_front() {
                    break next;
                }
                if st.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // Queue-age shedding: a job whose deadline passed while it
        // waited never costs this worker; its submitter gets a typed
        // DeadlineExceeded. (A *cancelled* queued job still runs — its
        // tripped token fails it at the first checkpoint, which keeps
        // exactly one completion path per job.)
        let expired = job
            .deadline
            .is_some_and(|d| Instant::now() >= d && !job.cancel.is_cancelled());
        if expired {
            (job.task)(Fate::Shed);
        } else {
            (job.task)(Fate::Run);
        }
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn service(workers: usize, queue: usize, quota: usize) -> JobService {
        JobService::start(
            ServiceConfig {
                workers,
                queue_capacity: queue,
                max_inflight_per_tenant: quota,
                drain_grace: Duration::from_secs(5),
            },
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn jobs_run_and_return_their_results() {
        let svc = service(2, 8, 8);
        let out: Vec<i32> = (0..8)
            .map(|i| svc.submit("t", move || i * 2).unwrap())
            .collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(svc.queued(), 0);
        assert_eq!(svc.inflight("t"), 0);
    }

    /// A tenant at its quota is rejected immediately — the submit call does
    /// not block behind the stuck jobs.
    #[test]
    fn over_quota_tenant_is_rejected_immediately() {
        let svc = Arc::new(service(1, 16, 1));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let first = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit("greedy", move || {
                    gate.wait();
                    release.wait();
                })
                .unwrap()
            })
        };
        gate.wait(); // the greedy job is now running
        let err = svc.submit("greedy", || ()).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TenantOverQuota {
                tenant: "greedy".into(),
                quota: 1
            }
        );
        // A different tenant is unaffected by greedy's quota, but has to
        // wait for the single worker — so check only the admission side by
        // submitting after release.
        release.wait();
        first.join().unwrap();
        svc.submit("polite", || ()).unwrap();
        assert_eq!(svc.inflight("greedy"), 0);
    }

    /// The global queue bound rejects once exceeded, whoever the tenant.
    #[test]
    fn full_queue_rejects_with_backpressure() {
        let svc = Arc::new(service(1, 1, 16));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let blocker = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit("a", move || {
                    gate.wait();
                    release.wait();
                })
                .unwrap()
            })
        };
        gate.wait(); // worker is busy; queue is empty
        let queued = {
            let svc = svc.clone();
            std::thread::spawn(move || svc.submit("b", || ()).unwrap())
        };
        // Wait for the queued job to occupy the single queue slot.
        while svc.queued() < 1 {
            std::thread::yield_now();
        }
        let err = svc.submit("c", || ()).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 1 });
        release.wait();
        blocker.join().unwrap();
        queued.join().unwrap();
    }

    #[test]
    fn shutdown_rejects_new_work_and_joins_workers() {
        let svc = service(2, 4, 4);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let ran = ran.clone();
            svc.submit("t", move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        svc.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(
            svc.submit("t", || ()).unwrap_err(),
            AdmissionError::ShuttingDown
        );
    }

    /// A job that ages out in the admission queue is shed with a typed
    /// rejection before costing the (busy) worker anything.
    #[test]
    fn queued_jobs_past_their_deadline_are_shed() {
        let svc = Arc::new(service(1, 4, 16));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let blocker = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit("a", move || {
                    gate.wait();
                    release.wait();
                })
                .unwrap()
            })
        };
        gate.wait(); // worker is busy
        let ran = Arc::new(AtomicUsize::new(0));
        let doomed = {
            let (svc, ran) = (svc.clone(), ran.clone());
            std::thread::spawn(move || {
                svc.submit_job("b", Some(Duration::from_millis(1)), move |_run| {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
            })
        };
        while svc.queued() < 1 {
            std::thread::yield_now();
        }
        // Let the 1 ms deadline age out while the job sits in the queue.
        std::thread::sleep(Duration::from_millis(10));
        release.wait();
        blocker.join().unwrap();
        assert_eq!(
            doomed.join().unwrap(),
            Err(AdmissionError::DeadlineExceeded)
        );
        assert_eq!(ran.load(Ordering::SeqCst), 0, "shed job must never run");
        assert_eq!(
            svc.shared
                .metrics
                .counter_value("server.jobs.shed_deadline"),
            1
        );
    }

    /// A panicking job is contained: the submitter gets a typed error,
    /// the worker thread survives, and the next job runs normally.
    #[test]
    fn a_panicking_job_does_not_kill_its_worker_or_hang_its_submitter() {
        let svc = service(1, 4, 4);
        let err = svc
            .submit("t", || -> i32 { panic!("poisoned job") })
            .unwrap_err();
        assert!(
            matches!(&err, AdmissionError::JobPanicked { message } if message.contains("poisoned")),
            "{err:?}"
        );
        // Same (sole) worker thread still serves jobs.
        assert_eq!(svc.submit("t", || 7).unwrap(), 7);
        assert_eq!(svc.inflight("t"), 0);
    }

    /// cancel_job trips exactly the addressed tenant's job token, once.
    #[test]
    fn cancel_job_is_tenant_scoped_and_idempotent() {
        let svc = Arc::new(service(1, 4, 4));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let running = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit_job("a", None, move |run| {
                    gate.wait();
                    release.wait();
                    run.cancel.is_cancelled()
                })
                .unwrap()
            })
        };
        gate.wait();
        let ids = svc.inflight_ids("a");
        assert_eq!(ids.len(), 1);
        let id = ids[0];
        // Wrong tenant: no effect.
        assert!(!svc.cancel_job("b", id, CancelReason::Explicit));
        // Right tenant: trips once, idempotent after.
        assert!(svc.cancel_job("a", id, CancelReason::Explicit));
        assert!(!svc.cancel_job("a", id, CancelReason::Explicit));
        assert_eq!(svc.shared.metrics.counter_value("server.jobs.cancelled"), 1);
        release.wait();
        assert!(running.join().unwrap(), "job observed its tripped token");
        // The registry entry dies with the job.
        assert!(svc.inflight_ids("a").is_empty());
    }
}
