//! Admission control and the shared worker pool.
//!
//! [`JobService`] sits between the sessions and the execution layer. Every
//! job goes through `submit` which enforces, *before* any work is queued:
//!
//! * a per-tenant in-flight quota (`max_inflight_per_tenant`): a tenant's
//!   jobs queued-or-running may not exceed it;
//! * a bounded global queue (`queue_capacity`): jobs waiting for a pool
//!   worker may not exceed it.
//!
//! Violating either rejects the submission immediately with an
//! [`AdmissionError`] — backpressure is explicit and prompt, never an
//! unbounded queue. Admitted jobs run on a fixed pool of worker threads;
//! the submitting session blocks until its job completes (the session is
//! the client's connection thread, so per-session jobs are naturally
//! serial while cross-session jobs are concurrent).
//!
//! Per-tenant counters (`server.tenant.<t>.submitted/completed/rejected`)
//! are reported into the shared [`MetricsRegistry`].

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rheem_core::MetricsRegistry;

/// Why a submission was refused at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant already has `max_inflight_per_tenant` jobs in flight.
    TenantOverQuota {
        /// The offending tenant.
        tenant: String,
        /// The quota it hit.
        quota: usize,
    },
    /// The global queue is full.
    QueueFull {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantOverQuota { tenant, quota } => {
                write!(f, "tenant `{tenant}` is over its in-flight quota ({quota})")
            }
            AdmissionError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity})")
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Knobs for [`JobService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing admitted jobs.
    pub workers: usize,
    /// Bound on jobs queued for a worker (running jobs do not count).
    pub queue_capacity: usize,
    /// Bound on one tenant's queued-plus-running jobs.
    pub max_inflight_per_tenant: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            max_inflight_per_tenant: 4,
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    queue: VecDeque<Job>,
    /// Queued-plus-running jobs per tenant.
    inflight: HashMap<String, usize>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers sleep on this when the queue is empty.
    work_cv: Condvar,
    config: ServiceConfig,
    metrics: Arc<MetricsRegistry>,
}

/// The admission-controlled worker pool.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobService {
    /// Start `config.workers` pool threads reporting into `metrics`.
    pub fn start(config: ServiceConfig, metrics: Arc<MetricsRegistry>) -> Self {
        let config = ServiceConfig {
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            max_inflight_per_tenant: config.max_inflight_per_tenant.max(1),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            config,
            metrics,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rheem-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        JobService {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit `job` for `tenant` and block until it has run, returning its
    /// result. Rejections (quota, queue, shutdown) return immediately.
    pub fn submit<R, F>(&self, tenant: &str, job: F) -> Result<R, AdmissionError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let metrics = &self.shared.metrics;
        {
            let mut st = self.shared.state.lock();
            if st.shutdown {
                return Err(AdmissionError::ShuttingDown);
            }
            let quota = self.shared.config.max_inflight_per_tenant;
            let inflight = st.inflight.get(tenant).copied().unwrap_or(0);
            if inflight >= quota {
                drop(st);
                metrics
                    .counter(&format!("server.tenant.{tenant}.rejected"))
                    .inc();
                return Err(AdmissionError::TenantOverQuota {
                    tenant: tenant.to_string(),
                    quota,
                });
            }
            let capacity = self.shared.config.queue_capacity;
            if st.queue.len() >= capacity {
                drop(st);
                metrics
                    .counter(&format!("server.tenant.{tenant}.rejected"))
                    .inc();
                return Err(AdmissionError::QueueFull { capacity });
            }
            *st.inflight.entry(tenant.to_string()).or_insert(0) += 1;

            // Completion rendezvous between the pool worker and this caller.
            let done: Arc<(Mutex<Option<R>>, Condvar)> =
                Arc::new((Mutex::new(None), Condvar::new()));
            let done_tx = done.clone();
            let shared = self.shared.clone();
            let job_tenant = tenant.to_string();
            let task: Job = Box::new(move || {
                let result = job();
                // Release the quota slot *before* waking the submitter, so
                // an observer unblocked by the result never sees a stale
                // in-flight count.
                {
                    let mut st = shared.state.lock();
                    if let Some(n) = st.inflight.get_mut(&job_tenant) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            st.inflight.remove(&job_tenant);
                        }
                    }
                }
                let (slot, cv) = &*done_tx;
                *slot.lock() = Some(result);
                cv.notify_all();
            });
            st.queue.push_back(task);
            drop(st);
            metrics
                .counter(&format!("server.tenant.{tenant}.submitted"))
                .inc();
            self.shared.work_cv.notify_one();

            let (slot, cv) = &*done;
            let mut guard = slot.lock();
            while guard.is_none() {
                cv.wait(&mut guard);
            }
            let result = guard.take().expect("worker stored a result");
            drop(guard);
            metrics
                .counter(&format!("server.tenant.{tenant}.completed"))
                .inc();
            Ok(result)
        }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// A tenant's queued-plus-running jobs.
    pub fn inflight(&self, tenant: &str) -> usize {
        self.shared
            .state
            .lock()
            .inflight
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Stop accepting jobs, drain the queue, and join the workers.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(next) = st.queue.pop_front() {
                    break next;
                }
                if st.shutdown {
                    return;
                }
                shared.work_cv.wait(&mut st);
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn service(workers: usize, queue: usize, quota: usize) -> JobService {
        JobService::start(
            ServiceConfig {
                workers,
                queue_capacity: queue,
                max_inflight_per_tenant: quota,
            },
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn jobs_run_and_return_their_results() {
        let svc = service(2, 8, 8);
        let out: Vec<i32> = (0..8)
            .map(|i| svc.submit("t", move || i * 2).unwrap())
            .collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(svc.queued(), 0);
        assert_eq!(svc.inflight("t"), 0);
    }

    /// A tenant at its quota is rejected immediately — the submit call does
    /// not block behind the stuck jobs.
    #[test]
    fn over_quota_tenant_is_rejected_immediately() {
        let svc = Arc::new(service(1, 16, 1));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let first = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit("greedy", move || {
                    gate.wait();
                    release.wait();
                })
                .unwrap()
            })
        };
        gate.wait(); // the greedy job is now running
        let err = svc.submit("greedy", || ()).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TenantOverQuota {
                tenant: "greedy".into(),
                quota: 1
            }
        );
        // A different tenant is unaffected by greedy's quota, but has to
        // wait for the single worker — so check only the admission side by
        // submitting after release.
        release.wait();
        first.join().unwrap();
        svc.submit("polite", || ()).unwrap();
        assert_eq!(svc.inflight("greedy"), 0);
    }

    /// The global queue bound rejects once exceeded, whoever the tenant.
    #[test]
    fn full_queue_rejects_with_backpressure() {
        let svc = Arc::new(service(1, 1, 16));
        let gate = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let blocker = {
            let (svc, gate, release) = (svc.clone(), gate.clone(), release.clone());
            std::thread::spawn(move || {
                svc.submit("a", move || {
                    gate.wait();
                    release.wait();
                })
                .unwrap()
            })
        };
        gate.wait(); // worker is busy; queue is empty
        let queued = {
            let svc = svc.clone();
            std::thread::spawn(move || svc.submit("b", || ()).unwrap())
        };
        // Wait for the queued job to occupy the single queue slot.
        while svc.queued() < 1 {
            std::thread::yield_now();
        }
        let err = svc.submit("c", || ()).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { capacity: 1 });
        release.wait();
        blocker.join().unwrap();
        queued.join().unwrap();
    }

    #[test]
    fn shutdown_rejects_new_work_and_joins_workers() {
        let svc = service(2, 4, 4);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let ran = ran.clone();
            svc.submit("t", move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        svc.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(
            svc.submit("t", || ()).unwrap_err(),
            AdmissionError::ShuttingDown
        );
    }
}
