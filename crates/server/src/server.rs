//! The TCP server: sessions, statement caching, and lifecycle.
//!
//! One [`RheemServer`] owns a single shared execution substrate — one
//! [`rheem_core::Observability`] hub (metrics + cost calibration), one
//! [`rheem_core::PlanCache`], one [`FairShareScheduler`], one
//! [`JobService`] worker pool — and any number of client sessions on top.
//!
//! Each session gets:
//!
//! * its own `QueryCatalog` (tables registered by one client are invisible
//!   to every other client);
//! * a *statement cache* mapping SQL text to its planned query. Re-planning
//!   the same SQL would mint fresh UDF closures with fresh `Arc` identities
//!   and thus fresh opaque plan fingerprints; reusing the planned query is
//!   what makes a repeated statement *hit* the shared plan cache. The
//!   statement cache is cleared whenever the session re-registers a table,
//!   since the old plans capture the old data;
//! * a unique cache scope, so opaque (closure-identity) plan-cache entries
//!   are never shared across sessions — only fully declarative plans share
//!   cache entries server-wide (scope 0);
//! * a [`scheduler::JobGate`](crate::scheduler::JobGate) tying every wave
//!   of its jobs into the server-wide fair-share scheduler.
//!
//! Sessions do not attach trace sinks: the core's `JobTrace` is per-job
//! state on the shared hub, and the metrics path is atomics-only, which is
//! what makes concurrent jobs on one hub safe (see DESIGN.md §13).

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rheem_core::query::{PlannedQuery, QueryCatalog};
use rheem_core::{CancelReason, Observability, PlanCache, PlanCacheConfig, RheemContext};

use crate::protocol::{read_frame, write_frame, Request, Response, WireError, WireResult};
use crate::scheduler::{FairShareScheduler, JobGate};
use crate::service::{JobService, ServiceConfig};

/// How often a session blocked on a job result re-checks the client
/// socket for a hang-up (and the job for completion).
const DISCONNECT_POLL: Duration = Duration::from_millis(25);

/// Per-read socket timeout for sessions with an idle timeout configured.
/// Reads tick at this granularity so idleness can be judged at frame
/// boundaries (time waiting for a request to *start*) instead of riding
/// on individual `read()` calls — a slow client mid-frame stays alive.
const READ_TICK: Duration = Duration::from_millis(25);

/// Knobs for [`RheemServer::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Admission control and worker pool sizing.
    pub service: ServiceConfig,
    /// Concurrent wave slots shared by all jobs (fair-share granularity).
    pub wave_slots: usize,
    /// Plan cache sizing and drift threshold.
    pub cache: PlanCacheConfig,
    /// Evict a session after this long without a request *starting*
    /// (`None` keeps idle sessions forever). Idleness is judged at frame
    /// boundaries only: a slow client still trickling in the bytes of a
    /// request frame is active, never idle. Evictions are counted under
    /// `server.sessions.idle_evicted`.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            service: ServiceConfig::default(),
            wave_slots: 2,
            cache: PlanCacheConfig::default(),
            idle_timeout: Some(Duration::from_secs(300)),
        }
    }
}

struct ServerShared {
    /// Template context: every session clones this and re-scopes it.
    base: RheemContext,
    observability: Arc<Observability>,
    plan_cache: Arc<PlanCache>,
    scheduler: Arc<FairShareScheduler>,
    service: JobService,
    /// Next session cache scope; 0 is reserved for transparent
    /// (fully declarative) fingerprints shared server-wide.
    next_scope: AtomicU64,
    idle_timeout: Option<Duration>,
    shutdown: AtomicBool,
    /// Clones of live session streams, so shutdown can unblock their reads.
    session_streams: Mutex<Vec<TcpStream>>,
}

/// The long-running multi-tenant job server.
pub struct RheemServer;

/// Handle to a started server: address, shared components, shutdown.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    session_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl RheemServer {
    /// Bind `config.addr`, start the accept loop, and return a handle.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let observability = Arc::new(Observability::new());
        let plan_cache = Arc::new(PlanCache::new(config.cache));
        let scheduler = FairShareScheduler::new(config.wave_slots);
        let service = JobService::start(config.service.clone(), observability.metrics().clone());
        let base = rheem_platforms::full_context().with_observability(observability.clone());
        let shared = Arc::new(ServerShared {
            base,
            observability,
            plan_cache,
            scheduler,
            service,
            next_scope: AtomicU64::new(1),
            idle_timeout: config.idle_timeout,
            shutdown: AtomicBool::new(false),
            session_streams: Mutex::new(Vec::new()),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let session_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = shared.clone();
        let accept_sessions = session_threads.clone();
        let accept_thread = std::thread::Builder::new()
            .name("rheem-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = accept_shared.clone();
                    let handle = std::thread::Builder::new()
                        .name("rheem-session".to_string())
                        .spawn(move || {
                            let _ = run_session(&shared, stream);
                        })
                        .expect("spawn session thread");
                    accept_sessions.lock().push(handle);
                }
            })?;

        Ok(ServerHandle {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            session_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared observability hub (metrics + calibration).
    pub fn observability(&self) -> &Arc<Observability> {
        &self.shared.observability
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.plan_cache
    }

    /// The shared fair-share wave scheduler (grant log lives here).
    pub fn scheduler(&self) -> &Arc<FairShareScheduler> {
        &self.shared.scheduler
    }

    /// Stop accepting connections, close live sessions, drain the worker
    /// pool, and join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocked accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Cancel every in-flight job *first*: sessions blocked on a job
        // result unblock at the job's next cancellation checkpoint, so
        // joining them below is bounded instead of waiting out whatever
        // the jobs were doing.
        self.shared.service.cancel_all(CancelReason::Shutdown);
        // Unblock session reads, then join the session threads.
        for stream in self.shared.session_streams.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for t in self.session_threads.lock().drain(..) {
            let _ = t.join();
        }
        // Finally drain the pool, bounded by the service's drain grace.
        self.shared.service.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One session: HELLO, then a request/response loop until GOODBYE, EOF,
/// or the idle timeout evicts it.
fn run_session(shared: &ServerShared, mut stream: TcpStream) -> WireResult<()> {
    shared
        .session_streams
        .lock()
        .push(stream.try_clone().map_err(WireError::Io)?);
    // Reads tick at `READ_TICK` so [`read_frame_idle`] can tell "no
    // request started within the idle timeout" (idleness, judged at frame
    // boundaries) from "slow peer mid-frame" (activity — never evicted).
    // Without an idle timeout, reads block indefinitely.
    if let Some(idle) = shared.idle_timeout {
        stream
            .set_read_timeout(Some(READ_TICK.min(idle)))
            .map_err(WireError::Io)?;
    }

    // First frame must be HELLO.
    let body = match read_frame_idle(&mut stream, shared.idle_timeout)? {
        SessionRead::Frame(body) => body,
        SessionRead::Eof => return Ok(()),
        SessionRead::Idle => {
            evict_idle(shared, &mut stream);
            return Ok(());
        }
    };
    let tenant = match Request::decode(&body)? {
        Request::Hello { tenant } if !tenant.is_empty() => tenant,
        _ => {
            let resp = Response::Err {
                message: "expected HELLO with a non-empty tenant".into(),
            };
            write_frame(&mut stream, &resp.encode())?;
            return Ok(());
        }
    };
    write_frame(&mut stream, &Response::Ok.encode())?;

    let scope = shared.next_scope.fetch_add(1, Ordering::Relaxed);
    let gate = shared.scheduler.gate(&tenant);
    let ctx = shared
        .base
        .clone()
        .with_plan_cache(shared.plan_cache.clone())
        .with_cache_scope(scope)
        .with_wave_gate(gate.clone());
    let mut catalog = QueryCatalog::new();
    let mut statements: HashMap<String, Arc<PlannedQuery>> = HashMap::new();

    loop {
        let body = match read_frame_idle(&mut stream, shared.idle_timeout)? {
            SessionRead::Frame(body) => body,
            SessionRead::Eof => break,
            SessionRead::Idle => {
                // Idle session: no request *started* within the timeout.
                evict_idle(shared, &mut stream);
                break;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let response = match Request::decode(&body)? {
            Request::Hello { .. } => Response::Err {
                message: "session already open".into(),
            },
            Request::Register { name, schema, rows } => {
                catalog.register(name, schema, rows);
                // Cached statements captured the replaced table's data.
                statements.clear();
                Response::Ok
            }
            Request::Query { sql, deadline_ms } => handle_query(
                shared,
                &tenant,
                &ctx,
                &gate,
                &stream,
                &catalog,
                &mut statements,
                &sql,
                deadline_ms,
            ),
            Request::Cancel { job } => {
                // Cancels land from a *second* session of the same tenant
                // (a session is blocked while its own query runs). Job 0
                // means "everything of mine"; idempotent either way.
                if job == 0 {
                    shared
                        .service
                        .cancel_tenant(&tenant, CancelReason::Explicit);
                } else {
                    shared
                        .service
                        .cancel_job(&tenant, job, CancelReason::Explicit);
                }
                Response::Ok
            }
            Request::Stats => Response::Stats {
                text: render_stats(shared, &tenant),
            },
            Request::Goodbye => {
                write_frame(&mut stream, &Response::Ok.encode())?;
                break;
            }
        };
        write_frame(&mut stream, &response.encode())?;
    }
    Ok(())
}

/// Outcome of one idle-aware frame read ([`read_frame_idle`]).
enum SessionRead {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary: the peer hung up between messages.
    Eof,
    /// No frame started within the session's idle timeout.
    Idle,
}

/// `true` for the error kinds a timed-out socket read surfaces
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_read_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one frame, attributing read timeouts correctly: a timeout while
/// waiting for a frame's *first byte* counts toward `idle` (the session is
/// between requests), while a timeout once any byte of the frame has
/// arrived means a slow-but-active peer mid-request — the read just
/// continues. The stream's per-read timeout must already be set to
/// [`READ_TICK`] (see `run_session`); with `idle == None` reads block and
/// this is plain [`read_frame`].
fn read_frame_idle(stream: &mut TcpStream, idle: Option<Duration>) -> WireResult<SessionRead> {
    use std::io::Read;

    let Some(idle) = idle else {
        return Ok(match read_frame(stream)? {
            Some(body) => SessionRead::Frame(body),
            None => SessionRead::Eof,
        });
    };
    let boundary = std::time::Instant::now();
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(SessionRead::Eof),
            Ok(0) => return Err(WireError::Malformed("EOF inside length prefix".into())),
            Ok(n) => filled += n,
            Err(e) if is_read_timeout(&e) => {
                if filled == 0 && boundary.elapsed() >= idle {
                    return Ok(SessionRead::Idle);
                }
                // Mid-frame (or boundary wait not yet over): keep reading.
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > crate::protocol::MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "declared frame of {len} bytes exceeds MAX_FRAME"
        )));
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => return Err(WireError::Malformed("EOF inside frame body".into())),
            Ok(n) => got += n,
            Err(e) if is_read_timeout(&e) => {} // mid-frame stall: slow, not idle
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(SessionRead::Frame(body))
}

/// Count an idle eviction and tell the client why (best-effort: the
/// write is at a response boundary — the evicted session has no request
/// in flight — but the peer may already be gone).
fn evict_idle(shared: &ServerShared, stream: &mut TcpStream) {
    shared
        .observability
        .metrics()
        .counter("server.sessions.idle_evicted")
        .inc();
    let resp = Response::Err {
        message: "session evicted: idle timeout".into(),
    };
    let _ = write_frame(stream, &resp.encode());
}

/// Drop guard that removes the cancel token installed on a session's
/// [`JobGate`] for the duration of one job. Clearing must survive the job
/// closure panicking (the worker pool catches the unwind at its boundary,
/// skipping any code after the job body), so it rides on `Drop`.
struct ClearGateCancel<'a>(&'a JobGate);

impl Drop for ClearGateCancel<'_> {
    fn drop(&mut self) {
        self.0.set_cancel(None);
    }
}

/// `true` when the client side of `stream` has hung up (EOF on a
/// non-blocking peek). `WouldBlock` means the client is alive but quiet.
fn client_disconnected(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Plan (or reuse) and execute one query through admission control.
///
/// The session thread polls the job handle instead of blocking blindly:
/// between polls it peeks the client socket, and on a hang-up cancels
/// the job with [`CancelReason::ClientDisconnect`] — a dead client's
/// query stops costing workers within one wave and one morsel.
#[allow(clippy::too_many_arguments)]
fn handle_query(
    shared: &ServerShared,
    tenant: &str,
    ctx: &RheemContext,
    gate: &Arc<JobGate>,
    stream: &TcpStream,
    catalog: &QueryCatalog,
    statements: &mut HashMap<String, Arc<PlannedQuery>>,
    sql: &str,
    deadline_ms: Option<u64>,
) -> Response {
    let planned = match statements.get(sql) {
        Some(p) => p.clone(),
        None => match catalog.plan(sql) {
            Ok(p) => {
                let p = Arc::new(p);
                statements.insert(sql.to_string(), p.clone());
                p
            }
            Err(e) => {
                return Response::Err {
                    message: format!("planning failed: {e}"),
                }
            }
        },
    };
    let job_ctx = ctx.clone();
    let job_planned = planned.clone();
    let job_gate = gate.clone();
    let deadline = deadline_ms.map(Duration::from_millis);
    let submitted = shared.service.submit_handle(tenant, deadline, move |run| {
        // Tie this job's token into the wave gate (so a cancelled job
        // stops waiting for wave slots) and the context (so the executor,
        // interpreter, and kernels all observe it). The remaining budget
        // — queue wait already deducted — becomes the executor timeout.
        job_gate.set_cancel(Some(run.cancel.clone()));
        // Clear the gate on *every* exit, including a panic unwinding to
        // the pool's `catch_unwind`: a dead job's token left installed
        // could be tripped later (e.g. a tenant-wide cancel) and stall
        // the session's next query's wave-slot waits on a stale token.
        let _clear_gate = ClearGateCancel(&job_gate);
        let mut job_ctx = job_ctx.with_cancel_token(run.cancel.clone());
        if let Some(remaining) = run.remaining {
            job_ctx = job_ctx.with_timeout(remaining);
        }
        let job = job_ctx.execute_logical(&job_planned.logical)?;
        let rows = job
            .outputs
            .get(&job_planned.sink)
            .map(|d| d.records().to_vec())
            .unwrap_or_default();
        Ok::<_, rheem_core::RheemError>(rows)
    });
    let handle = match submitted {
        Ok(handle) => handle,
        Err(admission) => {
            return Response::Err {
                message: format!("rejected: {admission}"),
            }
        }
    };
    let mut hung_up = false;
    let result = loop {
        if let Some(result) = handle.wait_timeout(DISCONNECT_POLL) {
            break result;
        }
        if !hung_up && client_disconnected(stream) {
            hung_up = true;
            shared
                .service
                .cancel_job(tenant, handle.id(), CancelReason::ClientDisconnect);
            // Keep waiting: the job unwinds through its next checkpoint
            // and the rendezvous completes; only then is it safe to
            // return (the response write will fail harmlessly).
        }
    };
    match result {
        Err(admission) => Response::Err {
            message: format!("rejected: {admission}"),
        },
        Ok(Err(exec)) => Response::Err {
            message: format!("execution failed: {exec}"),
        },
        Ok(Ok(rows)) => Response::Rows {
            schema: planned.schema.clone(),
            rows,
        },
    }
}

/// Render the shared metrics registry plus cache and scheduler gauges,
/// and the requesting tenant's live job ids (for `CANCEL` addressing).
fn render_stats(shared: &ServerShared, tenant: &str) -> String {
    let mut text = shared.observability.metrics().snapshot().render();
    let cache = shared.plan_cache.stats();
    text.push_str(&format!(
        "plan_cache hits={} misses={} invalidations={} entries={}\n",
        cache.hits, cache.misses, cache.invalidations, cache.entries
    ));
    text.push_str(&format!(
        "scheduler grants={} waiting={}\n",
        shared.scheduler.total_grants(),
        shared.scheduler.waiting_jobs()
    ));
    let ids: Vec<String> = shared
        .service
        .inflight_ids(tenant)
        .into_iter()
        .map(|id| id.to_string())
        .collect();
    text.push_str(&format!(
        "server.tenant.{tenant}.inflight_ids [{}]\n",
        ids.join(",")
    ));
    text
}
