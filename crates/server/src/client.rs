//! A small blocking client for the wire protocol.
//!
//! One [`Client`] is one session: connect, `hello`, then any number of
//! `register`/`query`/`stats` calls, then `goodbye`. Used by the
//! integration tests and by the closed-loop load generator in
//! `crates/bench`.

use std::net::{TcpStream, ToSocketAddrs};

use rheem_core::{Record, Schema};

use crate::protocol::{read_frame, write_frame, Request, Response, WireError, WireResult};

/// A blocking protocol client holding one session.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and open a session as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> WireResult<Self> {
        let stream = TcpStream::connect(addr)?;
        let mut client = Client { stream };
        match client.call(&Request::Hello {
            tenant: tenant.to_string(),
        })? {
            Response::Ok => Ok(client),
            Response::Err { message } => Err(WireError::Malformed(message)),
            other => Err(WireError::Malformed(format!(
                "unexpected HELLO reply: {other:?}"
            ))),
        }
    }

    /// Send one request and read one response.
    pub fn call(&mut self, request: &Request) -> WireResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| WireError::Malformed("server closed the connection".into()))?;
        Response::decode(&body)
    }

    /// Register (or replace) an in-memory table.
    pub fn register(&mut self, name: &str, schema: Schema, rows: Vec<Record>) -> WireResult<()> {
        match self.call(&Request::Register {
            name: name.to_string(),
            schema,
            rows,
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(WireError::Malformed(message)),
            other => Err(WireError::Malformed(format!(
                "unexpected REGISTER reply: {other:?}"
            ))),
        }
    }

    /// Execute a query; `Err(Malformed)` carries server-side errors
    /// (planning failures, admission rejections, execution failures).
    pub fn query(&mut self, sql: &str) -> WireResult<(Schema, Vec<Record>)> {
        self.query_request(sql, None)
    }

    /// Execute a query with a wall-clock deadline. Queue wait counts
    /// against it: a request that ages out before reaching a worker is
    /// shed server-side and comes back as `Err(Malformed)` mentioning
    /// the deadline, as does one cancelled mid-execution.
    pub fn query_with_deadline(
        &mut self,
        sql: &str,
        deadline: std::time::Duration,
    ) -> WireResult<(Schema, Vec<Record>)> {
        self.query_request(sql, Some(deadline.as_millis().min(u64::MAX as u128) as u64))
    }

    fn query_request(
        &mut self,
        sql: &str,
        deadline_ms: Option<u64>,
    ) -> WireResult<(Schema, Vec<Record>)> {
        match self.call(&Request::Query {
            sql: sql.to_string(),
            deadline_ms,
        })? {
            Response::Rows { schema, rows } => Ok((schema, rows)),
            Response::Err { message } => Err(WireError::Malformed(message)),
            other => Err(WireError::Malformed(format!(
                "unexpected QUERY reply: {other:?}"
            ))),
        }
    }

    /// Cancel one of this tenant's in-flight jobs by id (`0` cancels all
    /// of them). Idempotent; job ids show up in [`Client::stats`] under
    /// `server.tenant.<t>.inflight_ids`. Note a session is blocked while
    /// its own query runs, so cancels are sent from a *second* session
    /// opened under the same tenant.
    pub fn cancel(&mut self, job: u64) -> WireResult<()> {
        match self.call(&Request::Cancel { job })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(WireError::Malformed(message)),
            other => Err(WireError::Malformed(format!(
                "unexpected CANCEL reply: {other:?}"
            ))),
        }
    }

    /// Fetch the server's rendered counter snapshot.
    pub fn stats(&mut self) -> WireResult<String> {
        match self.call(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            Response::Err { message } => Err(WireError::Malformed(message)),
            other => Err(WireError::Malformed(format!(
                "unexpected STATS reply: {other:?}"
            ))),
        }
    }

    /// Close the session cleanly.
    pub fn goodbye(mut self) -> WireResult<()> {
        match self.call(&Request::Goodbye)? {
            Response::Ok => Ok(()),
            other => Err(WireError::Malformed(format!(
                "unexpected GOODBYE reply: {other:?}"
            ))),
        }
    }
}
