//! # rheem-graph
//!
//! The graph processing application on top of RHEEM (announced in §5 of
//! the paper alongside the ML application). Three workloads exercising
//! different plan shapes:
//!
//! * [`pagerank`] — iterative rank propagation (join + reduce loop);
//! * [`components`] — connected components by label propagation;
//! * [`sssp`] — single-source shortest paths by iterative relaxation;
//! * [`triangles`] — triangle counting by cascaded equi-joins.

#![warn(missing_docs)]

pub mod components;
pub mod pagerank;
pub mod sssp;
pub mod triangles;

pub use components::{component_count, ConnectedComponents};
pub use pagerank::PageRank;
pub use sssp::ShortestPaths;
