//! Single-source shortest paths (Bellman–Ford style relaxation) as a RHEEM
//! loop plan — the classic iterative graph workload after PageRank.
//!
//! Layouts: weighted edges `[src(Int), dst(Int), weight(Float)]`;
//! distances (the loop state) `[node(Int), dist(Float)]` (unreachable nodes
//! carry `f64::INFINITY`).

use rheem_core::data::{Dataset, Record};
use rheem_core::error::{Result, RheemError};
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
use rheem_core::{JobResult, RheemContext};

use crate::pagerank::nodes_of;

/// Shortest-path configuration.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Source node.
    pub source: i64,
    /// Relaxation rounds (≥ longest shortest path's hop count for
    /// exactness; `nodes - 1` is always sufficient).
    pub iterations: u64,
}

impl ShortestPaths {
    /// Paths from `source`, with a default of 30 relaxation rounds.
    pub fn from(source: i64) -> Self {
        ShortestPaths {
            source,
            iterations: 30,
        }
    }

    /// Override the round count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Build the plan; returns `(plan, sink)`. Edges must carry
    /// non-negative weights in field 2 (validated here).
    pub fn build_plan(&self, edges: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
        for e in &edges {
            let w = e.float(2)?;
            if w < 0.0 {
                return Err(RheemError::InvalidPlan(format!(
                    "negative edge weight {w} (relaxation count only covers non-negative graphs)"
                )));
            }
        }
        let nodes = nodes_of(&edges);
        if !nodes.contains(&self.source) {
            return Err(RheemError::InvalidPlan(format!(
                "source node {} does not appear in the edge list",
                self.source
            )));
        }

        // Loop body: dist' = min(dist, min over in-edges (dist[src] + w)).
        let mut body = PlanBuilder::new();
        let dist = body.loop_input();
        let edge_src = body.collection("edges", edges);
        // edge.src = dist.node → candidate distance for dst.
        let joined = body.hash_join(edge_src, dist, KeyUdf::field(0), KeyUdf::field(0));
        // [src, dst, w, node, d] -> [dst, d + w].
        let candidates = body.map(
            joined,
            MapUdf::new("relax", |r: &Record| {
                rec![
                    r.int(1).expect("dst"),
                    r.float(4).expect("dist") + r.float(2).expect("weight")
                ]
            }),
        );
        let all = body.union(candidates, dist);
        body.reduce_by_key(
            all,
            KeyUdf::field(0),
            ReduceUdf::new("min-dist", |a: Record, b: &Record| {
                if b.float(1).expect("dist") < a.float(1).expect("dist") {
                    b.clone()
                } else {
                    a
                }
            }),
        );
        let body = body.build_fragment()?;

        let mut b = PlanBuilder::new();
        let source = self.source;
        let init = b.collection(
            "initial-distances",
            nodes
                .iter()
                .map(|&v| rec![v, if v == source { 0.0 } else { f64::INFINITY }])
                .collect(),
        );
        let looped = b.repeat(
            init,
            body,
            LoopCondUdf::fixed_iterations(self.iterations),
            self.iterations,
        );
        let sink = b.collect(looped);
        Ok((b.build()?, sink))
    }

    /// Run; returns `(node, distance)` sorted by node (`f64::INFINITY` for
    /// unreachable nodes).
    pub fn run(
        &self,
        ctx: &RheemContext,
        edges: Vec<Record>,
    ) -> Result<(Vec<(i64, f64)>, JobResult)> {
        let (plan, sink) = self.build_plan(edges)?;
        let result = ctx.execute(plan)?;
        let distances = decode_distances(&result.outputs[&sink])?;
        Ok((distances, result))
    }
}

/// Decode `[node, dist]` records sorted by node.
pub fn decode_distances(d: &Dataset) -> Result<Vec<(i64, f64)>> {
    let mut out: Vec<(i64, f64)> = d
        .iter()
        .map(|r| Ok((r.int(0)?, r.float(1)?)))
        .collect::<Result<_>>()?;
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn weighted_diamond() {
        //      1 --1.0--> 3
        //     /2.0          \0.5
        //    0               4
        //     \1.0          /
        //      2 --5.0--> (4 directly)
        let edges = vec![
            rec![0i64, 1i64, 2.0],
            rec![0i64, 2i64, 1.0],
            rec![1i64, 3i64, 1.0],
            rec![3i64, 4i64, 0.5],
            rec![2i64, 4i64, 5.0],
        ];
        let (dist, _) = ShortestPaths::from(0).run(&ctx(), edges).unwrap();
        let d: std::collections::HashMap<i64, f64> = dist.into_iter().collect();
        assert_eq!(d[&0], 0.0);
        assert_eq!(d[&1], 2.0);
        assert_eq!(d[&2], 1.0);
        assert_eq!(d[&3], 3.0);
        assert_eq!(d[&4], 3.5); // via 0→1→3→4, not 0→2→4 (6.0)
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let edges = vec![rec![0i64, 1i64, 1.0], rec![2i64, 3i64, 1.0]];
        let (dist, _) = ShortestPaths::from(0).run(&ctx(), edges).unwrap();
        let d: std::collections::HashMap<i64, f64> = dist.into_iter().collect();
        assert_eq!(d[&1], 1.0);
        assert!(d[&2].is_infinite());
        assert!(d[&3].is_infinite());
    }

    #[test]
    fn hop_limited_iterations_truncate_relaxation() {
        // A 5-hop path: with only 2 rounds, nodes beyond hop 2 stay infinite.
        let edges: Vec<Record> = (0..5i64).map(|v| rec![v, v + 1, 1.0]).collect();
        let (dist, _) = ShortestPaths::from(0)
            .with_iterations(2)
            .run(&ctx(), edges)
            .unwrap();
        let d: std::collections::HashMap<i64, f64> = dist.into_iter().collect();
        assert_eq!(d[&2], 2.0);
        assert!(d[&4].is_infinite());
    }

    #[test]
    fn rejects_negative_weights_and_unknown_source() {
        let edges = vec![rec![0i64, 1i64, -1.0]];
        assert!(ShortestPaths::from(0).build_plan(edges).is_err());
        let edges = vec![rec![0i64, 1i64, 1.0]];
        assert!(ShortestPaths::from(9).build_plan(edges).is_err());
    }

    #[test]
    fn agrees_with_dijkstra_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let n = 40i64;
        let mut edges = Vec::new();
        for _ in 0..200 {
            let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if s != d {
                edges.push(rec![s, d, (rng.gen_range(1..100) as f64) / 10.0]);
            }
        }
        // Make sure the source exists.
        edges.push(rec![0i64, 1i64, 1.0]);

        // Reference: Dijkstra on an adjacency list.
        let mut adj: std::collections::HashMap<i64, Vec<(i64, f64)>> = Default::default();
        for e in &edges {
            adj.entry(e.int(0).unwrap())
                .or_default()
                .push((e.int(1).unwrap(), e.float(2).unwrap()));
        }
        let mut expected: std::collections::HashMap<i64, f64> = Default::default();
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered_float(0.0)), 0i64));
        while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
            let d = d.0;
            if expected.contains_key(&v) {
                continue;
            }
            expected.insert(v, d);
            for &(u, w) in adj.get(&v).into_iter().flatten() {
                if !expected.contains_key(&u) {
                    heap.push((std::cmp::Reverse(ordered_float(d + w)), u));
                }
            }
        }

        let (dist, _) = ShortestPaths::from(0)
            .with_iterations(50)
            .run(&ctx(), edges)
            .unwrap();
        for (node, d) in dist {
            match expected.get(&node) {
                Some(&e) => assert!((d - e).abs() < 1e-9, "node {node}: {d} vs {e}"),
                None => assert!(d.is_infinite(), "node {node} should be unreachable"),
            }
        }
    }

    /// Total-orderable float wrapper for the reference Dijkstra.
    #[derive(PartialEq)]
    struct OrderedF64(f64);
    impl Eq for OrderedF64 {}
    impl PartialOrd for OrderedF64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for OrderedF64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    fn ordered_float(x: f64) -> OrderedF64 {
        OrderedF64(x)
    }
}
