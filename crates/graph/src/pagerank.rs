//! PageRank as a RHEEM loop plan.
//!
//! The graph application is the third application the paper announces in
//! §5 ("we are currently developing ... a graph processing application").
//! PageRank exercises the iterative dataflow shape that, like the ML
//! loops, is exactly where platform choice matters.
//!
//! Layouts: edges `[src(Int), dst(Int)]`; ranks (the loop state)
//! `[node(Int), rank(Float)]`.

use rheem_core::data::{Dataset, Record};
use rheem_core::error::Result;
use rheem_core::kernels;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
use rheem_core::{JobResult, RheemContext};

/// PageRank configuration.
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 is standard).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: u64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            iterations: 20,
        }
    }
}

/// Distinct node ids of an edge list.
pub fn nodes_of(edges: &[Record]) -> Vec<i64> {
    let mut nodes: Vec<i64> = edges
        .iter()
        .flat_map(|e| [e.int(0).expect("src"), e.int(1).expect("dst")])
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

impl PageRank {
    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Build the plan; returns `(plan, sink)`.
    ///
    /// Application-side preprocessing computes each source's out-degree so
    /// the loop body can scale contributions — host code preparing static
    /// inputs, as any RHEEM application would.
    pub fn build_plan(&self, edges: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
        let nodes = nodes_of(&edges);
        let n = nodes.len().max(1) as f64;
        let base = (1.0 - self.damping) / n;
        let damping = self.damping;

        // Out-degree per source node (host-side, static).
        let degrees = kernels::hash_group(&edges, &KeyUdf::field(0));
        let mut degree_of = std::collections::HashMap::new();
        for (k, members) in &degrees {
            degree_of.insert(k.as_int()?, members.len() as i64);
        }
        let edges_with_deg: Vec<Record> = edges
            .iter()
            .map(|e| {
                let src = e.int(0).expect("src");
                rec![src, e.int(1).expect("dst"), degree_of[&src]]
            })
            .collect();

        // ----- loop body ---------------------------------------------------
        let mut body = PlanBuilder::new();
        let ranks = body.loop_input();
        let edge_src = body.collection("edges+deg", edges_with_deg);
        // Join contributions: edge.src = rank.node.
        let joined = body.hash_join(edge_src, ranks, KeyUdf::field(0), KeyUdf::field(0));
        // [src, dst, deg, node, rank] -> [dst, rank/deg].
        let contribs = body.map(
            joined,
            MapUdf::new("contribution", |r: &Record| {
                rec![
                    r.int(1).expect("dst"),
                    r.float(4).expect("rank") / r.int(2).expect("deg") as f64
                ]
            }),
        );
        // Keep every node alive with a zero contribution.
        let zero_base = body.collection(
            "zero-contributions",
            nodes.iter().map(|&v| rec![v, 0.0f64]).collect(),
        );
        let all = body.union(contribs, zero_base);
        let summed = body.reduce_by_key(
            all,
            KeyUdf::field(0),
            ReduceUdf::new("sum", |a: Record, b: &Record| {
                rec![
                    a.int(0).expect("node"),
                    a.float(1).expect("rank") + b.float(1).expect("rank")
                ]
            }),
        );
        body.map(
            summed,
            MapUdf::new("damp", move |r: &Record| {
                rec![
                    r.int(0).expect("node"),
                    base + damping * r.float(1).expect("sum")
                ]
            }),
        );
        let body = body.build_fragment()?;

        // ----- outer plan --------------------------------------------------
        let mut b = PlanBuilder::new();
        let init = b.collection(
            "initial-ranks",
            nodes.iter().map(|&v| rec![v, 1.0 / n]).collect(),
        );
        let looped = b.repeat(
            init,
            body,
            LoopCondUdf::fixed_iterations(self.iterations),
            self.iterations,
        );
        let sink = b.collect(looped);
        Ok((b.build()?, sink))
    }

    /// Run PageRank; returns `(node, rank)` pairs sorted by rank descending.
    pub fn run(
        &self,
        ctx: &RheemContext,
        edges: Vec<Record>,
    ) -> Result<(Vec<(i64, f64)>, JobResult)> {
        let (plan, sink) = self.build_plan(edges)?;
        let result = ctx.execute(plan)?;
        let ranks = decode_ranks(&result.outputs[&sink])?;
        Ok((ranks, result))
    }
}

/// Decode `[node, rank]` records, sorted by rank descending.
pub fn decode_ranks(d: &Dataset) -> Result<Vec<(i64, f64)>> {
    let mut out: Vec<(i64, f64)> = d
        .iter()
        .map(|r| Ok((r.int(0)?, r.float(1)?)))
        .collect::<Result<_>>()?;
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    /// A star graph: everyone links to node 0.
    fn star(n: i64) -> Vec<Record> {
        (1..=n).map(|v| rec![v, 0i64]).collect()
    }

    #[test]
    fn hub_of_a_star_has_the_top_rank() {
        let (ranks, _) = PageRank::default()
            .with_iterations(15)
            .run(&ctx(), star(10))
            .unwrap();
        assert_eq!(ranks[0].0, 0, "hub should rank first");
        assert!(ranks[0].1 > 5.0 * ranks[1].1);
        // All ranks positive; spokes tie.
        for (_, r) in &ranks {
            assert!(*r > 0.0);
        }
        let spoke_ranks: Vec<f64> = ranks[1..].iter().map(|(_, r)| *r).collect();
        for w in spoke_ranks.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_cycle_gives_uniform_ranks() {
        // 0 -> 1 -> 2 -> 0: perfect symmetry.
        let edges = vec![rec![0i64, 1i64], rec![1i64, 2i64], rec![2i64, 0i64]];
        let (ranks, _) = PageRank::default()
            .with_iterations(30)
            .run(&ctx(), edges)
            .unwrap();
        for (_, r) in &ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn rank_mass_is_conserved_without_dangling_nodes() {
        // Cycle plus chords: every node has out-degree ≥ 1.
        let mut edges = vec![];
        for v in 0..6i64 {
            edges.push(rec![v, (v + 1) % 6]);
        }
        edges.push(rec![0i64, 3i64]);
        let (ranks, _) = PageRank::default()
            .with_iterations(25)
            .run(&ctx(), edges)
            .unwrap();
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn preferential_attachment_hubs_rank_high() {
        let edges = rheem_datagen::graph::preferential_attachment(120, 2, 9);
        let (ranks, _) = PageRank::default()
            .with_iterations(15)
            .run(&ctx(), edges)
            .unwrap();
        // The early nodes (0 or 1) are the classic hubs.
        assert!(
            ranks[0].0 <= 2,
            "top node {} should be an early hub",
            ranks[0].0
        );
    }
}
