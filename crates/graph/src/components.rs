//! Connected components by label propagation, as a RHEEM loop plan.
//!
//! Labels (the loop state) are `[node(Int), label(Int)]`, initialized to
//! `label = node`; every iteration each node adopts the minimum label among
//! itself and its in-neighbours. Edges are treated as undirected by
//! symmetrizing the edge list up front.

use rheem_core::data::{Dataset, Record};
use rheem_core::error::Result;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, LoopCondUdf, MapUdf, ReduceUdf};
use rheem_core::{JobResult, RheemContext};

use crate::pagerank::nodes_of;

/// Connected-components configuration.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// Label-propagation rounds (≥ graph diameter for exactness).
    pub iterations: u64,
}

impl Default for ConnectedComponents {
    fn default() -> Self {
        ConnectedComponents { iterations: 30 }
    }
}

impl ConnectedComponents {
    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Build the plan; returns `(plan, sink)`.
    pub fn build_plan(&self, edges: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
        let nodes = nodes_of(&edges);
        // Symmetrize: label flows both ways across an edge.
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for e in &edges {
            let (s, d) = (e.int(0)?, e.int(1)?);
            sym.push(rec![s, d]);
            sym.push(rec![d, s]);
        }

        let mut body = PlanBuilder::new();
        let labels = body.loop_input();
        let edge_src = body.collection("sym-edges", sym);
        // edge.src = label.node → propagate the label to dst.
        let joined = body.hash_join(edge_src, labels, KeyUdf::field(0), KeyUdf::field(0));
        // [src, dst, node, label] -> [dst, label].
        let propagated = body.map(
            joined,
            MapUdf::new("propagate", |r: &Record| {
                rec![r.int(1).expect("dst"), r.int(3).expect("label")]
            }),
        );
        let kept = body.union(propagated, labels);
        body.reduce_by_key(
            kept,
            KeyUdf::field(0),
            ReduceUdf::new("min-label", |a: Record, b: &Record| {
                if b.int(1).expect("label") < a.int(1).expect("label") {
                    b.clone()
                } else {
                    a
                }
            }),
        );
        let body = body.build_fragment()?;

        let mut b = PlanBuilder::new();
        let init = b.collection(
            "initial-labels",
            nodes.iter().map(|&v| rec![v, v]).collect(),
        );
        let looped = b.repeat(
            init,
            body,
            LoopCondUdf::fixed_iterations(self.iterations),
            self.iterations,
        );
        let sink = b.collect(looped);
        Ok((b.build()?, sink))
    }

    /// Run; returns `(node, component-label)` pairs sorted by node.
    pub fn run(
        &self,
        ctx: &RheemContext,
        edges: Vec<Record>,
    ) -> Result<(Vec<(i64, i64)>, JobResult)> {
        let (plan, sink) = self.build_plan(edges)?;
        let result = ctx.execute(plan)?;
        let labels = decode_labels(&result.outputs[&sink])?;
        Ok((labels, result))
    }
}

/// Decode `[node, label]` records, sorted by node.
pub fn decode_labels(d: &Dataset) -> Result<Vec<(i64, i64)>> {
    let mut out: Vec<(i64, i64)> = d
        .iter()
        .map(|r| Ok((r.int(0)?, r.int(1)?)))
        .collect::<Result<_>>()?;
    out.sort_unstable();
    Ok(out)
}

/// Number of distinct components in a labelling.
pub fn component_count(labels: &[(i64, i64)]) -> usize {
    let mut set: Vec<i64> = labels.iter().map(|(_, l)| *l).collect();
    set.sort_unstable();
    set.dedup();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn disjoint_cycles_yield_one_component_each() {
        let edges = rheem_datagen::graph::disjoint_cycles(4, 5);
        let (labels, _) = ConnectedComponents::default()
            .with_iterations(10)
            .run(&ctx(), edges)
            .unwrap();
        assert_eq!(labels.len(), 20);
        assert_eq!(component_count(&labels), 4);
        // Each cycle's label is its minimum node id.
        for (node, label) in &labels {
            assert_eq!(*label, (node / 5) * 5);
        }
    }

    #[test]
    fn chain_collapses_to_single_component() {
        // 0-1-2-...-9 as a directed path; symmetrization makes it one CC.
        let edges: Vec<Record> = (0..9i64).map(|v| rec![v, v + 1]).collect();
        let (labels, _) = ConnectedComponents::default()
            .with_iterations(12)
            .run(&ctx(), edges)
            .unwrap();
        assert_eq!(component_count(&labels), 1);
        assert!(labels.iter().all(|(_, l)| *l == 0));
    }

    #[test]
    fn insufficient_iterations_leave_the_chain_unfinished() {
        // Propagation moves one hop per round: 3 rounds cannot finish a
        // 10-node chain (label 0 must travel 9 hops).
        let edges: Vec<Record> = (0..9i64).map(|v| rec![v, v + 1]).collect();
        let (labels, _) = ConnectedComponents::default()
            .with_iterations(3)
            .run(&ctx(), edges)
            .unwrap();
        assert!(component_count(&labels) > 1);
    }
}
