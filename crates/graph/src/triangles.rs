//! Triangle counting via two equi-joins — a non-iterative graph workload
//! that stresses the join operators and the optimizer's join costing.
//!
//! Edges are undirected; each triangle `{u, v, w}` is counted exactly once
//! by orienting edges canonically (`u < v`) and joining
//! `(u,v) ⋈ (v,w) ⋈ (u,w)`.

use rheem_core::data::{Record, Value};
use rheem_core::error::Result;
use rheem_core::plan::{NodeId, PhysicalPlan, PlanBuilder};
use rheem_core::rec;
use rheem_core::udf::{KeyUdf, MapUdf};
use rheem_core::{interpreter, JobResult, RheemContext};

/// Pack a node pair into one scalar key (node ids must fit in 31 bits).
fn pair_key(u: i64, v: i64) -> Value {
    Value::Int((u << 31) | v)
}

/// Build the triangle-counting plan; returns `(plan, count-sink)`.
pub fn build_plan(edges: Vec<Record>) -> Result<(PhysicalPlan, NodeId)> {
    // Canonicalize to u < v and deduplicate (host-side preprocessing).
    let mut canon: Vec<Record> = edges
        .iter()
        .filter_map(|e| {
            let (s, d) = (e.int(0).ok()?, e.int(1).ok()?);
            match s.cmp(&d) {
                std::cmp::Ordering::Less => Some(rec![s, d]),
                std::cmp::Ordering::Greater => Some(rec![d, s]),
                std::cmp::Ordering::Equal => None,
            }
        })
        .collect();
    canon.sort();
    canon.dedup();

    let mut b = PlanBuilder::new();
    let e1 = b.collection("edges", canon);
    // Wedges: (u,v) ⋈_{v = v'} (v',w) with u < v < w.
    let wedges_raw = b.hash_join(e1, e1, KeyUdf::field(1), KeyUdf::field(0));
    // [u, v, v, w] -> [u, w] keyed for the closing edge; v<w holds by
    // canonical orientation, u<v likewise, so u<v<w is automatic.
    let closing = b.map(
        wedges_raw,
        MapUdf::new("wedge-endpoints", |r: &Record| {
            let (u, w) = (r.int(0).expect("u"), r.int(3).expect("w"));
            Record::new(vec![pair_key(u, w)])
        }),
    );
    let edge_keys = b.map(
        e1,
        MapUdf::new("edge-key", |r: &Record| {
            Record::new(vec![pair_key(r.int(0).expect("u"), r.int(1).expect("v"))])
        }),
    );
    let triangles = b.hash_join(closing, edge_keys, KeyUdf::field(0), KeyUdf::field(0));
    let sink = b.count(triangles);
    Ok((b.build()?, sink))
}

/// Count triangles of an undirected edge list.
pub fn count(ctx: &RheemContext, edges: Vec<Record>) -> Result<(u64, JobResult)> {
    let (plan, sink) = build_plan(edges)?;
    let result = ctx.execute(plan)?;
    let n = interpreter::read_count(&result.outputs[&sink])? as u64;
    Ok((n, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheem_platforms::JavaPlatform;
    use std::sync::Arc;

    fn ctx() -> RheemContext {
        RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
    }

    #[test]
    fn single_triangle() {
        let edges = vec![rec![0i64, 1i64], rec![1i64, 2i64], rec![2i64, 0i64]];
        let (n, _) = count(&ctx(), edges).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5i64 {
            for v in 0..5i64 {
                if u != v {
                    edges.push(rec![u, v]); // duplicates + both directions
                }
            }
        }
        let (n, _) = count(&ctx(), edges).unwrap();
        assert_eq!(n, 10); // C(5,3)
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        // A path and a star are triangle-free.
        let path: Vec<Record> = (0..10i64).map(|v| rec![v, v + 1]).collect();
        assert_eq!(count(&ctx(), path).unwrap().0, 0);
        let star: Vec<Record> = (1..10i64).map(|v| rec![0i64, v]).collect();
        assert_eq!(count(&ctx(), star).unwrap().0, 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let edges = vec![
            rec![0i64, 0i64],
            rec![0i64, 1i64],
            rec![1i64, 2i64],
            rec![2i64, 0i64],
        ];
        assert_eq!(count(&ctx(), edges).unwrap().0, 1);
    }
}
