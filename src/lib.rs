//! # rheem
//!
//! Facade crate of the RHEEM reproduction ("Road to Freedom in Big Data
//! Analytics", EDBT 2016): re-exports every workspace crate under one
//! roof so examples and downstream users need a single dependency.
//!
//! ```no_run
//! use rheem::prelude::*;
//! use rheem::rec;
//! use std::sync::Arc;
//!
//! let ctx = RheemContext::new()
//!     .with_platform(Arc::new(JavaPlatform::new()))
//!     .with_platform(Arc::new(SparkLikePlatform::new(8)));
//! let mut b = PlanBuilder::new();
//! let src = b.collection("nums", (0..100i64).map(|i| rec![i]).collect());
//! let sum = b.global_reduce(src, ReduceUdf::new("sum", |a, x| {
//!     rec![a.int(0).unwrap() + x.int(0).unwrap()]
//! }));
//! b.collect(sum);
//! let result = ctx.execute(b.build().unwrap()).unwrap();
//! println!("{:?}", result.outputs);
//! ```

pub use rheem_cleaning as cleaning;
pub use rheem_core as core;
pub use rheem_datagen as datagen;
pub use rheem_graph as graph;
pub use rheem_ml as ml;
pub use rheem_platforms as platforms;
pub use rheem_storage as storage;

pub use rheem_core::rec;

/// The names most programs need.
pub mod prelude {
    pub use rheem_core::data::{DataType, Dataset, Record, Schema, Value};
    pub use rheem_core::plan::{PhysicalPlan, PlanBuilder};
    pub use rheem_core::query::QueryCatalog;
    pub use rheem_core::udf::{
        FilterUdf, FlatMapUdf, GroupMapUdf, KeyUdf, LoopCondUdf, MapUdf, ReduceUdf,
    };
    pub use rheem_core::{JobResult, MultiPlatformOptimizer, Platform, RheemContext, RheemError};
    pub use rheem_platforms::{
        JavaPlatform, MapReduceLikePlatform, OverheadConfig, RelationalPlatform, SparkLikePlatform,
    };
    pub use rheem_storage::{StorageLayer, StorageRequest};
}
