//! Adaptive mid-job re-optimization, end to end (§4.2's "monitoring the
//! progress of plan execution" taken to its conclusion: acting on what the
//! monitor sees).
//!
//! The contract under test: enabling a [`ReplanPolicy`] never changes a
//! job's *outputs* — it may only change which platforms run the unexecuted
//! suffix — and every re-plan is observable (the `replans` stat, the
//! `optimizer.replans` counter, a `replan` trace span) and bounded (by
//! `max_replans` and by the job deadline).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::optimizer::enumerate::split_into_atoms;
use rheem_core::plan::NodeId;
use rheem_core::{
    canonical_tree, ExecutionPlan, JobResult, NodeEstimate, Observability, ReplanEvent,
    ReplanPolicy, RingBufferSink, ScheduleMode, SpanKind,
};
use rheem_platforms::test_context;

/// A two-atom plan whose estimates claim the source yields `declared`
/// records while it actually yields `actual` — the mis-estimation that
/// should trip the drift detector at the wave boundary. The source atom is
/// hand-pinned to `src_platform`, the suffix (map + sink) to
/// `suffix_platform`.
fn misestimated_exec_plan(
    actual: i64,
    declared: f64,
    src_platform: &str,
    suffix_platform: &str,
) -> ExecutionPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..actual).map(|i| rec![i % 7, i]).collect());
    let mapped = b.map(
        src,
        MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
    );
    b.collect(mapped);
    let physical = b.build().unwrap();
    let assignments: Vec<String> = vec![
        src_platform.into(),
        suffix_platform.into(),
        suffix_platform.into(),
    ];
    let atoms = split_into_atoms(&physical, &assignments);
    assert_eq!(atoms.len(), 2, "want a boundary between source and suffix");
    let estimates = (0..physical.len())
        .map(|_| NodeEstimate {
            cost_ms: declared * 1e-4,
            card: declared,
        })
        .collect();
    ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates,
        enumeration: Default::default(),
    }
}

fn sorted_outputs(result: &JobResult) -> Vec<(NodeId, Vec<Record>)> {
    let mut out: Vec<(NodeId, Vec<Record>)> = result
        .outputs
        .iter()
        .map(|(n, d)| (*n, d.records().to_vec()))
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

#[derive(Default)]
struct ReplanRecorder {
    events: Mutex<Vec<ReplanEvent>>,
}
impl rheem_core::ProgressListener for ReplanRecorder {
    fn on_replan(&self, event: &ReplanEvent) {
        self.events.lock().push(event.clone());
    }
}

#[test]
fn drift_triggers_a_replan_that_flips_the_suffix_platform() {
    // Estimates claim 1M records; the source actually yields 100. At 1M
    // the hand-pinned sparklike suffix looks reasonable; at 100 the
    // re-enumeration must bring the suffix home to java (no cluster
    // startup overhead) — without changing the output.
    let exec = misestimated_exec_plan(100, 1e6, "java", "sparklike");
    let ctx = || {
        RheemContext::new()
            .with_platform(Arc::new(JavaPlatform::new()))
            .with_platform(Arc::new(SparkLikePlatform::new(4).with_overheads(
                OverheadConfig::accounted_only(Duration::from_millis(25), Duration::from_millis(2)),
            )))
    };

    let baseline = ctx().execute_plan(&exec).unwrap();
    assert_eq!(baseline.stats.replans, 0);
    assert!(baseline.effective_plan.is_none());
    assert_eq!(baseline.stats.platforms_used(), vec!["java", "sparklike"]);

    let recorder = Arc::new(ReplanRecorder::default());
    let adaptive = ctx()
        .with_replan_policy(ReplanPolicy::default())
        .with_progress_listener(recorder.clone())
        .execute_plan(&exec)
        .unwrap();

    assert_eq!(sorted_outputs(&adaptive), sorted_outputs(&baseline));
    assert_eq!(adaptive.stats.replans, 1);
    assert_eq!(
        adaptive.stats.platforms_used(),
        vec!["java"],
        "the suffix should have flipped off the mis-chosen cluster"
    );

    // The effective plan records what actually ran.
    let effective = adaptive.effective_plan.as_ref().expect("replan happened");
    assert_eq!(effective.assignments, vec!["java"; 3]);
    assert_eq!(effective.atoms.len(), adaptive.stats.atoms.len());
    // True cardinality was folded back into the boundary estimate.
    assert_eq!(effective.estimates[0].card, 100.0);

    // The listener saw the re-plan, with the drifted boundary named.
    let events = recorder.events.lock();
    assert_eq!(events.len(), 1);
    let ev = &events[0];
    assert_eq!(ev.index, 0);
    assert_eq!(ev.trigger_node, NodeId(0));
    assert_eq!(ev.observed_card, 100);
    assert!(ev.drift > 1_000.0, "drift {}", ev.drift);
    assert_eq!((ev.replaced_atoms, ev.new_atoms), (1, 1));
}

#[test]
fn replans_are_observable_as_counter_and_span() {
    let exec = misestimated_exec_plan(100, 1e6, "java", "sparklike");
    let ring = Arc::new(RingBufferSink::new(1024));
    let observe = Arc::new(Observability::new().with_sink(ring.clone()));
    let result = test_context()
        .with_observability(observe.clone())
        .with_replan_policy(ReplanPolicy::default())
        .execute_plan(&exec)
        .unwrap();
    assert_eq!(result.stats.replans, 1);
    assert_eq!(observe.metrics().counter_value("optimizer.replans"), 1);

    let spans = ring.snapshot();
    let replan_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Replan)
        .collect();
    assert_eq!(replan_spans.len(), 1);
    let span = replan_spans[0];
    assert!(span.label.starts_with("replan-0"), "{}", span.label);
    assert_eq!(span.records_out, 100);
    // The replan span hangs off the job root, like the waves it separates.
    let job = spans.iter().find(|s| s.kind == SpanKind::Job).unwrap();
    assert_eq!(span.parent, Some(job.id));
}

#[test]
fn canonical_trace_is_identical_modulo_replan_spans_when_assignments_survive() {
    // The suffix is already pinned where re-enumeration lands for 64
    // records (java), so the re-plan fires (the drift at the sparklike
    // source boundary is real) but re-picks the same assignments: the
    // executed atoms are identical and the canonical tree must match the
    // non-adaptive run's exactly (replan spans are skipped by the
    // canonicalizer).
    let exec = misestimated_exec_plan(64, 1e6, "sparklike", "java");
    let run = |policy: Option<ReplanPolicy>| {
        let ring = Arc::new(RingBufferSink::new(1024));
        let observe = Arc::new(Observability::new().with_sink(ring.clone()));
        let mut ctx = test_context().with_observability(observe);
        if let Some(p) = policy {
            ctx = ctx.with_replan_policy(p);
        }
        let result = ctx.execute_plan(&exec).unwrap();
        (result, canonical_tree(&ring.snapshot()))
    };
    let (plain, plain_tree) = run(None);
    let (adaptive, adaptive_tree) = run(Some(ReplanPolicy {
        threshold: 2.0,
        max_replans: 2,
    }));
    assert_eq!(adaptive.stats.replans, 1);
    assert_eq!(sorted_outputs(&adaptive), sorted_outputs(&plain));
    assert_eq!(
        adaptive_tree, plain_tree,
        "replan spans must be invisible to the canonical tree"
    );
    assert!(!adaptive_tree.contains("replan"));
}

#[test]
fn max_replans_zero_disables_replanning_despite_drift() {
    let exec = misestimated_exec_plan(100, 1e6, "java", "sparklike");
    let baseline = test_context().execute_plan(&exec).unwrap();
    let result = test_context()
        .with_replan_policy(ReplanPolicy {
            threshold: 2.0,
            max_replans: 0,
        })
        .execute_plan(&exec)
        .unwrap();
    assert_eq!(result.stats.replans, 0);
    assert!(result.effective_plan.is_none());
    assert_eq!(sorted_outputs(&result), sorted_outputs(&baseline));
}

#[test]
fn a_single_drift_replans_once_even_with_budget_to_spare() {
    // After the re-plan the boundary estimate equals the observed
    // cardinality, so the drift detector must not fire again.
    let exec = misestimated_exec_plan(100, 1e6, "java", "sparklike");
    let result = test_context()
        .with_replan_policy(ReplanPolicy {
            threshold: 2.0,
            max_replans: 5,
        })
        .execute_plan(&exec)
        .unwrap();
    assert_eq!(result.stats.replans, 1);
}

/// A java clone that sleeps before every atom — long enough that a small
/// job deadline has certainly expired by the first wave boundary.
struct SluggishJava {
    inner: JavaPlatform,
    delay: Duration,
}
impl Platform for SluggishJava {
    fn name(&self) -> &str {
        "java"
    }
    fn profile(&self) -> rheem_core::ProcessingProfile {
        self.inner.profile()
    }
    fn supports(&self, op: &rheem_core::PhysicalOp) -> bool {
        self.inner.supports(op)
    }
    fn cost_model(&self) -> Arc<dyn rheem_core::cost::PlatformCostModel> {
        self.inner.cost_model()
    }
    fn execute_atom(
        &self,
        plan: &rheem_core::PhysicalPlan,
        atom: &rheem_core::TaskAtom,
        inputs: &rheem_core::AtomInputs,
        ctx: &rheem_core::ExecutionContext,
    ) -> rheem_core::Result<rheem_core::AtomResult> {
        std::thread::sleep(self.delay);
        self.inner.execute_atom(plan, atom, inputs, ctx)
    }
}

#[test]
fn replans_respect_the_job_deadline() {
    // Wave 0 alone overruns the deadline. The drift detector would fire
    // at the boundary, but a re-plan is part of the job: the deadline
    // check must refuse it (and then fail the job) rather than spend
    // optimizer time a timed-out job no longer has.
    let exec = misestimated_exec_plan(100, 1e6, "java", "sparklike");
    let recorder = Arc::new(ReplanRecorder::default());
    let err = RheemContext::new()
        .with_platform(Arc::new(SluggishJava {
            inner: JavaPlatform::new(),
            delay: Duration::from_millis(50),
        }))
        .with_platform(Arc::new(SparkLikePlatform::new(4)))
        .with_timeout(Duration::from_millis(10))
        .with_replan_policy(ReplanPolicy::default())
        .with_progress_listener(recorder.clone())
        .execute_plan(&exec)
        .unwrap_err();
    assert!(matches!(err, RheemError::BudgetExceeded(_)), "{err}");
    assert!(
        recorder.events.lock().is_empty(),
        "no replan may start after the deadline"
    );
}

// ---------------------------------------------------------------------------
// Property: a replan policy never changes outputs
// ---------------------------------------------------------------------------

/// Unary pipeline steps whose output is deterministic as a sorted bag.
/// `FanoutLie` deliberately mis-declares its fanout hint so the optimizer's
/// cardinality estimates drift far from reality, making real re-plans
/// common in the generated corpus.
#[derive(Clone, Debug)]
enum Step {
    MapAdd(i64),
    FilterMod(i64),
    Distinct,
    ReduceSum,
    FanoutLie,
}

fn apply_step(b: &mut PlanBuilder, input: rheem_core::NodeId, step: &Step) -> rheem_core::NodeId {
    match step {
        Step::MapAdd(c) => {
            let c = *c;
            b.map(
                input,
                MapUdf::new("add", move |r| {
                    rec![r.int(0).unwrap().wrapping_add(c), r.int(1).unwrap_or(0)]
                }),
            )
        }
        Step::FilterMod(m) => {
            let m = (*m).max(1);
            b.filter(
                input,
                FilterUdf::new("mod", move |r| r.int(0).unwrap().rem_euclid(m) != 0),
            )
        }
        Step::Distinct => b.distinct(input),
        Step::ReduceSum => b.reduce_by_key(
            input,
            KeyUdf::new("mod5", |r| (r.int(0).unwrap().rem_euclid(5)).into()),
            ReduceUdf::new("sum", |a, x| {
                rec![
                    a.int(0).unwrap().min(x.int(0).unwrap()),
                    a.int(1).unwrap_or(0).wrapping_add(x.int(1).unwrap_or(0))
                ]
            }),
        ),
        // Claims 64× expansion, actually duplicates each record once.
        Step::FanoutLie => b.flat_map(
            input,
            FlatMapUdf::new("dup", |r| vec![r.clone(), r.clone()]).with_fanout(64.0),
        ),
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-100i64..100).prop_map(Step::MapAdd),
        (1i64..9).prop_map(Step::FilterMod),
        Just(Step::Distinct),
        Just(Step::ReduceSum),
        Just(Step::FanoutLie),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// For random (often badly mis-estimated) plans, executing with an
    /// aggressive replan policy yields exactly the outputs of the plain
    /// run, in both schedule modes; when nothing was re-planned the
    /// canonical trace tree also matches.
    #[test]
    fn prop_replanning_preserves_outputs(
        seed in 0u64..500,
        len in 1usize..300,
        branches in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..4), 1..4),
    ) {
        let mut b = PlanBuilder::new();
        let data: Vec<Record> = (0..len as i64)
            .map(|i| rec![(i.wrapping_mul(seed as i64 + 7)).rem_euclid(83), 1i64])
            .collect();
        let src = b.collection("fuzz", data);
        for steps in &branches {
            let mut node = src;
            for step in steps {
                node = apply_step(&mut b, node, step);
            }
            b.collect(node);
        }
        let exec = test_context().optimize(b.build().unwrap()).unwrap();

        for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
            let run = |policy: Option<ReplanPolicy>| {
                let ring = Arc::new(RingBufferSink::new(8192));
                let observe = Arc::new(Observability::new().with_sink(ring.clone()));
                let mut ctx = test_context()
                    .with_schedule_mode(mode)
                    .with_max_parallel_atoms(4)
                    .with_observability(observe);
                if let Some(p) = policy {
                    ctx = ctx.with_replan_policy(p);
                }
                let result = ctx.execute_plan(&exec).unwrap();
                (result, canonical_tree(&ring.snapshot()))
            };
            let (plain, plain_tree) = run(None);
            let (adaptive, adaptive_tree) = run(Some(ReplanPolicy {
                threshold: 1.5,
                max_replans: 3,
            }));
            prop_assert!(adaptive.stats.replans <= 3);
            prop_assert_eq!(sorted_outputs(&adaptive), sorted_outputs(&plain));
            if adaptive.stats.replans == 0 {
                prop_assert_eq!(adaptive_tree, plain_tree);
            }
        }
    }
}
