//! Byte-identity of the columnar chunk kernels against their row-based
//! twins.
//!
//! The columnar execution path (`rheem_core::kernels::chunked` and the
//! morsel-parallel `parallel::run_pipeline`) claims *exact* equivalence
//! with the record-at-a-time kernels — not just bag equality: the same
//! records, in the same order, with the same float bit patterns. This
//! suite fuzzes that contract over dirty data (`Null`, `NaN`, `-0.0`,
//! mixed-type columns, skewed keys) at several [`KernelParallelism`]
//! settings, and drives a fused-pipeline plan through the executor under
//! both [`ScheduleMode`]s.

use std::sync::Arc;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem_core::data::{Chunk, Value};
use rheem_core::expr::Expr;
use rheem_core::kernels::parallel::KernelParallelism;
use rheem_core::kernels::{self, chunked, parallel};
use rheem_core::optimizer::rewrites::apply_rewrites;
use rheem_core::physical::{PhysicalOp, PipelineStage, StageKind};
use rheem_core::udf::FieldReduce;
use rheem_core::{interpreter, ExecutionContext, ScheduleMode};

/// One dirty value: every `Value` variant, with the float edge cases
/// (`NaN`, `-0.0`, infinities) and a deliberately narrow Int range so keys
/// skew (many duplicates per batch).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        (-4i64..4).prop_map(Value::Int),
        any::<i64>().prop_map(Value::Int),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 * 0.25)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(f64::INFINITY)),
        (0i64..3).prop_map(|i| Value::from(format!("s{i}"))),
    ]
}

/// A rectangular batch of `rows` records, `width` fields each.
fn batch_strategy() -> impl Strategy<Value = Vec<Record>> {
    (
        1usize..4,
        0usize..120,
        proptest::collection::vec(value_strategy(), 0..360),
    )
        .prop_map(|(width, rows, pool)| {
            (0..rows)
                .map(|r| {
                    Record::new(
                        (0..width)
                            .map(|c| pool.get((r * width + c) % pool.len().max(1)).cloned())
                            .map(|v| v.unwrap_or(Value::Null))
                            .collect(),
                    )
                })
                .collect()
        })
}

/// An all-Int key column batch with skewed keys plus a payload field —
/// exercises the typed Int fast paths in grouping/joins/sort.
fn int_keyed_batch_strategy() -> impl Strategy<Value = Vec<Record>> {
    (0usize..150, any::<u64>()).prop_map(|(rows, seed)| {
        (0..rows)
            .map(|i| {
                let k = ((seed >> (i % 13)) as i64).rem_euclid(5);
                Record::new(vec![Value::Int(k), Value::Int(i as i64)])
            })
            .collect()
    })
}

fn chunk_of(records: &[Record]) -> Chunk {
    Chunk::from_records(records).expect("rectangular batch")
}

/// The parallelism settings every comparison runs at: sequential, tiny
/// morsels, and an oversubscribed thread count.
fn parallelism_settings() -> Vec<KernelParallelism> {
    vec![
        KernelParallelism::sequential(),
        KernelParallelism::sequential()
            .with_threads(3)
            .with_morsel_size(7)
            .with_min_rows(0),
        KernelParallelism::sequential()
            .with_threads(16)
            .with_morsel_size(1)
            .with_min_rows(0),
    ]
}

/// A pipeline touching every stage kind: filter on field 0, a map that
/// mixes arithmetic and comparison, then a projection.
fn test_stages() -> Vec<PipelineStage> {
    vec![
        PipelineStage {
            name: "keep".into(),
            kind: StageKind::Filter {
                expr: Arc::new(Expr::field(0).is_null().not()),
                selectivity: 0.9,
            },
        },
        PipelineStage {
            name: "calc".into(),
            kind: StageKind::Map {
                exprs: vec![
                    Expr::field(0).add(Expr::field(1)),
                    Expr::field(0).lt(Expr::field(1)),
                    Expr::field(0),
                ]
                .into(),
            },
        },
        PipelineStage {
            name: "π".into(),
            kind: StageKind::Project {
                indices: vec![0, 2].into(),
            },
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// filter / map / project chunk kernels are byte-identical to the row
    /// kernels on dirty mixed-type batches.
    #[test]
    fn prop_unary_chunk_kernels_match_row_kernels(records in batch_strategy()) {
        let chunk = chunk_of(&records);
        let width = records.first().map(|r| r.width()).unwrap_or(1);

        // Filter: expression predicate vs the derived row closure.
        let pred = Expr::field(0).lt(Expr::lit(1i64));
        let row_filter = FilterUdf::from_expr("p", pred.clone());
        prop_assert_eq!(
            chunked::filter(&chunk, &pred).to_records(),
            kernels::filter(&records, &row_filter)
        );

        // Map: arithmetic + comparison + null probe, row vs vectorized.
        let exprs = vec![
            Expr::field(0).add(Expr::field(width - 1)),
            Expr::field(0).le(Expr::field(width - 1)),
            Expr::field(0).is_null(),
        ];
        let row_map = MapUdf::from_exprs("m", exprs.clone());
        prop_assert_eq!(
            chunked::map(&chunk, &exprs).to_records(),
            kernels::map(&records, &row_map)
        );

        // Project: in-bounds result and out-of-bounds error agree.
        let keep = [width - 1, 0];
        prop_assert_eq!(
            chunked::project(&chunk, &keep).unwrap().to_records(),
            kernels::project(&records, &keep).unwrap()
        );
        if !records.is_empty() {
            prop_assert!(chunked::project(&chunk, &[width]).is_err());
            prop_assert!(kernels::project(&records, &[width]).is_err());
        }
    }

    /// Grouping, reduction, and sort agree with the row kernels — group
    /// order, member order, accumulator widths, and float payload bits.
    #[test]
    fn prop_grouping_chunk_kernels_match_row_kernels(
        mixed in batch_strategy(),
        keyed in int_keyed_batch_strategy(),
    ) {
        for records in [&mixed, &keyed] {
            let chunk = chunk_of(records);
            let key = KeyUdf::field(0);
            prop_assert_eq!(
                chunked::hash_group(&chunk, &key),
                kernels::hash_group(records, &key)
            );
            let reduce = ReduceUdf::from_spec(
                "agg",
                vec![FieldReduce::First, FieldReduce::Min],
            );
            // Records narrower than the spec still reduce identically
            // (missing fields read as Null on both paths).
            prop_assert_eq!(
                chunked::reduce_by_key(&chunk, &key, &reduce),
                kernels::reduce_by_key(records, &key, &reduce)
            );
            for descending in [false, true] {
                prop_assert_eq!(
                    chunked::sort(&chunk, &key, descending).to_records(),
                    kernels::sort(records, &key, descending)
                );
            }
        }
    }

    /// Joins agree with the row kernels: match order is left-major with
    /// right matches in input order, and keys compare with `Value` equality
    /// (Int(1) never matches Float(1.0)).
    #[test]
    fn prop_join_chunk_kernels_match_row_kernels(
        left in int_keyed_batch_strategy(),
        right in batch_strategy(),
    ) {
        let (lc, rc) = (chunk_of(&left), chunk_of(&right));
        let key = KeyUdf::field(0);
        prop_assert_eq!(
            chunked::hash_join(&lc, &rc, &key, &key).to_records(),
            kernels::hash_join(&left, &right, &key, &key)
        );
        prop_assert_eq!(
            chunked::sort_merge_join(&lc, &rc, &key, &key).to_records(),
            kernels::sort_merge_join(&left, &right, &key, &key)
        );
    }

    /// The morsel-parallel fused-pipeline runner equals the row-at-a-time
    /// reference at every parallelism setting (zero-copy slices included).
    #[test]
    fn prop_run_pipeline_matches_row_reference(records in batch_strategy()) {
        let stages = test_stages();
        let reference = chunked::run_stages_rows(&records, &stages).unwrap();
        for p in parallelism_settings() {
            prop_assert_eq!(
                parallel::run_pipeline(&records, &stages, &p).unwrap(),
                reference.clone()
            );
        }
    }
}

/// End to end: a plan whose filter→map→project chain fuses into a
/// `ChunkPipeline` produces the same records as the unfused reference
/// interpreter run, under both schedule modes and several kernel
/// parallelism settings.
#[test]
fn fused_plan_matches_reference_under_all_schedules() {
    let data: Vec<Record> = (0..5000i64)
        .map(|i| {
            if i % 97 == 0 {
                Record::new(vec![Value::Null, Value::Float(f64::NAN)])
            } else if i % 31 == 0 {
                Record::new(vec![Value::Float(-0.0), Value::Int(i)])
            } else {
                Record::new(vec![Value::Int(i % 11), Value::Int(i)])
            }
        })
        .collect();

    let build = || {
        let mut b = PlanBuilder::new();
        let src = b.collection("s", data.clone());
        let f = b.filter(
            src,
            FilterUdf::from_expr("keep", Expr::field(0).is_null().not()).with_selectivity(0.9),
        );
        let m = b.map(
            f,
            MapUdf::from_exprs(
                "calc",
                vec![
                    Expr::field(0).add(Expr::field(1)),
                    Expr::field(1),
                    Expr::field(0),
                ],
            ),
        );
        let p = b.project(m, vec![0, 1]);
        b.collect(p);
        b.build().unwrap()
    };

    // Reference: the unfused plan on the sequential interpreter.
    let reference: Vec<Vec<Record>> = interpreter::run_plan(&build(), &ExecutionContext::new())
        .unwrap()
        .into_values()
        .map(|d| d.records().to_vec())
        .collect();
    assert_eq!(reference.len(), 1);

    // The rewrite pass must actually fuse the chain into one pipeline.
    let fused = apply_rewrites(build()).unwrap();
    assert!(
        fused
            .nodes()
            .iter()
            .any(|n| matches!(n.op, PhysicalOp::ChunkPipeline { .. })),
        "expected a fused pipeline:\n{}",
        fused.explain()
    );

    for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
        for p in parallelism_settings() {
            let ctx = RheemContext::new()
                .with_platform(Arc::new(JavaPlatform::new()))
                .with_schedule_mode(mode)
                .with_kernel_parallelism(p);
            let result = ctx.execute(fused.clone()).unwrap();
            let outputs: Vec<Vec<Record>> = result
                .outputs
                .into_values()
                .map(|d| d.records().to_vec())
                .collect();
            assert_eq!(outputs, reference, "mode {mode:?} diverged");
        }
    }
}
