//! Fault tolerance end to end (§4.2 duty iii, DESIGN.md §9): classified
//! retries with seeded backoff, per-platform circuit breakers, and
//! failover re-planning around injected platform outages.
//!
//! The headline contract: as long as at least one registered platform can
//! run every pending operator (the java platform supports everything), a
//! job survives any combination of injected outages with outputs
//! *identical* to a fault-free run — in both schedule modes.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::optimizer::enumerate::split_into_atoms;
use rheem_core::{
    BackoffPolicy, BreakerPolicy, ExecutionPlan, FailoverEvent, FailureInjector, FaultPolicy,
    InjectedKind, JobResult, NodeId, Observability, ProgressListener, RheemError, ScheduleMode,
    VirtualSleeper,
};
use rheem_platforms::test_context;

/// A shared source fanning out to three hand-pinned branches across three
/// platforms: the java atom (source + reduce branch) is wave 0, the
/// sparklike map branch and mapreduce filter branch form wave 1.
fn fanout_exec_plan() -> ExecutionPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..200i64).map(|i| rec![i % 10, i]).collect());
    let doubled = b.map(
        src,
        MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
    );
    b.collect(doubled);
    let even = b.filter(src, FilterUdf::new("even", |r| r.int(1).unwrap() % 2 == 0));
    b.collect(even);
    let summed = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(10.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(summed);
    let physical = b.build().unwrap();
    let assignments: Vec<String> = [
        "java",      // source
        "sparklike", // map branch
        "sparklike",
        "mapreduce", // filter branch
        "mapreduce",
        "java", // reduce branch (merges with the source atom)
        "java",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let atoms = split_into_atoms(&physical, &assignments);
    ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates: vec![],
        enumeration: Default::default(),
    }
}

/// A one-atom plan on the java platform (atom id 0).
fn tiny_plan() -> rheem_core::PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..8i64).map(|i| rec![i]).collect());
    b.collect(src);
    b.build().unwrap()
}

/// Outputs in canonical form: keyed by node id, records sorted within each
/// output. Grouping operators emit bags whose record order depends on the
/// platform's partitioning (sparklike hash-partitions by key, java keeps
/// first-appearance order), so a failover that moves a reduce across
/// platforms legitimately permutes — but never changes — the bag.
fn sorted_outputs(result: &JobResult) -> Vec<(NodeId, Vec<Record>)> {
    let mut out: Vec<(NodeId, Vec<Record>)> = result
        .outputs
        .iter()
        .map(|(n, d)| {
            let mut records = d.records().to_vec();
            records.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            (*n, records)
        })
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Records the failure-related listener callbacks a job emits.
#[derive(Default)]
struct FaultRecorder {
    starts: Mutex<Vec<usize>>,
    retries: Mutex<Vec<(usize, usize)>>,
    failed: Mutex<Vec<(usize, String, usize)>>,
    failovers: Mutex<Vec<FailoverEvent>>,
}

impl ProgressListener for FaultRecorder {
    fn on_atom_start(&self, atom_id: usize, _platform: &str) {
        self.starts.lock().push(atom_id);
    }
    fn on_atom_retry(&self, atom_id: usize, attempt: usize, _error: &RheemError) {
        self.retries.lock().push((atom_id, attempt));
    }
    fn on_atom_failed(&self, atom_id: usize, error: &RheemError, suppressed_retries: usize) {
        self.failed
            .lock()
            .push((atom_id, error.to_string(), suppressed_retries));
    }
    fn on_failover(&self, event: &FailoverEvent) {
        self.failovers.lock().push(event.clone());
    }
}

// ---------------------------------------------------------------------------
// Failover re-planning
// ---------------------------------------------------------------------------

#[test]
fn downed_platform_fails_over_and_preserves_outputs_in_both_modes() {
    let exec = fanout_exec_plan();
    let baseline = test_context().execute_plan(&exec).unwrap();

    for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
        let injector = Arc::new(FailureInjector::platform_down("sparklike"));
        let recorder = Arc::new(FaultRecorder::default());
        let observe = Arc::new(Observability::new());
        let ctx = test_context()
            .with_schedule_mode(mode)
            .with_max_parallel_atoms(4)
            .with_max_retries(1)
            .with_fault_policy(FaultPolicy::instant())
            .with_failure_injector(injector)
            .with_observability(observe.clone())
            .with_progress_listener(recorder.clone());
        let result = ctx.execute_plan(&exec).unwrap();

        assert_eq!(result.stats.failovers, 1, "{mode:?}");
        assert_eq!(
            sorted_outputs(&result),
            sorted_outputs(&baseline),
            "{mode:?}: failover must not change outputs"
        );
        // Committed atoms are never re-planned: every reported atom ran
        // exactly once, and nothing committed on the failed platform.
        let mut ids: Vec<usize> = result.stats.atoms.iter().map(|a| a.atom_id).collect();
        ids.sort_unstable();
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped, "{mode:?}: an atom committed twice");
        assert!(result.stats.atoms.iter().all(|a| a.platform != "sparklike"));
        let wave0 = result.stats.atoms.iter().find(|a| a.atom_id == 0).unwrap();
        assert_eq!((wave0.wave, wave0.platform.as_str()), (0, "java"));

        let effective = result
            .effective_plan
            .expect("failover yields an effective plan");
        assert!(effective.atoms.iter().all(|a| a.platform != "sparklike"));

        let events = recorder.failovers.lock();
        assert_eq!(events.len(), 1, "{mode:?}");
        assert_eq!(events[0].failed_platform, "sparklike");
        assert!(events[0].excluded.contains(&"sparklike".to_string()));
        assert!(events[0].new_atoms >= 1);

        // The abandoned platform's breaker is forced open and mirrored.
        assert!(ctx.platform_health().unwrap().is_open("sparklike"));
        assert_eq!(observe.metrics().counter_value("executor.failovers"), 1);
        assert_eq!(
            observe
                .metrics()
                .gauge_value("platform.sparklike.breaker_open"),
            1
        );
        assert!(
            exec.explain_observed(&result.stats).contains("1 failovers"),
            "explain_observed must surface the failover"
        );
    }
}

#[test]
fn jobs_fail_cleanly_when_every_alternative_is_down() {
    // Both non-java platforms are down AND the java platform is down:
    // no surviving mapping for the pending suffix, so the job must fail
    // with the original execution error instead of looping.
    let injector = Arc::new(FailureInjector::platform_down("sparklike"));
    injector.set_down("mapreduce");
    injector.set_down("java");
    injector.set_down("relational");
    let ctx = test_context()
        .with_max_retries(1)
        .with_fault_policy(FaultPolicy::instant())
        .with_failure_injector(injector);
    let err = ctx.execute_plan(&fanout_exec_plan()).unwrap_err();
    assert!(matches!(err, RheemError::Execution { .. }), "{err}");
}

#[test]
fn expired_deadlines_are_not_failover_eligible() {
    let injector = Arc::new(FailureInjector::platform_down("sparklike"));
    let ctx = test_context()
        .with_timeout(Duration::ZERO)
        .with_fault_policy(FaultPolicy::instant())
        .with_failure_injector(injector);
    std::thread::sleep(Duration::from_millis(2));
    let err = ctx.execute_plan(&fanout_exec_plan()).unwrap_err();
    assert!(matches!(err, RheemError::BudgetExceeded(_)), "{err}");
}

// ---------------------------------------------------------------------------
// Error taxonomy: permanent errors fail fast
// ---------------------------------------------------------------------------

#[test]
fn permanent_errors_fail_fast_with_exactly_one_attempt() {
    let injector = Arc::new(FailureInjector::none());
    injector.fail_atom_with(0, usize::MAX, InjectedKind::Permanent);
    let recorder = Arc::new(FaultRecorder::default());
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_max_retries(5)
        .with_fault_policy(FaultPolicy::instant())
        .with_failure_injector(injector)
        .with_progress_listener(recorder.clone());
    let err = ctx.execute(tiny_plan()).unwrap_err();

    assert!(matches!(err, RheemError::InvalidPlan(_)), "{err}");
    assert!(!err.is_retryable());
    assert_eq!(recorder.starts.lock().len(), 1, "exactly one attempt");
    assert!(
        recorder.retries.lock().is_empty(),
        "permanent errors must not burn retry budget"
    );
    let failed = recorder.failed.lock();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].2, 5, "the whole unused budget is suppressed");
    assert!(
        recorder.failovers.lock().is_empty(),
        "permanent errors are not failover-eligible"
    );
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_after_consecutive_failures_and_fails_fast_across_jobs() {
    let injector = Arc::new(FailureInjector::platform_down("java"));
    let recorder = Arc::new(FaultRecorder::default());
    let policy = FaultPolicy {
        breaker: BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_secs(3600),
        },
        failover: false,
        ..FaultPolicy::instant()
    };
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_max_retries(10)
        .with_fault_policy(policy)
        .with_failure_injector(injector)
        .with_progress_listener(recorder.clone());

    let err = ctx.execute(tiny_plan()).unwrap_err();
    assert!(matches!(err, RheemError::Execution { .. }), "{err}");
    // The third consecutive failure opened the breaker and cut the retry
    // loop short: 2 transient retries spent, the remaining 8 suppressed.
    assert_eq!(recorder.retries.lock().len(), 2);
    assert_eq!(recorder.failed.lock().last().unwrap().2, 8);
    assert!(ctx.platform_health().unwrap().is_open("java"));

    // The next job is rejected at the gate without any attempt.
    let starts_before = recorder.starts.lock().len();
    let err = ctx.execute(tiny_plan()).unwrap_err();
    assert!(
        matches!(err, RheemError::PlatformUnavailable { .. }),
        "{err}"
    );
    assert_eq!(err.platform(), Some("java"));
    assert_eq!(recorder.starts.lock().len(), starts_before);
}

#[test]
fn half_open_probe_recovers_a_restored_platform() {
    let injector = Arc::new(FailureInjector::platform_down("java"));
    let policy = FaultPolicy {
        breaker: BreakerPolicy {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        },
        failover: false,
        ..FaultPolicy::instant()
    };
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_max_retries(3)
        .with_fault_policy(policy)
        .with_failure_injector(injector.clone());

    let err = ctx.execute(tiny_plan()).unwrap_err();
    assert!(matches!(err, RheemError::Execution { .. }), "{err}");
    assert!(ctx.platform_health().unwrap().is_open("java"));

    // The platform comes back; zero cooldown admits the half-open probe
    // immediately, and its success closes the breaker.
    injector.restore("java");
    let result = ctx.execute(tiny_plan()).unwrap();
    assert!(!ctx.platform_health().unwrap().is_open("java"));
    assert_eq!(result.stats.atoms[0].attempts, 1);
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

#[test]
fn retry_backoff_is_seeded_exponential_on_the_virtual_clock() {
    let injector = Arc::new(FailureInjector::none());
    injector.fail_atom(0, 3);
    let sleeper = Arc::new(VirtualSleeper::new());
    let backoff = BackoffPolicy::default().with_seed(99);
    let policy = FaultPolicy {
        backoff,
        breaker: BreakerPolicy {
            failure_threshold: 100,
            cooldown: Duration::ZERO,
        },
        failover: false,
        ..FaultPolicy::instant()
    };
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_max_retries(5)
        .with_fault_policy(policy)
        .with_sleeper(sleeper.clone())
        .with_failure_injector(injector);
    let result = ctx.execute(tiny_plan()).unwrap();

    assert_eq!(result.stats.retries, 3);
    // The executor slept exactly the policy's deterministic delays — on
    // the virtual clock, so the test itself never blocks.
    let expected: Vec<Duration> = (1..=3).map(|k| backoff.delay(0, k)).collect();
    assert_eq!(sleeper.naps(), expected);
    assert!(expected.iter().all(|d| *d > Duration::ZERO));
}

// ---------------------------------------------------------------------------
// Schedule independence
// ---------------------------------------------------------------------------

#[test]
fn probabilistic_injection_yields_identical_runs_in_both_modes() {
    let exec = fanout_exec_plan();
    let run = |mode: ScheduleMode| {
        let injector = Arc::new(FailureInjector::none());
        injector.probabilistic("sparklike", 0.7, 11);
        injector.probabilistic("mapreduce", 0.7, 12);
        // No breaker interference, no failover: pure retry behavior,
        // which must be a function of (platform, atom id, attempt) only.
        let policy = FaultPolicy {
            breaker: BreakerPolicy {
                failure_threshold: 1000,
                cooldown: Duration::ZERO,
            },
            failover: false,
            ..FaultPolicy::instant()
        };
        test_context()
            .with_schedule_mode(mode)
            .with_max_parallel_atoms(4)
            .with_max_retries(20)
            .with_fault_policy(policy)
            .with_failure_injector(injector)
            .execute_plan(&exec)
            .unwrap()
    };
    let seq = run(ScheduleMode::Sequential);
    let par = run(ScheduleMode::Parallel);

    assert_eq!(seq.stats.retries, par.stats.retries);
    assert!(
        seq.stats.retries > 0,
        "chaos at p=0.7 must hit at least once"
    );
    let attempts = |r: &JobResult| {
        let mut v: Vec<(usize, usize)> = r
            .stats
            .atoms
            .iter()
            .map(|a| (a.atom_id, a.attempts))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(attempts(&seq), attempts(&par));
    assert_eq!(sorted_outputs(&seq), sorted_outputs(&par));
}

// ---------------------------------------------------------------------------
// Property: random plans + random outages never change outputs
// ---------------------------------------------------------------------------

fn prop_plan(shape: u8, n: i64, modulus: i64) -> rheem_core::PhysicalPlan {
    match shape % 3 {
        0 => {
            // Shared source fanning out into an aggregate and a filter.
            let mut b = PlanBuilder::new();
            let src = b.collection("s", (0..n).map(|i| rec![i % modulus, i]).collect());
            let agg = b.reduce_by_key(
                src,
                KeyUdf::field(0).with_distinct_keys(modulus as f64),
                ReduceUdf::new("sum", |a, x| {
                    rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
                }),
            );
            b.collect(agg);
            let odd = b.filter(src, FilterUdf::new("odd", |r| r.int(1).unwrap() % 2 == 1));
            b.collect(odd);
            b.build().unwrap()
        }
        1 => {
            // Two sources joined on a shared key space.
            let mut b = PlanBuilder::new();
            let l = b.collection("l", (0..n).map(|i| rec![i % modulus, i]).collect());
            let r = b.collection("r", (0..n / 2 + 1).map(|i| rec![i % modulus, -i]).collect());
            let j = b.hash_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
            b.collect(j);
            b.build().unwrap()
        }
        _ => {
            // A map → aggregate chain.
            let mut b = PlanBuilder::new();
            let src = b.collection("s", (0..n).map(|i| rec![i % modulus, i]).collect());
            let mapped = b.map(
                src,
                MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
            );
            let agg = b.reduce_by_key(
                mapped,
                KeyUdf::field(0).with_distinct_keys(modulus as f64),
                ReduceUdf::new("max", |a, x| {
                    rec![a.int(0).unwrap(), a.int(1).unwrap().max(x.int(1).unwrap())]
                }),
            );
            b.collect(agg);
            b.build().unwrap()
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig {
        cases: 6,
        ..proptest::prelude::ProptestConfig::default()
    })]

    /// Whenever at least one platform mapping per operator survives the
    /// injected outage (the java platform is never downed and supports
    /// every operator), a faulty run's outputs are identical to the
    /// fault-free run — in both schedule modes.
    #[test]
    fn injected_outages_never_change_outputs(
        shape in 0u8..3,
        n in 1i64..150,
        modulus in 1i64..10,
        downed_idx in 0usize..3,
        with_chaos in proptest::strategy::Just(true),
        seed in 0u64..1_000,
    ) {
        let plan = prop_plan(shape, n, modulus);
        let mut opt_ctx = test_context();
        opt_ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::free();
        let exec = opt_ctx.optimize(plan).unwrap();
        let baseline = test_context().execute_plan(&exec).unwrap();

        // One non-java platform goes fully down; another (also non-java)
        // misbehaves probabilistically. Java always survives.
        let downed = ["sparklike", "mapreduce", "relational"][downed_idx];
        let chaotic = ["mapreduce", "relational", "sparklike"][downed_idx];

        for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
            let injector = Arc::new(FailureInjector::platform_down(downed));
            if with_chaos {
                injector.probabilistic(chaotic, 0.3, seed);
            }
            let ctx = test_context()
                .with_schedule_mode(mode)
                .with_max_parallel_atoms(4)
                .with_max_retries(2)
                .with_fault_policy(FaultPolicy {
                    max_failovers: 4,
                    ..FaultPolicy::instant()
                })
                .with_failure_injector(injector);
            let result = ctx.execute_plan(&exec);
            proptest::prop_assert!(
                result.is_ok(),
                "{:?} with {} down must fail over, got {:?}",
                mode,
                downed,
                result.err()
            );
            proptest::prop_assert_eq!(
                sorted_outputs(&result.unwrap()),
                sorted_outputs(&baseline)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Golden snapshot of a failover re-plan
// ---------------------------------------------------------------------------

/// Compare `actual` against `tests/golden/<name>`; rewrite the file
/// instead when the `BLESS` environment variable is set.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS=1 cargo test --test fault_tolerance",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{} drifted; if the change is intentional, regenerate with \
         BLESS=1 cargo test --test fault_tolerance",
        path.display()
    );
}

#[test]
fn golden_failover_explain() {
    // Sequential mode keeps the commit order fully deterministic, so the
    // failover event and the effective plan can be pinned byte-for-byte.
    let exec = fanout_exec_plan();
    let injector = Arc::new(FailureInjector::platform_down("sparklike"));
    let recorder = Arc::new(FaultRecorder::default());
    let ctx = test_context()
        .with_schedule_mode(ScheduleMode::Sequential)
        .with_max_retries(1)
        .with_fault_policy(FaultPolicy::instant())
        .with_failure_injector(injector)
        .with_progress_listener(recorder.clone());
    let result = ctx.execute_plan(&exec).unwrap();
    assert_eq!(result.stats.failovers, 1);

    let mut snapshot = String::new();
    for ev in recorder.failovers.lock().iter() {
        snapshot.push_str(&format!(
            "failover {}: atom {} on {} excluded [{}] replaced {} pending atoms with {}\n",
            ev.index,
            ev.atom_id,
            ev.failed_platform,
            ev.excluded.join(", "),
            ev.replaced_atoms,
            ev.new_atoms,
        ));
    }
    snapshot.push('\n');
    let effective = result
        .effective_plan
        .expect("failover yields an effective plan");
    snapshot.push_str(&effective.explain());
    assert_golden("explain_failover.txt", &snapshot);
}

// ---------------------------------------------------------------------------
// Cancellation at the final-wave boundary
// ---------------------------------------------------------------------------

/// A cancel that fires in the gap *after* the final wave — e.g. a
/// tenant-wide cancel racing job completion, after every earlier
/// checkpoint has already passed — must surface as `Cancelled`, not be
/// committed as a successful result (REVIEW: the executor re-checks the
/// token one last time before constructing the `JobResult`).
#[test]
fn cancel_after_the_final_wave_is_not_committed_as_success() {
    use rheem_core::{CancelReason, CancelToken, WaveGate};

    struct CancelAfterWave(CancelToken);
    impl WaveGate for CancelAfterWave {
        fn before_wave(&self, _wave_index: usize, _atoms: usize) {}
        fn after_wave(&self, _wave_index: usize) {
            self.0.cancel(CancelReason::Explicit);
        }
    }

    let token = CancelToken::new();
    let ctx = test_context()
        .with_cancel_token(token.clone())
        .with_wave_gate(Arc::new(CancelAfterWave(token)));
    let err = ctx.execute(tiny_plan()).unwrap_err();
    assert!(matches!(err, RheemError::Cancelled { .. }), "{err:?}");
}
