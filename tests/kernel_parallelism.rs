//! Morsel-driven kernel parallelism (DESIGN.md §10): every parallel
//! kernel must be **byte-identical** to its sequential twin at any thread
//! count and any morsel size, and whole jobs must replay identically —
//! same outputs, same canonical span tree — across `KernelParallelism`
//! settings in both schedule modes.
//!
//! The property tests sweep adversarial knobs (`threads ∈ {1,2,7,8}`,
//! `morsel_size ∈ {1,3,huge}`) over random batches with Null keys, NaN
//! keys, skewed key domains, and empty inputs.

use std::sync::Arc;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::kernels::{self, parallel};
use rheem_core::{canonical_tree, KernelParallelism, Observability, RingBufferSink, ScheduleMode};
use rheem_platforms::test_context;

/// The knob sweep required by the determinism contract: thread counts
/// around the powers of two plus an odd one, and morsel sizes that force
/// one-record morsels, ragged splits, and the everything-in-one-morsel
/// degenerate case.
fn knob_sweep() -> Vec<KernelParallelism> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 7, 8] {
        for morsel in [1usize, 3, 1 << 20] {
            out.push(
                KernelParallelism::sequential()
                    .with_threads(threads)
                    .with_morsel_size(morsel)
                    .with_min_rows(0),
            );
        }
    }
    out
}

/// Keys spanning every comparison edge case: `Null`, `NaN`, signed zeros,
/// a deliberately skewed tiny integer domain, and short strings.
fn key_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(0.0)),
        Just(Value::Float(-0.0)),
        (0i64..4).prop_map(Value::Int), // skew: hot tiny domain
        (0i64..4).prop_map(Value::Int), // doubled arm keeps the domain hot
        (-100i64..100).prop_map(Value::Int),
        (0usize..4).prop_map(|i| Value::Str(["", "a", "b", "ab"][i].into())),
    ]
}

/// `[key, payload]` records; payloads are small so reduction sums stay
/// far from overflow.
fn batch_strategy(max_len: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (key_strategy(), 0i64..1000).prop_map(|(k, p)| rec![k, p]),
        0..max_len,
    )
}

fn sum_reduce() -> ReduceUdf {
    ReduceUdf::new("sum", |a, x| {
        Record::new(vec![
            a.get(0).unwrap().clone(),
            Value::Int(a.int(1).unwrap() + x.int(1).unwrap()),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Embarrassingly-parallel kernels: morsel split + ordered concat is
    /// invisible at every thread count and morsel size.
    #[test]
    fn prop_morsel_kernels_match_sequential(batch in batch_strategy(120)) {
        let map_udf = MapUdf::new("x3", |r| {
            Record::new(vec![r.get(0).unwrap().clone(), Value::Int(r.int(1).unwrap() * 3)])
        });
        let fm_udf = FlatMapUdf::new("dup-evens", |r| {
            let n = r.int(1).unwrap();
            if n % 2 == 0 { vec![r.clone(), r.clone()] } else { vec![] }
        });
        let filter_udf = FilterUdf::new("small", |r| r.int(1).unwrap() < 500);
        for p in knob_sweep() {
            prop_assert_eq!(parallel::map(&batch, &map_udf, &p), kernels::map(&batch, &map_udf));
            prop_assert_eq!(
                parallel::flat_map(&batch, &fm_udf, &p),
                kernels::flat_map(&batch, &fm_udf)
            );
            prop_assert_eq!(
                parallel::filter(&batch, &filter_udf, &p),
                kernels::filter(&batch, &filter_udf)
            );
            prop_assert_eq!(
                parallel::project(&batch, &[1, 0], &p).unwrap(),
                kernels::project(&batch, &[1, 0]).unwrap()
            );
            // Error parity: the first failing morsel reports the same
            // error the sequential scan would.
            if !batch.is_empty() {
                prop_assert!(parallel::project(&batch, &[7], &p).is_err());
            }
        }
    }

    /// Two-phase grouping kernels: local phase + ordered merge equals the
    /// single-threaded run, including Null/NaN key handling.
    #[test]
    fn prop_group_kernels_match_sequential(batch in batch_strategy(150)) {
        let key = KeyUdf::field(0);
        let reduce = sum_reduce();
        for p in knob_sweep() {
            prop_assert_eq!(
                parallel::hash_group(&batch, &key, &p),
                kernels::hash_group(&batch, &key)
            );
            prop_assert_eq!(
                parallel::sort_group(&batch, &key, &p),
                kernels::sort_group(&batch, &key)
            );
            prop_assert_eq!(
                parallel::reduce_by_key(&batch, &key, &reduce, &p),
                kernels::reduce_by_key(&batch, &key, &reduce)
            );
            prop_assert_eq!(
                parallel::sort(&batch, &key, false, &p),
                kernels::sort(&batch, &key, false)
            );
            prop_assert_eq!(
                parallel::sort(&batch, &key, true, &p),
                kernels::sort(&batch, &key, true)
            );
        }
    }

    /// Join kernels: partitioned build / parallel probe and partition
    /// sort + merge preserve the sequential output order exactly.
    #[test]
    fn prop_join_kernels_match_sequential(
        left in batch_strategy(90),
        right in batch_strategy(90),
    ) {
        let lk = KeyUdf::field(0);
        let rk = KeyUdf::field(0);
        for p in knob_sweep() {
            prop_assert_eq!(
                parallel::hash_join(&left, &right, &lk, &rk, &p),
                kernels::hash_join(&left, &right, &lk, &rk)
            );
            prop_assert_eq!(
                parallel::sort_merge_join(&left, &right, &lk, &rk, &p),
                kernels::sort_merge_join(&left, &right, &lk, &rk)
            );
        }
    }
}

/// Empty inputs take the sequential fallback at every knob setting.
#[test]
fn empty_inputs_match_sequential() {
    let empty: Vec<Record> = vec![];
    let key = KeyUdf::field(0);
    let reduce = sum_reduce();
    for p in knob_sweep() {
        assert!(parallel::filter(&empty, &FilterUdf::new("t", |_| true), &p).is_empty());
        assert!(parallel::hash_group(&empty, &key, &p).is_empty());
        assert!(parallel::reduce_by_key(&empty, &key, &reduce, &p).is_empty());
        assert!(parallel::hash_join(&empty, &empty, &key, &key, &p).is_empty());
        assert!(parallel::sort_merge_join(&empty, &empty, &key, &key, &p).is_empty());
        assert!(parallel::sort(&empty, &key, false, &p).is_empty());
    }
}

/// A multi-operator job exercising maps, filters, grouping, reduction,
/// both joins, and a sort — everything the morsel layer touches.
fn workload_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection(
        "s",
        (0..400i64).map(|i| rec![i % 13, i]).collect::<Vec<_>>(),
    );
    let mapped = b.map(
        src,
        MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
    );
    let filtered = b.filter(
        mapped,
        FilterUdf::new("keep", |r| r.int(1).unwrap() % 3 != 0),
    );
    let summed = b.reduce_by_key(
        filtered,
        KeyUdf::field(0).with_distinct_keys(13.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(summed);
    let dims = b.collection(
        "dims",
        (0..13i64).map(|i| rec![i, i * 100]).collect::<Vec<_>>(),
    );
    let joined = b.hash_join(filtered, dims, KeyUdf::field(0), KeyUdf::field(0));
    b.collect(joined);
    let merged = b.sort_merge_join(summed, dims, KeyUdf::field(0), KeyUdf::field(0));
    let sorted = b.sort(merged, KeyUdf::field(1), true);
    b.collect(sorted);
    let grouped = b.group_by(
        filtered,
        KeyUdf::field(0).with_distinct_keys(13.0),
        GroupMapUdf::new("count", |k, members| {
            vec![Record::new(vec![
                k.clone(),
                Value::Int(members.len() as i64),
            ])]
        }),
    );
    b.collect(grouped);
    b.build().unwrap()
}

type Replay = (Vec<(rheem_core::NodeId, Vec<Record>)>, String, u64);

/// Run the workload under one `(KernelParallelism, ScheduleMode)` pair;
/// return its outputs (keyed, record order preserved), the canonical span
/// tree, and the `kernel.parallel.invocations` counter.
fn replay(p: KernelParallelism, mode: ScheduleMode) -> Replay {
    let ring = Arc::new(RingBufferSink::new(4096));
    let observe = Arc::new(Observability::new().with_sink(ring.clone()));
    let ctx = test_context()
        .with_schedule_mode(mode)
        .with_max_parallel_atoms(2)
        .with_kernel_parallelism(p)
        .with_observability(observe.clone());
    let result = ctx.execute(workload_plan()).unwrap();
    let mut outputs: Vec<(rheem_core::NodeId, Vec<Record>)> = result
        .outputs
        .iter()
        .map(|(n, d)| (*n, d.records().to_vec()))
        .collect();
    outputs.sort_by_key(|(n, _)| *n);
    let invocations = observe
        .metrics()
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "kernel.parallel.invocations")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    (outputs, canonical_tree(&ring.snapshot()), invocations)
}

/// The replay contract: outputs and canonical traces are identical across
/// every `KernelParallelism` setting in both schedule modes — morsel
/// execution is observable only through the (non-canonical) counters.
#[test]
fn job_outputs_and_traces_are_parallelism_invariant() {
    let settings = [
        KernelParallelism::sequential(),
        KernelParallelism::sequential()
            .with_threads(2)
            .with_morsel_size(7)
            .with_min_rows(1),
        KernelParallelism::sequential()
            .with_threads(8)
            .with_morsel_size(3)
            .with_min_rows(1),
    ];
    let (base_out, base_tree, base_inv) = replay(settings[0], ScheduleMode::Sequential);
    assert_eq!(base_inv, 0, "threads=1 must never take the parallel path");
    let mut saw_parallel = false;
    for p in settings {
        for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
            let (out, tree, inv) = replay(p, mode);
            assert_eq!(out, base_out, "outputs drifted under {p:?} / {mode:?}");
            assert_eq!(tree, base_tree, "trace drifted under {p:?} / {mode:?}");
            saw_parallel |= inv > 0;
        }
    }
    assert!(
        saw_parallel,
        "the 8-thread setting should exercise the morsel path"
    );
}

/// The `kernel.parallel.*` counters replay identically across schedule
/// modes (the budget split is mode-invariant), so they are part of the
/// deterministic-counter contract, not a scheduling artifact.
#[test]
fn parallel_counters_are_schedule_invariant() {
    let p = KernelParallelism::sequential()
        .with_threads(8)
        .with_morsel_size(16)
        .with_min_rows(1);
    let (_, _, seq_inv) = replay(p, ScheduleMode::Sequential);
    let (_, _, par_inv) = replay(p, ScheduleMode::Parallel);
    assert_eq!(seq_inv, par_inv);
}
