//! Property-based invariants of the multi-platform optimizer: for random
//! DAG-shaped plans, the execution plan must (a) assign every node a
//! registered platform that supports its operator, (b) partition the nodes
//! into task atoms exactly, (c) schedule atoms in a dependency-respecting
//! order with same-platform nodes per atom, and (d) execute to the same
//! bag of records as the reference interpreter.

use std::collections::HashSet;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::plan::{NodeId, PhysicalPlan};
use rheem_core::ExecutionPlan;
use rheem_platforms::test_context;

/// Operations of the random plan generator. Unary ops apply to the newest
/// node; binary ops combine the newest node with an older one picked by
/// `pick % stack.len()`.
#[derive(Clone, Debug)]
enum GenOp {
    Source(u8),
    MapInc,
    FilterHalf,
    GroupCount,
    Sort,
    Distinct,
    Union(u8),
    Join(u8),
    Cross(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..4).prop_map(GenOp::Source),
        Just(GenOp::MapInc),
        Just(GenOp::FilterHalf),
        Just(GenOp::GroupCount),
        Just(GenOp::Sort),
        Just(GenOp::Distinct),
        any::<u8>().prop_map(GenOp::Union),
        any::<u8>().prop_map(GenOp::Join),
        any::<u8>().prop_map(GenOp::Cross),
    ]
}

/// Build a valid plan from the op script; always produces ≥1 sink.
fn build_plan(ops: &[GenOp]) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut stack: Vec<NodeId> =
        vec![b.collection("seed", (0..30i64).map(|i| rec![i % 7, 1i64]).collect())];
    for op in ops {
        let top = *stack.last().expect("non-empty");
        match op {
            GenOp::Source(k) => {
                let n = 10 + (*k as i64) * 5;
                stack.push(b.collection(
                    format!("src{k}"),
                    (0..n).map(|i| rec![i % 5, 1i64]).collect(),
                ));
            }
            GenOp::MapInc => {
                let node = b.map(
                    top,
                    MapUdf::new("inc", |r| {
                        rec![r.int(0).unwrap().wrapping_add(1), r.int(1).unwrap_or(1)]
                    }),
                );
                stack.push(node);
            }
            GenOp::FilterHalf => {
                let node = b.filter(top, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
                stack.push(node);
            }
            GenOp::GroupCount => {
                let node = b.group_by(
                    top,
                    KeyUdf::field(0),
                    GroupMapUdf::new("count", |k, members| {
                        vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
                    }),
                );
                stack.push(node);
            }
            GenOp::Sort => {
                let node = b.sort(top, KeyUdf::field(0), false);
                stack.push(node);
            }
            GenOp::Distinct => {
                let node = b.distinct(top);
                stack.push(node);
            }
            GenOp::Union(pick) => {
                let other = stack[*pick as usize % stack.len()];
                let node = b.union(top, other);
                stack.push(node);
            }
            GenOp::Join(pick) => {
                let other = stack[*pick as usize % stack.len()];
                let node = b.hash_join(top, other, KeyUdf::field(0), KeyUdf::field(0));
                stack.push(node);
            }
            GenOp::Cross(pick) => {
                let other = stack[*pick as usize % stack.len()];
                // Keep the cross product tiny: limit both sides first —
                // sorted first, because a prefix of an *unordered* bag is
                // not platform-independent.
                let ls = b.sort(top, KeyUdf::field(0), false);
                let l = b.limit(ls, 8);
                let rs = b.sort(other, KeyUdf::field(0), false);
                let r = b.limit(rs, 8);
                let node = b.cross_product(l, r);
                stack.push(node);
            }
        }
    }
    // Sink the top of the stack plus one random-ish earlier node.
    let top = *stack.last().expect("non-empty");
    b.collect(top);
    if stack.len() > 2 {
        b.collect(stack[stack.len() / 2]);
    }
    b.build().expect("generated plan is structurally valid")
}

fn check_invariants(exec: &ExecutionPlan, ctx: &RheemContext) {
    let plan = &exec.physical;

    // (a) Every node has a registered, supporting platform.
    assert_eq!(exec.assignments.len(), plan.len());
    for node in plan.nodes() {
        let name = &exec.assignments[node.id.0];
        let platform = ctx
            .platforms()
            .get(name)
            .unwrap_or_else(|_| panic!("assignment to unregistered platform {name}"));
        assert!(
            platform.supports(&node.op),
            "platform {name} does not support {}",
            node.op.name()
        );
    }

    // (b) Atoms partition the node set exactly.
    let mut seen: HashSet<NodeId> = HashSet::new();
    for atom in &exec.atoms {
        for &n in &atom.nodes {
            assert!(seen.insert(n), "node {n} appears in two atoms");
        }
    }
    assert_eq!(seen.len(), plan.len(), "atoms must cover every node");

    // (c) Same platform within an atom; schedule order respects deps.
    let atom_of = exec.atom_of();
    for atom in &exec.atoms {
        for &n in &atom.nodes {
            assert_eq!(exec.assignments[n.0], atom.platform);
        }
        for input in &atom.inputs {
            let producer_atom = atom_of[&input.producer];
            assert!(
                producer_atom < atom.id,
                "atom {} consumes node {} from a later atom {}",
                atom.id,
                input.producer,
                producer_atom
            );
        }
    }

    // (d) Cost is a sane number.
    assert!(exec.estimated_cost.is_finite() && exec.estimated_cost >= 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn prop_execution_plans_are_well_formed_and_correct(
        ops in proptest::collection::vec(gen_op(), 0..10),
    ) {
        let plan = build_plan(&ops);
        // Rewrites off so the reference runs the *same* plan shape.
        let mut ctx = test_context();
        let optimizer = std::mem::take(ctx.optimizer_mut());
        *ctx.optimizer_mut() = optimizer.without_rewrites();

        let exec = ctx.optimize(plan.clone()).expect("optimizes");
        check_invariants(&exec, &ctx);

        // Execution agrees with the reference interpreter (bag semantics).
        let reference = rheem_core::interpreter::run_plan(
            &plan,
            &rheem_core::ExecutionContext::new(),
        )
        .expect("reference runs");
        let result = ctx.execute_plan(&exec).expect("executes");
        let norm = |outs: std::collections::HashMap<NodeId, Dataset>| {
            let mut bags: Vec<Vec<Record>> = outs
                .into_values()
                .map(|d| {
                    let mut v = d.records().to_vec();
                    v.sort();
                    v
                })
                .collect();
            bags.sort();
            bags
        };
        prop_assert_eq!(norm(result.outputs), norm(reference));
    }

    #[test]
    fn prop_forced_platforms_agree_with_free_choice(
        ops in proptest::collection::vec(gen_op(), 0..8),
    ) {
        let plan = build_plan(&ops);
        let free = test_context();
        let free_result = free.execute(plan.clone()).expect("free choice runs");
        let forced = test_context().force_platform("sparklike");
        let forced_result = forced.execute(plan).expect("forced runs");
        let norm = |outs: std::collections::HashMap<NodeId, Dataset>| {
            let mut bags: Vec<Vec<Record>> = outs
                .into_values()
                .map(|d| {
                    let mut v = d.records().to_vec();
                    v.sort();
                    v
                })
                .collect();
            bags.sort();
            bags
        };
        prop_assert_eq!(norm(free_result.outputs), norm(forced_result.outputs));
    }
}

// ------------------------------------------------- cost-accounting gates

use rheem_core::{assignment_cost, EnumerationPath};

/// Canonical cost of an execution plan's own assignment, priced with the
/// same channelized movement model `optimize` uses.
fn canonical_cost(ctx: &RheemContext, exec: &ExecutionPlan) -> f64 {
    let opt = ctx.optimizer();
    let movement = opt.movement.channelized(ctx.platforms());
    assignment_cost(
        &exec.physical,
        &exec.assignments,
        ctx.platforms(),
        &opt.estimator,
        &movement,
        &opt.calibration,
    )
    .expect("assignment prices")
}

fn no_rewrite_context() -> RheemContext {
    let mut ctx = test_context();
    let optimizer = std::mem::take(ctx.optimizer_mut());
    *ctx.optimizer_mut() = optimizer.without_rewrites();
    ctx
}

/// A diamond: the filter output is consumed by both the group-by and the
/// union, so its whole upstream prefix is a shared sub-DAG.
fn diamond_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..120i64).map(|i| rec![i % 9, 1i64]).collect());
    let m = b.map(
        src,
        MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1, 1i64]),
    );
    let f = b.filter(m, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
    let g = b.group_by(
        f,
        KeyUdf::field(0),
        GroupMapUdf::new("count", |k, members| {
            vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
        }),
    );
    let u = b.union(g, f);
    b.collect(u);
    b.build().unwrap()
}

/// KNOWN DIVERGENCE, documented and gated here: the greedy DP accumulates
/// each node's *subtree* cost into every consumer, so a shared sub-DAG is
/// counted once per consumer and the reported `estimated_cost` exceeds the
/// canonical [`assignment_cost`] of the very assignment it returns. The
/// chosen assignment is still valid — only the reported total is inflated
/// on diamonds. The v2 lattice enumerator prices each node and edge
/// exactly once; its report must equal the canonical cost, and its chosen
/// plan can only be cheaper or equal.
#[test]
fn greedy_over_reports_shared_subdags_v2_does_not() {
    let plan = diamond_plan();

    let greedy_ctx = no_rewrite_context();
    let greedy = greedy_ctx.optimize(plan.clone()).unwrap();
    let greedy_canonical = canonical_cost(&greedy_ctx, &greedy);
    assert!(
        greedy.estimated_cost > greedy_canonical + 1e-9,
        "greedy no longer double-counts the shared prefix ({} vs {}); \
         if the DP was fixed, flip this gate to assert equality",
        greedy.estimated_cost,
        greedy_canonical
    );

    let mut v2_ctx = no_rewrite_context();
    let optimizer = std::mem::take(v2_ctx.optimizer_mut());
    *v2_ctx.optimizer_mut() = optimizer.with_enumeration_v2();
    let v2 = v2_ctx.optimize(plan).unwrap();
    assert_eq!(v2.enumeration.path, EnumerationPath::LatticeV2);
    let v2_canonical = canonical_cost(&v2_ctx, &v2);
    let tol = 1e-9 * v2_canonical.max(1.0);
    assert!(
        (v2.estimated_cost - v2_canonical).abs() <= tol,
        "v2 report must be the canonical cost of its assignment: {} vs {}",
        v2.estimated_cost,
        v2_canonical
    );
    assert!(
        v2_canonical <= greedy_canonical + tol,
        "v2 ({v2_canonical}) must not lose to greedy ({greedy_canonical})"
    );
}

/// Chain-only op scripts: every node has exactly one consumer, so the
/// greedy subtree accumulation has nothing to double-count.
fn gen_chain_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        Just(GenOp::MapInc),
        Just(GenOp::FilterHalf),
        Just(GenOp::GroupCount),
        Just(GenOp::Sort),
        Just(GenOp::Distinct),
    ]
}

/// A true chain: single source, unary ops, ONE sink. [`build_plan`] adds a
/// second sink on longer scripts, which introduces a shared sub-DAG and
/// re-triggers the greedy divergence this section gates.
fn build_chain(ops: &[GenOp]) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut top = b.collection("seed", (0..30i64).map(|i| rec![i % 7, 1i64]).collect());
    for op in ops {
        top = match op {
            GenOp::MapInc => b.map(
                top,
                MapUdf::new("inc", |r| {
                    rec![r.int(0).unwrap().wrapping_add(1), r.int(1).unwrap_or(1)]
                }),
            ),
            GenOp::FilterHalf => {
                b.filter(top, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0))
            }
            GenOp::GroupCount => b.group_by(
                top,
                KeyUdf::field(0),
                GroupMapUdf::new("count", |k, members| {
                    vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
                }),
            ),
            GenOp::Sort => b.sort(top, KeyUdf::field(0), false),
            GenOp::Distinct => b.distinct(top),
            other => unreachable!("non-unary op {other:?} in a chain script"),
        };
    }
    b.collect(top);
    b.build().expect("chain is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// On trees (here: chains) the greedy DP is exact, so both strategies
    /// must report the same total — and both must equal the canonical
    /// assignment cost.
    #[test]
    fn prop_greedy_and_v2_agree_on_chains(
        ops in proptest::collection::vec(gen_chain_op(), 0..8),
    ) {
        let plan = build_chain(&ops);

        let greedy_ctx = no_rewrite_context();
        let greedy = greedy_ctx.optimize(plan.clone()).expect("greedy optimizes");

        let mut v2_ctx = no_rewrite_context();
        let optimizer = std::mem::take(v2_ctx.optimizer_mut());
        *v2_ctx.optimizer_mut() = optimizer.with_enumeration_v2();
        let v2 = v2_ctx.optimize(plan).expect("v2 optimizes");

        let tol = 1e-9 * greedy.estimated_cost.max(1.0);
        prop_assert!((greedy.estimated_cost - v2.estimated_cost).abs() <= tol,
            "greedy {} vs v2 {}", greedy.estimated_cost, v2.estimated_cost);
        let canonical = canonical_cost(&v2_ctx, &v2);
        prop_assert!((v2.estimated_cost - canonical).abs() <= tol,
            "v2 {} vs canonical {}", v2.estimated_cost, canonical);
    }
}
