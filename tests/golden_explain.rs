//! Golden snapshot tests for the plan `explain()` rendering and its
//! `--observed` companion ([`ExecutionPlan::explain_observed`]).
//!
//! Both views are built purely from simulated, deterministic quantities
//! (cost-model estimates and simulated execution accounting — never wall
//! clock), so their exact text is stable across machines and schedule
//! modes and can be pinned byte-for-byte.
//!
//! Regenerating after an intentional format change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_explain
//! ```
//!
//! then review the diff under `tests/golden/` like any other code change.

use rheem::prelude::*;
use rheem::rec;
use rheem_platforms::test_context;

/// Compare `actual` against `tests/golden/<name>`; rewrite the file
/// instead when the `BLESS` environment variable is set.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS=1 cargo test --test golden_explain"
        , path.display())
    });
    assert_eq!(
        actual,
        expected,
        "{} drifted; if the change is intentional, regenerate with \
         BLESS=1 cargo test --test golden_explain",
        path.display()
    );
}

/// The pinned workload: a shared source fanning out into a map branch and
/// an aggregation branch, sized so the optimizer splits platforms.
fn golden_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..500i64).map(|i| rec![i % 25, i]).collect());
    let mapped = b.map(
        src,
        MapUdf::new("x3", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 3]),
    );
    b.collect(mapped);
    let summed = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(25.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(summed);
    b.build().unwrap()
}

#[test]
fn golden_explain() {
    let ctx = test_context();
    let exec = ctx.optimize(golden_plan()).unwrap();
    assert_golden("explain_plan.txt", &exec.explain());
}

#[test]
fn golden_explain_observed() {
    use rheem_core::executor::{AtomStats, ExecutionStats};
    use std::time::Duration;

    let ctx = test_context();
    let exec = ctx.optimize(golden_plan()).unwrap();
    // Real java-engine runtimes are wall-derived, so the observed column is
    // pinned with hand-built stats (shape-checked against the real plan:
    // one atom per plan atom, true cardinalities from the workload).
    let stats = ExecutionStats {
        atoms: exec
            .atoms
            .iter()
            .map(|atom| AtomStats {
                atom_id: atom.id,
                platform: atom.platform.clone(),
                wave: atom.id,
                attempts: 1,
                wall: Duration::from_millis(1),
                records_in: 0,
                records_out: 1550,
                simulated_overhead_ms: 0.1,
                simulated_elapsed_ms: 0.51,
                movement_cost_ms: 0.0,
                node_observations: vec![],
            })
            .collect(),
        waves: exec.atoms.len(),
        total_wall: Duration::from_millis(1),
        total_movement_ms: 0.0,
        retries: 0,
        replans: 0,
        failovers: 0,
        enumeration_path: Default::default(),
    };
    assert_golden("explain_observed.txt", &exec.explain_observed(&stats));
}

#[test]
fn explain_observed_without_estimates_says_so() {
    use rheem_core::optimizer::enumerate::split_into_atoms;
    use std::sync::Arc;

    let physical = golden_plan();
    let assignments = vec!["java".to_string(); physical.len()];
    let atoms = split_into_atoms(&physical, &assignments);
    let exec = rheem_core::ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates: vec![],
        enumeration: Default::default(),
    };
    let ctx = test_context();
    let result = ctx.execute_plan(&exec).unwrap();
    let view = exec.explain_observed(&result.stats);
    assert!(view.contains("no optimizer estimates"), "{view}");
}

/// A ~100-operator plan for the enumeration view: four 24-node linear
/// branches (source → 22 maps → group-by) merged by a union tree into one
/// sink. Large enough that only a contracted enumeration can handle it,
/// regular enough that the rendering stays reviewable.
fn wide_golden_plan() -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut branches = Vec::new();
    for br in 0..4 {
        let mut cur = b.collection(
            format!("s{br}"),
            (0..2000i64).map(|i| rec![i % 13, 1i64]).collect(),
        );
        for _ in 0..22 {
            cur = b.map(
                cur,
                MapUdf::new("inc", |r| {
                    rec![r.int(0).unwrap() + 1, r.int(1).unwrap_or(1)]
                }),
            );
        }
        cur = b.group_by(
            cur,
            KeyUdf::field(0),
            GroupMapUdf::new("tally", |k, members| {
                vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
            }),
        );
        branches.push(cur);
    }
    let u1 = b.union(branches[0], branches[1]);
    let u2 = b.union(branches[2], branches[3]);
    let u3 = b.union(u1, u2);
    b.collect(u3);
    b.build().unwrap()
}

#[test]
fn golden_explain_enumeration() {
    use rheem_core::plan::EnumerationPath;

    let mut ctx = test_context();
    let optimizer = std::mem::take(ctx.optimizer_mut());
    *ctx.optimizer_mut() = optimizer.without_rewrites().with_enumeration_v2();
    // Deterministic calibration pressure: make the group-by ruinous on
    // every platform except mapreduce (relational, whose group-by is too
    // cheap for the clamped factor to deter, is excluded outright), so the
    // chosen plan crosses into mapreduce's File channels and the view
    // shows real conversion routes — serialize on the way in, deserialize
    // on the way out — not just free memory-to-memory hops.
    let group_op = "HashGroupBy(key=field#0, group=tally)";
    for platform in ["java", "sparklike"] {
        ctx.optimizer()
            .calibration
            .observe(group_op, platform, 1.0, 1.0e6, 1.0, 1.0);
    }
    // …and keep the map chains OFF mapreduce, so the crossing happens at
    // the group boundary instead of the whole branch migrating.
    ctx.optimizer()
        .calibration
        .observe("Map(inc)", "mapreduce", 1.0, 1.0e6, 1.0, 1.0);
    ctx.optimizer_mut()
        .config
        .enumeration
        .excluded_platforms
        .push("relational".into());

    let plan = wide_golden_plan();
    assert!(plan.len() >= 100, "plan has {} nodes", plan.len());
    let exec = ctx.optimize(plan).unwrap();
    assert_eq!(exec.enumeration.path, EnumerationPath::LatticeV2);
    assert!(
        !exec.enumeration.conversions.is_empty(),
        "expected cross-platform edges with conversion routes"
    );
    assert_golden("explain_enumeration.txt", &exec.explain_enumeration());
}
