//! Multi-platform task execution (§2's second pillar): one task, several
//! engines, task atoms crossing platform boundaries — plus the executor's
//! §4.2 duties: monitoring, failure handling, and budget enforcement.

use std::sync::Arc;
use std::time::Duration;

use rheem::prelude::*;
use rheem::rec;
use rheem_core::optimizer::enumerate::split_into_atoms;
use rheem_core::plan::NodeId;
use rheem_core::{ExecutionPlan, FailureInjector, JobResult, RheemError, ScheduleMode};
use rheem_platforms::test_context;

/// A plan the relational engine *cannot* run end to end (it has a loop),
/// while the loop-free prefix is cheap relational work. With a relational
/// engine that is much cheaper for scans/joins, the optimizer must split.
fn mixed_plan(n: i64) -> rheem_core::PhysicalPlan {
    let mut b = PlanBuilder::new();
    let orders = b.collection(
        "orders",
        (0..n).map(|i| rec![i % 50, (i % 997) as f64]).collect(),
    );
    let agg = b.reduce_by_key(
        orders,
        KeyUdf::field(0).with_distinct_keys(50.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.float(1).unwrap() + x.float(1).unwrap()]
        }),
    );
    // Iterative post-processing (no relational support).
    let mut body = PlanBuilder::new();
    let li = body.loop_input();
    body.map(
        li,
        MapUdf::new("decay", |r| {
            rec![r.int(0).unwrap(), r.float(1).unwrap() * 0.9]
        }),
    );
    let body = body.build_fragment().unwrap();
    let looped = b.repeat(agg, body, LoopCondUdf::fixed_iterations(5), 5);
    b.collect(looped);
    b.build().unwrap()
}

#[test]
fn optimizer_splits_plans_across_platforms_when_profitable() {
    // Force the situation by making movement cheap and the relational
    // engine drastically better at the aggregation.
    let mut ctx = test_context();
    ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::free();
    let exec = ctx.optimize(mixed_plan(100_000)).unwrap();
    let platforms: std::collections::HashSet<&str> =
        exec.assignments.iter().map(String::as_str).collect();
    assert!(
        platforms.len() >= 2,
        "expected a mixed plan, got {:?}\n{}",
        platforms,
        exec.explain()
    );
    // The loop cannot be on the relational platform.
    let loop_node = exec
        .physical
        .nodes()
        .iter()
        .find(|nd| matches!(nd.op, rheem_core::PhysicalOp::Loop { .. }))
        .unwrap();
    assert_ne!(exec.assignments[loop_node.id.0], "relational");

    // And it runs correctly end to end.
    let result = ctx.execute_plan(&exec).unwrap();
    assert!(result.stats.platforms_used().len() >= 2);
    let out = result.single().unwrap();
    assert_eq!(out.len(), 50);
    // 0.9^5 decay applied to each aggregate.
    let first = out
        .iter()
        .find(|r| r.int(0).unwrap() == 0)
        .expect("key 0 present");
    let expected: f64 = (0..100_000i64)
        .filter(|i| i % 50 == 0)
        .map(|i| (i % 997) as f64)
        .sum::<f64>()
        * 0.9f64.powi(5);
    assert!((first.float(1).unwrap() - expected).abs() < 1e-6);
}

#[test]
fn movement_costs_steer_the_optimizer_away_from_switching() {
    // With free movement the optimizer splits (previous test); with
    // punitive movement pricing it must consolidate.
    let mut ctx = test_context();
    ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::new(1e9, 1e9);
    let exec = ctx.optimize(mixed_plan(100_000)).unwrap();
    let platforms: std::collections::HashSet<&str> =
        exec.assignments.iter().map(String::as_str).collect();
    assert_eq!(
        platforms.len(),
        1,
        "punitive movement pricing must produce a single-platform plan:\n{}",
        exec.explain()
    );
}

#[test]
fn executor_retries_injected_failures_and_records_them() {
    let injector = Arc::new(FailureInjector::fail_next("java", 2));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_max_retries(3);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..10i64).map(|i| rec![i]).collect());
    b.count(src);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(result.stats.retries, 2);
    assert_eq!(result.stats.atoms[0].attempts, 3);
    assert_eq!(
        rheem_core::interpreter::read_count(result.single().unwrap()).unwrap(),
        10
    );
}

#[test]
fn executor_gives_up_when_retries_are_exhausted() {
    let injector = Arc::new(FailureInjector::fail_next("java", 10));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_max_retries(2);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", vec![rec![1i64]]);
    b.collect(src);
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(matches!(err, RheemError::Execution { .. }), "{err}");
}

#[test]
fn job_timeout_is_enforced_between_atoms() {
    // Two atoms: force a platform switch by pinning... simpler: a plan with
    // a mapreduce-only section after a java section via unsupported op is
    // overkill; instead use a tiny timeout that trips before the first atom.
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_timeout(Duration::ZERO);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", vec![rec![1i64]]);
    b.collect(src);
    // Duration::ZERO elapses immediately; the pre-atom check fires.
    std::thread::sleep(Duration::from_millis(2));
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(matches!(err, RheemError::BudgetExceeded(_)), "{err}");
}

#[test]
fn monitoring_reports_per_atom_accounting() {
    let ctx = test_context().force_platform("sparklike");
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..1000i64).map(|i| rec![i % 20, i]).collect());
    let red = b.reduce_by_key(
        src,
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(red);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(result.stats.atoms.len(), 1);
    let atom = &result.stats.atoms[0];
    assert_eq!(atom.platform, "sparklike");
    assert!(atom.records_out >= 1020); // source + aggregates + sink
    assert!(atom.simulated_overhead_ms > 0.0);
    assert!(atom.simulated_elapsed_ms >= atom.simulated_overhead_ms);
    assert!(result.stats.total_simulated_ms() >= atom.simulated_elapsed_ms);
}

#[test]
fn no_platform_for_operator_is_a_clean_error() {
    // Relational-only context cannot run a loop.
    let ctx = RheemContext::new().with_platform(Arc::new(
        RelationalPlatform::new().with_overheads(OverheadConfig::none()),
    ));
    let err = ctx.optimize(mixed_plan(100)).unwrap_err();
    assert!(matches!(err, RheemError::NoPlatformFor { .. }), "{err}");
}

#[test]
fn progress_listener_observes_the_job_lifecycle() {
    use parking_lot::Mutex;
    use rheem_core::{AtomStats, ExecutionStats, ProgressListener};

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }
    impl ProgressListener for Recorder {
        fn on_atom_start(&self, atom_id: usize, platform: &str) {
            self.events
                .lock()
                .push(format!("start:{atom_id}@{platform}"));
        }
        fn on_atom_retry(&self, atom_id: usize, attempt: usize, _error: &RheemError) {
            self.events
                .lock()
                .push(format!("retry:{atom_id}#{attempt}"));
        }
        fn on_atom_complete(&self, stats: &AtomStats) {
            self.events
                .lock()
                .push(format!("done:{}({} out)", stats.atom_id, stats.records_out));
        }
        fn on_job_complete(&self, stats: &ExecutionStats) {
            self.events
                .lock()
                .push(format!("job:{} atoms", stats.atoms.len()));
        }
    }

    let recorder = Arc::new(Recorder::default());
    let injector = Arc::new(FailureInjector::fail_next("java", 1));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_progress_listener(recorder.clone());
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..5i64).map(|i| rec![i]).collect());
    b.collect(src);
    ctx.execute(b.build().unwrap()).unwrap();

    let events = recorder.events.lock().clone();
    assert_eq!(
        events,
        vec![
            "start:0@java".to_string(),
            "retry:0#1".to_string(),
            "done:0(10 out)".to_string(), // 5 source + 5 sink records
            "job:1 atoms".to_string(),
        ],
        "unexpected event trace: {events:?}"
    );
}

// ---------------------------------------------------------------------------
// Wave scheduling
// ---------------------------------------------------------------------------

/// A shared source fanning out to three branches hand-pinned to three
/// distinct platforms: four atoms, of which the three branch atoms are
/// mutually independent.
fn fanout_exec_plan() -> ExecutionPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..100i64).map(|i| rec![i % 10, i]).collect());
    let doubled = b.map(
        src,
        MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
    );
    b.collect(doubled);
    let even = b.filter(src, FilterUdf::new("even", |r| r.int(1).unwrap() % 2 == 0));
    b.collect(even);
    let summed = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(10.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(summed);
    let physical = b.build().unwrap();
    let assignments: Vec<String> = [
        "java",      // source
        "sparklike", // map branch
        "sparklike",
        "mapreduce", // filter branch
        "mapreduce",
        "java", // reduce branch (merges with the source atom)
        "java",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let atoms = split_into_atoms(&physical, &assignments);
    ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates: vec![],
        enumeration: Default::default(),
    }
}

fn sorted_outputs(result: &JobResult) -> Vec<(NodeId, Vec<Record>)> {
    let mut out: Vec<(NodeId, Vec<Record>)> = result
        .outputs
        .iter()
        .map(|(n, d)| (*n, d.records().to_vec()))
        .collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

#[test]
fn independent_atoms_share_a_wave_and_match_sequential_output() {
    let exec = fanout_exec_plan();
    assert!(exec.atoms.len() >= 3, "{}", exec.explain());
    let platforms: std::collections::HashSet<&str> =
        exec.atoms.iter().map(|a| a.platform.as_str()).collect();
    assert!(
        platforms.len() >= 3,
        "want 3 distinct platforms: {platforms:?}"
    );

    let parallel = test_context()
        .with_max_parallel_atoms(4)
        .execute_plan(&exec)
        .unwrap();
    let sequential = test_context()
        .with_schedule_mode(ScheduleMode::Sequential)
        .execute_plan(&exec)
        .unwrap();

    // Fewer waves than atoms: the independent branch atoms overlapped.
    assert!(
        parallel.stats.waves < exec.atoms.len(),
        "waves {} !< atoms {}",
        parallel.stats.waves,
        exec.atoms.len()
    );
    // Wave accounting is mode-consistent: sequential mode walks the same
    // waves parallel mode computes, one atom at a time.
    assert_eq!(sequential.stats.waves, parallel.stats.waves);
    // The java atom (source + reduce branch) is wave 0; the two atoms
    // that consume the source across a boundary run together in wave 1 —
    // in both modes.
    for run in [&parallel, &sequential] {
        let wave_of: std::collections::HashMap<usize, usize> = run
            .stats
            .atoms
            .iter()
            .map(|a| (a.atom_id, a.wave))
            .collect();
        for atom in &exec.atoms {
            let expected = if atom.inputs.is_empty() { 0 } else { 1 };
            assert_eq!(wave_of[&atom.id], expected, "atom {}", atom.id);
        }
    }

    // Identical sink outputs under both schedules.
    assert_eq!(sorted_outputs(&parallel), sorted_outputs(&sequential));
}

#[test]
fn multi_failure_waves_report_the_lowest_id_failing_atom_in_both_modes() {
    // Both branch atoms of wave 1 fail deterministically on every attempt
    // (persistent injection, no retries), so regardless of scheduling the
    // executor must surface the *lowest-id* failing atom's error. This
    // pins the contract documented on `run_wave`.
    let exec = fanout_exec_plan();
    let failing: Vec<&rheem_core::TaskAtom> =
        exec.atoms.iter().filter(|a| a.platform != "java").collect();
    assert!(failing.len() >= 2, "want a multi-atom failing wave");
    let lowest = failing.iter().map(|a| a.id).min().unwrap();

    let run = |mode: ScheduleMode| {
        let injector = Arc::new(FailureInjector::fail_next("sparklike", 1_000_000));
        injector.add("mapreduce", 1_000_000);
        test_context()
            .with_schedule_mode(mode)
            .with_max_parallel_atoms(4)
            .with_max_retries(0)
            .with_failure_injector(injector)
            .execute_plan(&exec)
            .unwrap_err()
    };
    for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
        let err = run(mode);
        match &err {
            RheemError::Execution { message, .. } => assert!(
                message.contains(&format!("atom {lowest}")),
                "{mode:?}: expected failure of atom {lowest}, got: {message}"
            ),
            other => panic!("{mode:?}: unexpected error {other}"),
        }
    }
}

#[test]
fn execution_stats_are_deterministic_under_concurrency() {
    let exec = fanout_exec_plan();
    let runs: Vec<_> = (0..5)
        .map(|_| {
            test_context()
                .with_max_parallel_atoms(4)
                .execute_plan(&exec)
                .unwrap()
                .stats
        })
        .collect();
    let reference: Vec<(usize, usize, String)> = runs[0]
        .atoms
        .iter()
        .map(|a| (a.atom_id, a.wave, a.platform.clone()))
        .collect();
    for stats in &runs {
        let got: Vec<(usize, usize, String)> = stats
            .atoms
            .iter()
            .map(|a| (a.atom_id, a.wave, a.platform.clone()))
            .collect();
        assert_eq!(got, reference);
        assert_eq!(stats.waves, runs[0].waves);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.total_movement_ms, runs[0].total_movement_ms);
        // The report renders the wave column.
        assert!(stats.explain().contains("wave"));
    }
}

#[test]
fn malformed_execution_plans_error_instead_of_panicking() {
    // A boundary edge pointing outside the physical plan used to panic in
    // the executor's input gathering (`assignments[edge.producer.0]`).
    let mut exec = fanout_exec_plan();
    let victim = exec
        .atoms
        .iter()
        .position(|a| !a.inputs.is_empty())
        .expect("fan-out plan has boundary edges");
    exec.atoms[victim].inputs[0].producer = NodeId(999);
    let err = test_context().execute_plan(&exec).unwrap_err();
    assert!(matches!(err, RheemError::InvalidPlan(_)), "{err}");

    // Same for an assignments vector that no longer covers the boundary
    // producers (node 0 is the only cross-atom producer here).
    let mut exec = fanout_exec_plan();
    exec.assignments.clear();
    let err = test_context().execute_plan(&exec).unwrap_err();
    assert!(matches!(err, RheemError::InvalidPlan(_)), "{err}");

    // Sequential mode takes the same validation path.
    let mut exec = fanout_exec_plan();
    exec.assignments.clear();
    let err = test_context()
        .with_schedule_mode(ScheduleMode::Sequential)
        .execute_plan(&exec)
        .unwrap_err();
    assert!(matches!(err, RheemError::InvalidPlan(_)), "{err}");
}

#[test]
fn timeout_budget_bounds_retry_storms() {
    // Endless injected failures with a huge retry budget: the deadline is
    // checked inside the retry loop, so the job still terminates with
    // BudgetExceeded instead of burning through a billion retries.
    let injector = Arc::new(FailureInjector::fail_next("java", usize::MAX));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_max_retries(usize::MAX - 1)
        .with_timeout(Duration::from_millis(50));
    let mut b = PlanBuilder::new();
    let src = b.collection("s", vec![rec![1i64]]);
    b.collect(src);
    let started = std::time::Instant::now();
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(matches!(err, RheemError::BudgetExceeded(_)), "{err}");
    assert!(started.elapsed() < Duration::from_secs(10));
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig {
        cases: 8,
        ..proptest::prelude::ProptestConfig::default()
    })]

    /// Parallel wave scheduling must be a pure performance change: for
    /// random multi-platform plans, the sink outputs are identical to the
    /// sequential executor's.
    #[test]
    fn parallel_and_sequential_schedules_agree(
        shape in 0u8..3,
        n in 1i64..200,
        modulus in 1i64..12,
    ) {
        let build = |sh: u8| -> rheem_core::PhysicalPlan {
            match sh {
                0 => {
                    // Shared source fanning out to two sinks.
                    let mut b = PlanBuilder::new();
                    let src = b.collection(
                        "s",
                        (0..n).map(|i| rec![i % modulus, i]).collect(),
                    );
                    let agg = b.reduce_by_key(
                        src,
                        KeyUdf::field(0).with_distinct_keys(modulus as f64),
                        ReduceUdf::new("sum", |a, x| {
                            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
                        }),
                    );
                    b.collect(agg);
                    let odd = b.filter(
                        src,
                        FilterUdf::new("odd", |r| r.int(1).unwrap() % 2 == 1),
                    );
                    b.collect(odd);
                    b.build().unwrap()
                }
                1 => mixed_plan(n.max(10)),
                _ => {
                    // Two sources joined on a shared key space.
                    let mut b = PlanBuilder::new();
                    let l = b.collection(
                        "l",
                        (0..n).map(|i| rec![i % modulus, i]).collect(),
                    );
                    let r = b.collection(
                        "r",
                        (0..n / 2 + 1).map(|i| rec![i % modulus, -i]).collect(),
                    );
                    let j = b.hash_join(l, r, KeyUdf::field(0), KeyUdf::field(0));
                    b.collect(j);
                    b.build().unwrap()
                }
            }
        };

        let mut ctx = test_context();
        ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::free();
        let exec = ctx.optimize(build(shape)).unwrap();

        let parallel = test_context()
            .with_max_parallel_atoms(4)
            .execute_plan(&exec)
            .unwrap();
        let sequential = test_context()
            .with_schedule_mode(ScheduleMode::Sequential)
            .execute_plan(&exec)
            .unwrap();

        proptest::prop_assert_eq!(sorted_outputs(&parallel), sorted_outputs(&sequential));
        proptest::prop_assert_eq!(parallel.stats.atoms.len(), sequential.stats.atoms.len());
        // Mode-consistent wave accounting: both schedules report the same
        // wave structure (sequential just runs one atom at a time).
        proptest::prop_assert_eq!(parallel.stats.waves, sequential.stats.waves);
        for (p, s) in parallel.stats.atoms.iter().zip(&sequential.stats.atoms) {
            proptest::prop_assert_eq!(p.atom_id, s.atom_id);
            proptest::prop_assert_eq!(p.wave, s.wave);
        }
    }
}
