//! Multi-platform task execution (§2's second pillar): one task, several
//! engines, task atoms crossing platform boundaries — plus the executor's
//! §4.2 duties: monitoring, failure handling, and budget enforcement.

use std::sync::Arc;
use std::time::Duration;

use rheem::prelude::*;
use rheem::rec;
use rheem_core::{FailureInjector, RheemError};
use rheem_platforms::test_context;

/// A plan the relational engine *cannot* run end to end (it has a loop),
/// while the loop-free prefix is cheap relational work. With a relational
/// engine that is much cheaper for scans/joins, the optimizer must split.
fn mixed_plan(n: i64) -> rheem_core::PhysicalPlan {
    let mut b = PlanBuilder::new();
    let orders = b.collection(
        "orders",
        (0..n).map(|i| rec![i % 50, (i % 997) as f64]).collect(),
    );
    let agg = b.reduce_by_key(
        orders,
        KeyUdf::field(0).with_distinct_keys(50.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.float(1).unwrap() + x.float(1).unwrap()]
        }),
    );
    // Iterative post-processing (no relational support).
    let mut body = PlanBuilder::new();
    let li = body.loop_input();
    body.map(li, MapUdf::new("decay", |r| {
        rec![r.int(0).unwrap(), r.float(1).unwrap() * 0.9]
    }));
    let body = body.build_fragment().unwrap();
    let looped = b.repeat(agg, body, LoopCondUdf::fixed_iterations(5), 5);
    b.collect(looped);
    b.build().unwrap()
}

#[test]
fn optimizer_splits_plans_across_platforms_when_profitable() {
    // Force the situation by making movement cheap and the relational
    // engine drastically better at the aggregation.
    let mut ctx = test_context();
    ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::free();
    let exec = ctx.optimize(mixed_plan(100_000)).unwrap();
    let platforms: std::collections::HashSet<&str> =
        exec.assignments.iter().map(String::as_str).collect();
    assert!(
        platforms.len() >= 2,
        "expected a mixed plan, got {:?}\n{}",
        platforms,
        exec.explain()
    );
    // The loop cannot be on the relational platform.
    let loop_node = exec
        .physical
        .nodes()
        .iter()
        .find(|nd| matches!(nd.op, rheem_core::PhysicalOp::Loop { .. }))
        .unwrap();
    assert_ne!(exec.assignments[loop_node.id.0], "relational");

    // And it runs correctly end to end.
    let result = ctx.execute_plan(&exec).unwrap();
    assert!(result.stats.platforms_used().len() >= 2);
    let out = result.single().unwrap();
    assert_eq!(out.len(), 50);
    // 0.9^5 decay applied to each aggregate.
    let first = out
        .iter()
        .find(|r| r.int(0).unwrap() == 0)
        .expect("key 0 present");
    let expected: f64 = (0..100_000i64)
        .filter(|i| i % 50 == 0)
        .map(|i| (i % 997) as f64)
        .sum::<f64>()
        * 0.9f64.powi(5);
    assert!((first.float(1).unwrap() - expected).abs() < 1e-6);
}

#[test]
fn movement_costs_steer_the_optimizer_away_from_switching() {
    // With free movement the optimizer splits (previous test); with
    // punitive movement pricing it must consolidate.
    let mut ctx = test_context();
    ctx.optimizer_mut().movement = rheem_core::cost::MovementCostModel::new(1e9, 1e9);
    let exec = ctx.optimize(mixed_plan(100_000)).unwrap();
    let platforms: std::collections::HashSet<&str> =
        exec.assignments.iter().map(String::as_str).collect();
    assert_eq!(
        platforms.len(),
        1,
        "punitive movement pricing must produce a single-platform plan:\n{}",
        exec.explain()
    );
}

#[test]
fn executor_retries_injected_failures_and_records_them() {
    let injector = Arc::new(FailureInjector::fail_next("java", 2));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_max_retries(3);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..10i64).map(|i| rec![i]).collect());
    b.count(src);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(result.stats.retries, 2);
    assert_eq!(result.stats.atoms[0].attempts, 3);
    assert_eq!(
        rheem_core::interpreter::read_count(result.single().unwrap()).unwrap(),
        10
    );
}

#[test]
fn executor_gives_up_when_retries_are_exhausted() {
    let injector = Arc::new(FailureInjector::fail_next("java", 10));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_max_retries(2);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", vec![rec![1i64]]);
    b.collect(src);
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(matches!(err, RheemError::Execution { .. }), "{err}");
}

#[test]
fn job_timeout_is_enforced_between_atoms() {
    // Two atoms: force a platform switch by pinning... simpler: a plan with
    // a mapreduce-only section after a java section via unsupported op is
    // overkill; instead use a tiny timeout that trips before the first atom.
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_timeout(Duration::ZERO);
    let mut b = PlanBuilder::new();
    let src = b.collection("s", vec![rec![1i64]]);
    b.collect(src);
    // Duration::ZERO elapses immediately; the pre-atom check fires.
    std::thread::sleep(Duration::from_millis(2));
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(matches!(err, RheemError::BudgetExceeded(_)), "{err}");
}

#[test]
fn monitoring_reports_per_atom_accounting() {
    let ctx = test_context().force_platform("sparklike");
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..1000i64).map(|i| rec![i % 20, i]).collect());
    let red = b.reduce_by_key(
        src,
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(red);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(result.stats.atoms.len(), 1);
    let atom = &result.stats.atoms[0];
    assert_eq!(atom.platform, "sparklike");
    assert!(atom.records_out >= 1020); // source + aggregates + sink
    assert!(atom.simulated_overhead_ms > 0.0);
    assert!(atom.simulated_elapsed_ms >= atom.simulated_overhead_ms);
    assert!(result.stats.total_simulated_ms() >= atom.simulated_elapsed_ms);
}

#[test]
fn no_platform_for_operator_is_a_clean_error() {
    // Relational-only context cannot run a loop.
    let ctx = RheemContext::new().with_platform(Arc::new(
        RelationalPlatform::new().with_overheads(OverheadConfig::none()),
    ));
    let err = ctx.optimize(mixed_plan(100)).unwrap_err();
    assert!(matches!(err, RheemError::NoPlatformFor { .. }), "{err}");
}

#[test]
fn progress_listener_observes_the_job_lifecycle() {
    use parking_lot::Mutex;
    use rheem_core::{AtomStats, ExecutionStats, ProgressListener};

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }
    impl ProgressListener for Recorder {
        fn on_atom_start(&self, atom_id: usize, platform: &str) {
            self.events.lock().push(format!("start:{atom_id}@{platform}"));
        }
        fn on_atom_retry(&self, atom_id: usize, attempt: usize, _error: &RheemError) {
            self.events.lock().push(format!("retry:{atom_id}#{attempt}"));
        }
        fn on_atom_complete(&self, stats: &AtomStats) {
            self.events
                .lock()
                .push(format!("done:{}({} out)", stats.atom_id, stats.records_out));
        }
        fn on_job_complete(&self, stats: &ExecutionStats) {
            self.events
                .lock()
                .push(format!("job:{} atoms", stats.atoms.len()));
        }
    }

    let recorder = Arc::new(Recorder::default());
    let injector = Arc::new(FailureInjector::fail_next("java", 1));
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(injector)
        .with_progress_listener(recorder.clone());
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..5i64).map(|i| rec![i]).collect());
    b.collect(src);
    ctx.execute(b.build().unwrap()).unwrap();

    let events = recorder.events.lock().clone();
    assert_eq!(
        events,
        vec![
            "start:0@java".to_string(),
            "retry:0#1".to_string(),
            "done:0(10 out)".to_string(), // 5 source + 5 sink records
            "job:1 atoms".to_string(),
        ],
        "unexpected event trace: {events:?}"
    );
}
