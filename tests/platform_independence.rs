//! The platform-independence contract, end to end: any plan produces the
//! same bag of records on every registered platform (§2 "Processing
//! Platform Independence"). Includes a property-based test that builds
//! random operator pipelines and cross-checks all engines against the
//! reference interpreter.

use std::sync::Arc;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::interpreter;
use rheem_core::plan::PhysicalPlan;

fn all_platform_contexts() -> Vec<(&'static str, RheemContext)> {
    vec![
        (
            "java",
            RheemContext::new().with_platform(Arc::new(JavaPlatform::new())),
        ),
        (
            "sparklike",
            RheemContext::new().with_platform(Arc::new(
                SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
            )),
        ),
        (
            "mapreduce",
            RheemContext::new().with_platform(Arc::new(
                MapReduceLikePlatform::new(4)
                    .with_overheads(OverheadConfig::none())
                    .with_spill_dir(
                        std::env::temp_dir()
                            .join(format!("rheem_integration_{}", std::process::id())),
                    ),
            )),
        ),
        (
            "relational",
            RheemContext::new().with_platform(Arc::new(
                RelationalPlatform::new().with_overheads(OverheadConfig::none()),
            )),
        ),
    ]
}

fn sorted(mut v: Vec<Record>) -> Vec<Record> {
    v.sort();
    v
}

/// Normalize a job's outputs into a sorted multiset of sorted bags.
/// The optimizer's rewrite pass renumbers nodes, so sinks are matched by
/// content (bag semantics), not by id.
fn bags(outputs: impl IntoIterator<Item = Dataset>) -> Vec<Vec<Record>> {
    let mut out: Vec<Vec<Record>> = outputs
        .into_iter()
        .map(|d| sorted(d.records().to_vec()))
        .collect();
    out.sort();
    out
}

/// Execute on every platform and compare against the reference interpreter.
fn assert_platform_independent(plan: &PhysicalPlan) {
    let reference =
        interpreter::run_plan(plan, &rheem_core::ExecutionContext::new()).expect("reference runs");
    let reference_bags = bags(reference.into_values());
    for (name, ctx) in all_platform_contexts() {
        // Skip engines that cannot run the plan at all (e.g. relational
        // with loops) — the optimizer would never route it there.
        let supported = {
            let platform = ctx.platforms().all()[0].clone();
            plan.nodes().iter().all(|n| platform.supports(&n.op))
        };
        if !supported {
            continue;
        }
        let result = ctx.execute(plan.clone()).expect("plan executes");
        assert_eq!(
            bags(result.outputs.into_values()),
            reference_bags,
            "platform {name} disagrees with the reference"
        );
    }
}

#[test]
fn relational_style_query_is_platform_independent() {
    let mut b = PlanBuilder::new();
    let orders = b.collection("orders", rheem_datagen::relational::orders(500, 60, 1));
    let customers = b.collection("customers", rheem_datagen::relational::customers(60, 5, 2));
    let big = b.filter(
        orders,
        FilterUdf::new("big", |r| r.float(2).unwrap() > 1000.0),
    );
    let joined = b.hash_join(big, customers, KeyUdf::field(1), KeyUdf::field(0));
    // Normalize each joined row to [region, cents] first: a stable
    // accumulator shape, and integer money so the aggregate is exact
    // regardless of per-partition summation order.
    let rows = b.map(
        joined,
        MapUdf::new("project-region-cents", |r| {
            Record::new(vec![
                r.get(5).unwrap().clone(),
                ((r.float(2).unwrap() * 100.0).round() as i64).into(),
            ])
        }),
    );
    let by_region = b.reduce_by_key(
        rows,
        KeyUdf::field(0),
        ReduceUdf::new("sum", |a, x| {
            Record::new(vec![
                a.get(0).unwrap().clone(),
                (a.int(1).unwrap() + x.int(1).unwrap()).into(),
            ])
        }),
    );
    b.collect(by_region);
    let plan = b.build().unwrap();
    assert_platform_independent(&plan);
}

#[test]
fn iterative_plan_is_platform_independent() {
    // Relational is skipped automatically (no loop support).
    let mut body = PlanBuilder::new();
    let li = body.loop_input();
    let doubled = body.map(li, MapUdf::new("x2", |r| rec![r.int(0).unwrap() * 2]));
    body.filter(
        doubled,
        FilterUdf::new("cap", |r| r.int(0).unwrap() < 1_000_000),
    );
    let body = body.build_fragment().unwrap();

    let mut b = PlanBuilder::new();
    let src = b.collection("s", (1..50i64).map(|i| rec![i]).collect());
    let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(6), 6);
    b.collect(l);
    assert_platform_independent(&b.build().unwrap());
}

#[test]
fn cleaning_pipeline_is_platform_independent() {
    use rheem_cleaning::{build_detection_plan, DenialConstraint, DetectionStrategy};
    use rheem_datagen::tax::{columns, generate, TaxConfig};
    let (data, _) = generate(&TaxConfig::new(800).with_seed(3));
    let rule =
        DenialConstraint::functional_dependency("fd", columns::ID, columns::ZIP, columns::STATE);
    for strategy in [
        DetectionStrategy::OperatorPipeline,
        DetectionStrategy::SingleUdf,
    ] {
        let (plan, _) = build_detection_plan(data.clone(), &rule, strategy).unwrap();
        assert_platform_independent(&plan);
    }
}

// ---------------------------------------------------------------------------
// Property-based pipeline fuzzing
// ---------------------------------------------------------------------------

/// A randomly chosen unary operator step.
#[derive(Clone, Debug)]
enum Step {
    MapAddConst(i64),
    FilterMod(i64),
    SortAsc,
    Distinct,
    GroupCount,
    ReduceSum,
    LimitTo(usize),
    UnionSelf,
}

fn apply_step(b: &mut PlanBuilder, input: rheem_core::NodeId, step: &Step) -> rheem_core::NodeId {
    match step {
        Step::MapAddConst(c) => {
            let c = *c;
            b.map(
                input,
                MapUdf::new("add", move |r| {
                    rec![r.int(0).unwrap().wrapping_add(c), r.int(1).unwrap_or(0)]
                }),
            )
        }
        Step::FilterMod(m) => {
            let m = (*m).max(1);
            b.filter(
                input,
                FilterUdf::new("mod", move |r| r.int(0).unwrap().rem_euclid(m) != 0),
            )
        }
        Step::SortAsc => b.sort(input, KeyUdf::field(0), false),
        Step::Distinct => b.distinct(input),
        Step::GroupCount => b.group_by(
            input,
            KeyUdf::new("mod7", |r| (r.int(0).unwrap().rem_euclid(7)).into()),
            GroupMapUdf::new("count", |k, members| {
                vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
            }),
        ),
        // Note: the combiner must be commutative and associative for the
        // result to be platform-independent (partitioned engines reduce in
        // a different order) — hence `min` for the representative, not
        // "first seen".
        Step::ReduceSum => b.reduce_by_key(
            input,
            KeyUdf::new("mod5", |r| (r.int(0).unwrap().rem_euclid(5)).into()),
            ReduceUdf::new("sum", |a, x| {
                rec![
                    a.int(0).unwrap().min(x.int(0).unwrap()),
                    a.int(1).unwrap_or(0).wrapping_add(x.int(1).unwrap_or(0))
                ]
            }),
        ),
        Step::LimitTo(n) => {
            // Order across platforms is a bag, so sort before limiting to
            // keep the prefix deterministic.
            let s = b.sort(input, KeyUdf::field(0), false);
            b.limit(s, *n)
        }
        Step::UnionSelf => b.union(input, input),
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-100i64..100).prop_map(Step::MapAddConst),
        (1i64..9).prop_map(Step::FilterMod),
        Just(Step::SortAsc),
        Just(Step::Distinct),
        Just(Step::GroupCount),
        Just(Step::ReduceSum),
        (1usize..50).prop_map(Step::LimitTo),
        Just(Step::UnionSelf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Arbitrary pipelines of supported operators agree across every
    /// platform (bag semantics).
    #[test]
    fn prop_random_pipelines_are_platform_independent(
        seed in 0u64..1000,
        len in 0usize..120,
        steps in proptest::collection::vec(step_strategy(), 0..5),
    ) {
        let data: Vec<Record> = (0..len as i64)
            .map(|i| rec![(i.wrapping_mul(seed as i64 + 3)).rem_euclid(97), 1i64])
            .collect();
        let mut b = PlanBuilder::new();
        let mut node = b.collection("fuzz", data);
        for step in &steps {
            node = apply_step(&mut b, node, step);
        }
        b.collect(node);
        let plan = b.build().unwrap();
        assert_platform_independent(&plan);
    }
}
