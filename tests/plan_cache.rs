//! Plan-cache correctness under reuse and calibration drift.
//!
//! Property: for random declarative plans, executing through a warm plan
//! cache (second optimization of an equal plan is a hit that skips
//! enumeration) produces outputs *byte-identical* to a cold enumeration in
//! a cache-less context — compared on a canonical byte encoding, not just
//! `==`. And when the shared [`CostCalibration`] drifts past the cache's
//! threshold, the next lookup flips from hit to miss (forced
//! re-enumeration), observable through the `optimizer.plan_cache.*`
//! metrics counters.

use std::sync::Arc;

use proptest::prelude::*;
use rheem_core::plan::{PhysicalPlan, PlanBuilder};
use rheem_core::udf::{FilterUdf, MapUdf};
use rheem_core::{Expr, JobResult, Observability, PlanCache, PlanCacheConfig, Record, Value};
use rheem_platforms::test_context;

/// Canonical byte encoding of job outputs: sink ids ascending, then per
/// record a width-prefixed list of tagged values (floats by IEEE bits).
fn encode_outputs(job: &JobResult) -> Vec<u8> {
    let mut sinks: Vec<_> = job.outputs.iter().collect();
    sinks.sort_by_key(|(id, _)| id.0);
    let mut buf = Vec::new();
    for (id, dataset) in sinks {
        buf.extend_from_slice(&(id.0 as u64).to_be_bytes());
        buf.extend_from_slice(&(dataset.records().len() as u64).to_be_bytes());
        for record in dataset.records() {
            buf.extend_from_slice(&(record.width() as u64).to_be_bytes());
            for value in record.fields() {
                match value {
                    Value::Null => buf.push(0),
                    Value::Bool(b) => {
                        buf.push(1);
                        buf.push(u8::from(*b));
                    }
                    Value::Int(i) => {
                        buf.push(2);
                        buf.extend_from_slice(&i.to_be_bytes());
                    }
                    Value::Float(x) => {
                        buf.push(3);
                        buf.extend_from_slice(&x.to_bits().to_be_bytes());
                    }
                    Value::Str(s) => {
                        buf.push(4);
                        buf.extend_from_slice(&(s.len() as u64).to_be_bytes());
                        buf.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
    }
    buf
}

/// A declarative (expression-only, transparently fingerprintable) plan:
/// source → filter(field0 > threshold) → map(field0 + addend, field1) →
/// collect. Each call builds a structurally identical fresh plan.
fn declarative_plan(rows: &[(i64, i64)], threshold: i64, addend: i64) -> PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection(
        "t",
        rows.iter()
            .map(|&(a, c)| Record::new(vec![Value::Int(a), Value::Int(c)]))
            .collect(),
    );
    let filtered = b.filter(
        src,
        FilterUdf::from_expr("keep", Expr::field(0).gt(Expr::lit(threshold))),
    );
    let mapped = b.map(
        filtered,
        MapUdf::from_exprs(
            "shift",
            vec![Expr::field(0).add(Expr::lit(addend)), Expr::field(1)],
        ),
    );
    b.collect(mapped);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Warm-cache execution is byte-identical to cold enumeration.
    #[test]
    fn cache_hit_outputs_are_byte_identical_to_cold_enumeration(
        rows in proptest::collection::vec((-50i64..50, -5i64..5), 1..40),
        threshold in -40i64..40,
        addend in -5i64..5,
    ) {
        // Cold: no cache attached, every optimization enumerates.
        let cold_ctx = test_context();
        let cold_exec = cold_ctx.optimize(declarative_plan(&rows, threshold, addend)).unwrap();
        let cold_job = cold_ctx.execute_plan(&cold_exec).unwrap();

        // Warm: first optimization populates the cache, the second must hit.
        let cache = Arc::new(PlanCache::new(PlanCacheConfig {
            capacity: 8,
            drift_threshold: 1e12,
        }));
        let warm_ctx = test_context().with_plan_cache(cache.clone());
        let first = warm_ctx.optimize(declarative_plan(&rows, threshold, addend)).unwrap();
        let _ = warm_ctx.execute_plan(&first).unwrap();
        let before = cache.stats();
        let second = warm_ctx.optimize(declarative_plan(&rows, threshold, addend)).unwrap();
        let after = cache.stats();
        prop_assert_eq!(after.hits, before.hits + 1);
        let warm_job = warm_ctx.execute_plan(&second).unwrap();

        prop_assert_eq!(encode_outputs(&cold_job), encode_outputs(&warm_job));
        // The hit reused the enumeration verbatim.
        prop_assert_eq!(cold_exec.assignments.clone(), second.assignments.clone());
    }
}

/// Calibration drift past the threshold forces re-enumeration: the metrics
/// counters show the hit→miss flip and the invalidation.
#[test]
fn drift_past_threshold_flips_hit_to_miss_via_metrics() {
    let rows: Vec<(i64, i64)> = (0..30).map(|i| (i, 1)).collect();
    let observe = Arc::new(Observability::new());
    let cache = Arc::new(PlanCache::new(PlanCacheConfig {
        capacity: 8,
        drift_threshold: 0.5,
    }));
    let ctx = test_context()
        .with_observability(observe.clone())
        .with_plan_cache(cache.clone());
    let metrics = observe.metrics();

    // Cold: miss, enumerate, insert.
    ctx.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    assert_eq!(metrics.counter_value("optimizer.plan_cache.misses"), 1);
    assert_eq!(metrics.counter_value("optimizer.plan_cache.hits"), 0);

    // Stable calibration: hit.
    ctx.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    assert_eq!(metrics.counter_value("optimizer.plan_cache.hits"), 1);
    assert_eq!(metrics.counter_value("optimizer.plan_cache.misses"), 1);

    // Drift a cost factor by 100× — far past the 0.5 threshold.
    observe
        .calibration()
        .observe("Map(shift)", "java", 10.0, 1000.0, 100.0, 100.0);

    // Past-threshold drift: the entry is invalidated, the lookup is a
    // miss, and the plan is re-enumerated and re-inserted.
    ctx.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    assert_eq!(metrics.counter_value("optimizer.plan_cache.hits"), 1);
    assert_eq!(metrics.counter_value("optimizer.plan_cache.misses"), 2);
    assert_eq!(
        metrics.counter_value("optimizer.plan_cache.invalidations"),
        1
    );

    // The re-inserted entry pins the drifted factors: stable again → hit.
    ctx.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    assert_eq!(metrics.counter_value("optimizer.plan_cache.hits"), 2);
    assert_eq!(metrics.counter_value("optimizer.plan_cache.misses"), 2);
    assert_eq!(
        metrics.counter_value("optimizer.plan_cache.invalidations"),
        1
    );
}

/// Opaque (closure-identity) fingerprints are confined to their cache
/// scope: two contexts with different scopes never share entries for
/// closure-built plans, while declarative plans share through scope 0.
#[test]
fn opaque_entries_are_scope_isolated_but_declarative_entries_are_shared() {
    let rows: Vec<(i64, i64)> = (0..20).map(|i| (i, 1)).collect();
    let cache = Arc::new(PlanCache::new(PlanCacheConfig {
        capacity: 16,
        drift_threshold: 1e12,
    }));
    let session_a = test_context()
        .with_plan_cache(cache.clone())
        .with_cache_scope(1);
    let session_b = test_context()
        .with_plan_cache(cache.clone())
        .with_cache_scope(2);

    // Closure-built plan: opaque fingerprint. The UDF Arcs are shared so
    // both sessions see the *same* fingerprint — but different scopes.
    let filter = FilterUdf::new("keep", |r: &Record| r.int(0).unwrap() > 3);
    let closure_plan = || {
        let mut b = PlanBuilder::new();
        let src = b.collection(
            "t",
            rows.iter()
                .map(|&(a, c)| Record::new(vec![Value::Int(a), Value::Int(c)]))
                .collect(),
        );
        let f = b.filter(src, filter.clone());
        b.collect(f);
        b.build().unwrap()
    };
    session_a.optimize(closure_plan()).unwrap();
    let stats = cache.stats();
    session_b.optimize(closure_plan()).unwrap();
    let after = cache.stats();
    assert_eq!(after.hits, stats.hits, "opaque entry leaked across scopes");
    assert_eq!(after.misses, stats.misses + 1);

    // Declarative plan: transparent fingerprint, shared across sessions.
    session_a.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    let stats = cache.stats();
    session_b.optimize(declarative_plan(&rows, 3, 1)).unwrap();
    let after = cache.stats();
    assert_eq!(
        after.hits,
        stats.hits + 1,
        "declarative entry did not share"
    );
}
