//! End-to-end application runs spanning crates: the ML, cleaning, and
//! graph applications each execute on multiple platforms and must produce
//! equivalent results — the cross-application face of platform
//! independence.

use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;
use rheem_cleaning::{detect, repair_fd, DenialConstraint, DetectionStrategy};
use rheem_datagen::libsvm::{generate, LibsvmConfig};
use rheem_datagen::tax::{columns, TaxConfig};
use rheem_graph::{ConnectedComponents, PageRank};
use rheem_ml::{KMeansTrainer, SvmTrainer};

fn java() -> RheemContext {
    RheemContext::new().with_platform(Arc::new(JavaPlatform::new()))
}

fn spark() -> RheemContext {
    RheemContext::new().with_platform(Arc::new(
        SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
    ))
}

fn mapreduce() -> RheemContext {
    RheemContext::new().with_platform(Arc::new(
        MapReduceLikePlatform::new(4)
            .with_overheads(OverheadConfig::none())
            .with_spill_dir(std::env::temp_dir().join(format!("rheem_e2e_{}", std::process::id()))),
    ))
}

#[test]
fn svm_model_is_identical_across_all_three_engines() {
    let data = generate(&LibsvmConfig::new(300, 6));
    let trainer = SvmTrainer::new(6).with_iterations(25);
    let (m_java, _) = trainer.train(&java(), data.clone()).unwrap();
    let (m_spark, _) = trainer.train(&spark(), data.clone()).unwrap();
    let (m_mr, _) = trainer.train(&mapreduce(), data.clone()).unwrap();
    for (a, b) in m_java.weights.iter().zip(&m_spark.weights) {
        assert!((a - b).abs() < 1e-9);
    }
    for (a, b) in m_java.weights.iter().zip(&m_mr.weights) {
        // The MapReduce engine round-trips floats through disk with a
        // loss-free codec, so even this must agree to high precision.
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
    assert!(m_java.accuracy(&data).unwrap() > 0.9);
}

#[test]
fn cleaning_detection_and_repair_agree_across_engines() {
    let (data, _) = rheem_datagen::tax::generate(&TaxConfig::new(1_500).with_seed(5));
    let rule =
        DenialConstraint::functional_dependency("fd", columns::ID, columns::ZIP, columns::STATE);
    let (v_java, _) = detect(
        &java(),
        data.clone(),
        &rule,
        DetectionStrategy::OperatorPipeline,
    )
    .unwrap();
    let (v_spark, _) = detect(
        &spark(),
        data.clone(),
        &rule,
        DetectionStrategy::OperatorPipeline,
    )
    .unwrap();
    assert_eq!(v_java, v_spark);
    assert!(!v_java.is_empty());

    // Repair once, re-detect everywhere: zero violations.
    let repaired = repair_fd(&data, &rule).unwrap();
    for ctx in [java(), spark(), mapreduce()] {
        let (v, _) = detect(
            &ctx,
            repaired.clone(),
            &rule,
            DetectionStrategy::OperatorPipeline,
        )
        .unwrap();
        assert!(v.is_empty());
    }
}

#[test]
fn iejoin_detection_runs_on_all_engines() {
    let (data, _) = rheem_datagen::tax::generate(
        &TaxConfig::new(2_000)
            .with_seed(9)
            .with_error_rates(0.0, 0.005),
    );
    let rule =
        DenialConstraint::inequality("ineq", columns::ID, columns::SALARY, columns::TAX_RATE);
    let (v_java, _) = detect(&java(), data.clone(), &rule, DetectionStrategy::IeJoin).unwrap();
    let (v_spark, _) = detect(&spark(), data.clone(), &rule, DetectionStrategy::IeJoin).unwrap();
    let (v_mr, _) = detect(&mapreduce(), data, &rule, DetectionStrategy::IeJoin).unwrap();
    assert_eq!(v_java, v_spark);
    assert_eq!(v_java, v_mr);
    assert!(!v_java.is_empty());
}

#[test]
fn pagerank_ranks_agree_across_engines() {
    let edges = rheem_datagen::graph::preferential_attachment(300, 2, 4);
    let pr = PageRank::default().with_iterations(10);
    let (r_java, _) = pr.run(&java(), edges.clone()).unwrap();
    let (r_spark, _) = pr.run(&spark(), edges).unwrap();
    assert_eq!(r_java.len(), r_spark.len());
    for ((n1, v1), (n2, v2)) in r_java.iter().zip(&r_spark) {
        assert_eq!(n1, n2);
        assert!((v1 - v2).abs() < 1e-9);
    }
}

#[test]
fn connected_components_agree_across_engines() {
    let edges = rheem_datagen::graph::disjoint_cycles(3, 8);
    let cc = ConnectedComponents::default().with_iterations(10);
    let (l_java, _) = cc.run(&java(), edges.clone()).unwrap();
    let (l_spark, _) = cc.run(&spark(), edges).unwrap();
    assert_eq!(l_java, l_spark);
}

#[test]
fn kmeans_through_logical_layer_runs_on_spark() {
    let mut points = Vec::new();
    for (cx, cy) in [(0.0, 0.0), (20.0, 20.0)] {
        for i in 0..30 {
            let d = i as f64 * 0.01;
            points.push(rec![cx + d, cy - d]);
        }
    }
    let trainer = KMeansTrainer::new(2, 2).with_iterations(8);
    let (c_java, _) = trainer.train(&java(), &points).unwrap();
    let (c_spark, _) = trainer.train(&spark(), &points).unwrap();
    assert_eq!(c_java.centroids.len(), 2);
    for ((id1, a), (id2, b)) in c_java.centroids.iter().zip(&c_spark.centroids) {
        assert_eq!(id1, id2);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn optimizer_routes_whole_applications_sensibly() {
    // With all platforms registered, training on tiny data must pick the
    // single-process engine (Figure 2's small-data side).
    let ctx = rheem_platforms::test_context();
    let data = generate(&LibsvmConfig::new(200, 4));
    let trainer = SvmTrainer::new(4).with_iterations(10);
    let (plan, _) = trainer.build_plan(data).unwrap();
    let exec = ctx.optimize(plan).unwrap();
    let loop_node = exec
        .physical
        .nodes()
        .iter()
        .find(|nd| matches!(nd.op, rheem_core::PhysicalOp::Loop { .. }))
        .unwrap();
    assert_eq!(
        exec.assignments[loop_node.id.0],
        "java",
        "tiny iterative job belongs on the single-process engine:\n{}",
        exec.explain()
    );
}
