//! The lattice enumerator (`optimizer::enumerate_v2`) verified against an
//! exhaustive oracle, plus its configuration interplay: forced/excluded
//! platforms, movement-blind enumeration, calibration tables, budget
//! exhaustion (deterministic greedy fallback), and stranded operators
//! surfacing as `NoPlatformFor`.

use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::plan::NodeId;
use rheem_core::{
    assignment_cost, enumerate_exhaustive, EnumerationConfig, EnumerationPath, EnumerationStrategy,
    ExecutionPlan,
};
use rheem_platforms::test_context;

/// A context whose optimizer runs the lattice enumerator, with rewrites
/// off so the enumerated plan shape matches what the oracle sees.
fn v2_context() -> RheemContext {
    let mut ctx = test_context();
    let optimizer = std::mem::take(ctx.optimizer_mut());
    *ctx.optimizer_mut() = optimizer.without_rewrites().with_enumeration_v2();
    ctx
}

/// Same knobs, greedy strategy — the comparison baseline.
fn greedy_context() -> RheemContext {
    let mut ctx = test_context();
    let optimizer = std::mem::take(ctx.optimizer_mut());
    *ctx.optimizer_mut() = optimizer.without_rewrites();
    ctx
}

/// Run the exhaustive oracle with the context's own models (and the same
/// channelized movement pricing `optimize` applies).
fn oracle_cost(ctx: &RheemContext, plan: &rheem_core::PhysicalPlan) -> (Vec<String>, f64) {
    let opt = ctx.optimizer();
    let movement = opt.movement.channelized(ctx.platforms());
    enumerate_exhaustive(
        plan,
        ctx.platforms(),
        &opt.estimator,
        &movement,
        &opt.config.enumeration,
        &opt.calibration,
    )
    .expect("oracle enumerates")
}

fn canonical_assignment_cost(ctx: &RheemContext, exec: &ExecutionPlan) -> f64 {
    let opt = ctx.optimizer();
    let movement = opt.movement.channelized(ctx.platforms());
    assignment_cost(
        &exec.physical,
        &exec.assignments,
        ctx.platforms(),
        &opt.estimator,
        &movement,
        &opt.calibration,
    )
    .expect("assignment prices")
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

// ---------------------------------------------------------- plan generator

/// Ops of the random generator; plans stay ≤ 9 nodes so the oracle's
/// exponential sweep stays cheap (4 platforms ⇒ ≤ 4⁹ assignments).
#[derive(Clone, Debug)]
enum GenOp {
    Source(u8),
    MapInc,
    FilterHalf,
    GroupCount,
    Union(u8),
    Join(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..3).prop_map(GenOp::Source),
        Just(GenOp::MapInc),
        Just(GenOp::FilterHalf),
        Just(GenOp::GroupCount),
        any::<u8>().prop_map(GenOp::Union),
        any::<u8>().prop_map(GenOp::Join),
    ]
}

/// Build a small valid plan: seed source + ops + one sink (≤ 8 nodes for
/// op scripts of length ≤ 6).
fn build_plan(ops: &[GenOp]) -> rheem_core::PhysicalPlan {
    let mut b = PlanBuilder::new();
    let mut stack: Vec<NodeId> =
        vec![b.collection("seed", (0..40i64).map(|i| rec![i % 7, 1i64]).collect())];
    for op in ops {
        let top = *stack.last().expect("non-empty");
        match op {
            GenOp::Source(k) => {
                let n = 10 + (*k as i64) * 8;
                stack.push(b.collection(
                    format!("src{k}"),
                    (0..n).map(|i| rec![i % 5, 1i64]).collect(),
                ));
            }
            GenOp::MapInc => stack.push(b.map(
                top,
                MapUdf::new("inc", |r| {
                    rec![r.int(0).unwrap().wrapping_add(1), r.int(1).unwrap_or(1)]
                }),
            )),
            GenOp::FilterHalf => {
                stack.push(b.filter(top, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0)))
            }
            GenOp::GroupCount => stack.push(b.group_by(
                top,
                KeyUdf::field(0),
                GroupMapUdf::new("count", |k, members| {
                    vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
                }),
            )),
            GenOp::Union(pick) => {
                let other = stack[*pick as usize % stack.len()];
                stack.push(b.union(top, other));
            }
            GenOp::Join(pick) => {
                let other = stack[*pick as usize % stack.len()];
                stack.push(b.hash_join(top, other, KeyUdf::field(0), KeyUdf::field(0)));
            }
        }
    }
    let top = *stack.last().expect("non-empty");
    b.collect(top);
    b.build().expect("generated plan is valid")
}

/// Calibration-table injections: (op-name, platform, cost factor). Names
/// that match nothing in a particular plan simply have no effect.
fn gen_calibration() -> impl Strategy<Value = Vec<(&'static str, &'static str, f64)>> {
    let op = prop_oneof![
        Just("Map(inc)"),
        Just("Filter(even)"),
        Just("HashGroupBy(key=field#0, group=count)"),
        Just("HashJoin(field#0 = field#0)"),
        Just("Union"),
        Just("CollectSink"),
    ];
    let platform = prop_oneof![
        Just("java"),
        Just("sparklike"),
        Just("mapreduce"),
        Just("relational"),
    ];
    proptest::collection::vec((op, platform, 0.25f64..4.0), 0..4)
}

/// EnumerationConfig variations the oracle comparison sweeps over.
fn gen_config() -> impl Strategy<Value = (bool, Option<&'static str>, Vec<&'static str>)> {
    (
        any::<bool>(), // consider_movement_costs
        prop_oneof![Just(None), Just(Some("java")), Just(Some("sparklike"))],
        prop_oneof![
            Just(Vec::new()),
            Just(vec!["mapreduce"]),
            Just(vec!["mapreduce", "relational"]),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole guarantee: over random plans, calibration tables, and
    /// config variations, v2 chooses a plan of exactly the oracle's
    /// optimal cost, and its reported cost is the canonical
    /// assignment-cost of its own assignment (no double counting).
    #[test]
    fn prop_v2_matches_exhaustive_oracle(
        ops in proptest::collection::vec(gen_op(), 0..6),
        calib in gen_calibration(),
        cfg in gen_config(),
    ) {
        let (movement_on, forced, excluded) = cfg;
        // A forced platform that is also excluded is the empty-search
        // error case, covered separately below — drop the force here.
        let forced = forced.filter(|f| !excluded.contains(f));
        let plan = build_plan(&ops);

        let mut ctx = v2_context();
        for (op, platform, factor) in &calib {
            // estimated 1.0 / observed `factor` ⇒ cost_factor == factor.
            ctx.optimizer().calibration.observe(op, platform, 1.0, *factor, 1.0, 1.0);
        }
        {
            let e = &mut ctx.optimizer_mut().config.enumeration;
            e.consider_movement_costs = movement_on;
            e.forced_platform = forced.map(String::from);
            e.excluded_platforms = excluded.iter().map(|s| s.to_string()).collect();
        }

        let exec = ctx.optimize(plan.clone()).expect("v2 optimizes");
        prop_assert_eq!(exec.enumeration.path, EnumerationPath::LatticeV2);
        let (_, oracle) = oracle_cost(&ctx, &plan);
        assert_close(exec.estimated_cost, oracle, "v2 vs oracle");
        if movement_on {
            assert_close(
                canonical_assignment_cost(&ctx, &exec),
                exec.estimated_cost,
                "v2 reported vs canonical",
            );
        }
    }

    /// v2-optimized plans execute to the same bag of records as the
    /// reference interpreter — channel annotations and contracted atoms
    /// change accounting, never results.
    #[test]
    fn prop_v2_plans_execute_correctly(
        ops in proptest::collection::vec(gen_op(), 0..6),
    ) {
        let plan = build_plan(&ops);
        let ctx = v2_context();
        let exec = ctx.optimize(plan.clone()).expect("optimizes");
        let result = ctx.execute_plan(&exec).expect("executes");
        prop_assert_eq!(result.stats.enumeration_path, EnumerationPath::LatticeV2);
        let reference = rheem_core::interpreter::run_plan(
            &plan,
            &rheem_core::ExecutionContext::new(),
        ).expect("reference runs");
        let norm = |outs: std::collections::HashMap<NodeId, Dataset>| {
            let mut bags: Vec<Vec<Record>> = outs
                .into_values()
                .map(|d| { let mut v = d.records().to_vec(); v.sort(); v })
                .collect();
            bags.sort();
            bags
        };
        prop_assert_eq!(norm(result.outputs), norm(reference));
    }
}

// ------------------------------------------------------------ fixed cases

/// A plan mixing a long chain with a diamond and a join — exercises chain
/// contraction, the frontier over open nodes, and channel conversions.
fn mixed_plan() -> rheem_core::PhysicalPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..200i64).map(|i| rec![i % 11, 1i64]).collect());
    let m1 = b.map(
        src,
        MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1, 1i64]),
    );
    let f1 = b.filter(m1, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
    let g = b.group_by(
        f1,
        KeyUdf::field(0),
        GroupMapUdf::new("count", |k, members| {
            vec![Record::new(vec![k.clone(), (members.len() as i64).into()])]
        }),
    );
    let u = b.union(g, f1); // diamond: f1 feeds both g and u
    b.collect(u);
    b.build().unwrap()
}

#[test]
fn v2_matches_oracle_on_fixed_plan() {
    let ctx = v2_context();
    let plan = mixed_plan();
    let exec = ctx.optimize(plan.clone()).unwrap();
    assert_eq!(exec.enumeration.path, EnumerationPath::LatticeV2);
    let (oracle_assign, oracle) = oracle_cost(&ctx, &plan);
    assert_close(exec.estimated_cost, oracle, "fixed plan v2 vs oracle");
    // The oracle's own assignment prices to its reported optimum too.
    let opt = ctx.optimizer();
    let movement = opt.movement.channelized(ctx.platforms());
    let oracle_priced = assignment_cost(
        &plan,
        &oracle_assign,
        ctx.platforms(),
        &opt.estimator,
        &movement,
        &opt.calibration,
    )
    .unwrap();
    assert_close(oracle_priced, oracle, "oracle self-consistency");
}

#[test]
fn v2_contracts_chains_and_records_conversions() {
    let ctx = v2_context();
    let exec = ctx.optimize(mixed_plan()).unwrap();
    // src→inc→even is a maximal linear chain (f1 has two consumers, so the
    // chain stops there).
    assert!(
        exec.enumeration
            .groups
            .iter()
            .any(|g| g.len() >= 3 && g[0] == NodeId(0)),
        "expected the head chain to contract: {:?}",
        exec.enumeration.groups
    );
    // Every cross-platform boundary in the chosen plan is recorded with
    // its conversion route, and the atom boundary carries the landing
    // channel of that route.
    for atom in &exec.atoms {
        for input in &atom.inputs {
            let from = &exec.assignments[input.producer.0];
            if from != &atom.platform {
                let conv = exec
                    .enumeration
                    .conversions
                    .iter()
                    .find(|c| c.producer == input.producer && c.consumer == input.consumer)
                    .unwrap_or_else(|| panic!("missing conversion for {:?}", input));
                assert_eq!(conv.path.last().copied().unwrap_or_default(), input.channel);
            }
        }
    }
}

#[test]
fn budget_exhaustion_degrades_to_greedy_deterministically() {
    let plan = mixed_plan();
    let greedy = greedy_context().optimize(plan.clone()).unwrap();

    let mut ctx = v2_context();
    ctx.optimizer_mut().config.enumeration.max_expansions = 1;
    let fallback = ctx.optimize(plan).unwrap();
    assert_eq!(fallback.enumeration.path, EnumerationPath::GreedyFallback);
    // The fallback IS the greedy plan: same assignments, atoms, and cost.
    assert_eq!(fallback.assignments, greedy.assignments);
    assert_eq!(fallback.atoms.len(), greedy.atoms.len());
    for (a, b) in fallback.atoms.iter().zip(&greedy.atoms) {
        assert_eq!((a.id, &a.platform, &a.nodes), (b.id, &b.platform, &b.nodes));
    }
    assert_eq!(fallback.estimated_cost, greedy.estimated_cost);
    // And a second run under the same budget is identical (determinism).
    let mut ctx2 = v2_context();
    ctx2.optimizer_mut().config.enumeration.max_expansions = 1;
    let again = ctx2.optimize(mixed_plan()).unwrap();
    assert_eq!(again.assignments, fallback.assignments);
    assert_eq!(again.enumeration.path, EnumerationPath::GreedyFallback);
}

#[test]
fn fallback_path_reaches_execution_stats() {
    let mut ctx = v2_context();
    ctx.optimizer_mut().config.enumeration.max_expansions = 1;
    let exec = ctx.optimize(mixed_plan()).unwrap();
    let result = ctx.execute_plan(&exec).unwrap();
    assert_eq!(
        result.stats.enumeration_path,
        EnumerationPath::GreedyFallback
    );
    assert!(
        result
            .stats
            .explain()
            .contains("enumeration: greedy-fallback"),
        "{}",
        result.stats.explain()
    );
}

#[test]
fn excluding_every_platform_is_a_clean_error() {
    for strategy in [EnumerationStrategy::Greedy, EnumerationStrategy::LatticeV2] {
        let mut ctx = greedy_context();
        {
            let e = &mut ctx.optimizer_mut().config.enumeration;
            e.strategy = strategy;
            e.excluded_platforms = ["java", "sparklike", "mapreduce", "relational"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        }
        let err = ctx.optimize(mixed_plan()).unwrap_err();
        assert!(
            matches!(err, RheemError::Optimizer(ref m) if m.contains("excluded")),
            "{strategy:?}: {err}"
        );
    }
}

#[test]
fn forcing_an_excluded_platform_is_a_clean_error() {
    for strategy in [EnumerationStrategy::Greedy, EnumerationStrategy::LatticeV2] {
        let mut ctx = greedy_context();
        {
            let e = &mut ctx.optimizer_mut().config.enumeration;
            e.strategy = strategy;
            e.forced_platform = Some("java".into());
            e.excluded_platforms = vec!["java".into()];
        }
        let err = ctx.optimize(mixed_plan()).unwrap_err();
        assert!(
            matches!(err, RheemError::Optimizer(_)),
            "{strategy:?}: {err}"
        );
    }
}

#[test]
fn stranded_operator_surfaces_no_platform_for() {
    // A loop is unsupported on the relational platform; excluding all
    // others strands it. Both strategies must surface NoPlatformFor — not
    // panic, not silently drop the node.
    let mut body = PlanBuilder::new();
    let li = body.loop_input();
    body.map(li, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
    let body = body.build_fragment().unwrap();
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..10i64).map(|i| rec![i]).collect());
    let l = b.repeat(src, body, LoopCondUdf::fixed_iterations(3), 3);
    b.collect(l);
    let plan = b.build().unwrap();

    for strategy in [EnumerationStrategy::Greedy, EnumerationStrategy::LatticeV2] {
        let mut ctx = greedy_context();
        {
            let e = &mut ctx.optimizer_mut().config.enumeration;
            e.strategy = strategy;
            e.excluded_platforms = ["java", "sparklike", "mapreduce"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        }
        let err = ctx.optimize(plan.clone()).unwrap_err();
        assert!(
            matches!(err, RheemError::NoPlatformFor { .. }),
            "{strategy:?}: {err}"
        );
    }
}

#[test]
fn wide_plan_enumerates_within_default_budget() {
    // 120+ operators: 10 branches of source → 10-op chain, pairwise
    // unioned into one sink. Chain contraction keeps the lattice tiny.
    let mut b = PlanBuilder::new();
    let mut branches = Vec::new();
    for br in 0..10 {
        let mut cur = b.collection(format!("s{br}"), (0..20i64).map(|i| rec![i % 5]).collect());
        for _ in 0..10 {
            cur = b.map(cur, MapUdf::new("inc", |r| rec![r.int(0).unwrap() + 1]));
        }
        branches.push(cur);
    }
    while branches.len() > 1 {
        let a = branches.remove(0);
        let c = branches.remove(0);
        branches.push(b.union(a, c));
    }
    b.collect(branches[0]);
    let plan = b.build().unwrap();
    assert!(plan.len() >= 120, "plan has {} nodes", plan.len());

    let ctx = v2_context();
    let exec = ctx.optimize(plan).unwrap();
    assert_eq!(exec.enumeration.path, EnumerationPath::LatticeV2);
    assert!(
        exec.enumeration.expansions <= ctx.optimizer().config.enumeration.max_expansions,
        "{} expansions",
        exec.enumeration.expansions
    );
    assert!(exec.enumeration.groups.len() >= 10, "chains contracted");
    assert!(exec.estimated_cost.is_finite());
}

#[test]
fn explain_enumeration_renders_groups_and_channels() {
    let ctx = v2_context();
    let exec = ctx.optimize(mixed_plan()).unwrap();
    let view = exec.explain_enumeration();
    assert!(view.contains("enumeration: lattice-v2"), "{view}");
    assert!(view.contains("group 0"), "{view}");
    for conv in &exec.enumeration.conversions {
        assert!(
            view.contains(&format!("channel {} -> {}", conv.producer, conv.consumer)),
            "{view}"
        );
    }
}

#[test]
fn oracle_rejects_oversized_plans() {
    let mut b = PlanBuilder::new();
    let mut cur = b.collection("s", vec![rec![1i64]]);
    for _ in 0..12 {
        cur = b.map(cur, MapUdf::new("id", |r| r.clone()));
    }
    b.collect(cur);
    let plan = b.build().unwrap();
    let ctx = greedy_context();
    let opt = ctx.optimizer();
    let err = enumerate_exhaustive(
        &plan,
        ctx.platforms(),
        &opt.estimator,
        &opt.movement,
        &EnumerationConfig::default(),
        &opt.calibration,
    )
    .unwrap_err();
    assert!(matches!(err, RheemError::Optimizer(_)), "{err}");
}
