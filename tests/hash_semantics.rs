//! Semantics of the vectorized hash engine (`rheem_core::kernels::hash`).
//!
//! Two contracts are fuzzed and stress-tested here. First, the
//! hand-rolled hasher must agree with `Value` equality exactly: equal
//! values hash equal, across every variant and every float edge class
//! (`-0.0` vs `0.0`, distinct NaN payloads, dictionary vs inline
//! strings). Second, the engine-backed kernels must stay byte-identical
//! to their row twins even on *adversarial* keys — whole key sets crafted
//! to land in one radix bucket, so partitioning degenerates and every
//! probe chain piles onto the same table region — at every parallelism
//! setting and under both schedule modes.

use std::sync::Arc;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem_core::data::{Chunk, Value};
use rheem_core::kernels::parallel::KernelParallelism;
use rheem_core::kernels::{self, chunked, hash, parallel};
use rheem_core::udf::FieldReduce;
use rheem_core::{interpreter, ExecutionContext, ScheduleMode};

/// One dirty value: every variant, with the float edge cases the hasher
/// must separate exactly as `Value` equality does.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-4i64..4).prop_map(Value::Int),
        any::<i64>().prop_map(Value::Int),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 * 0.25)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-f64::NAN)),
        Just(Value::Float(-0.0)),
        Just(Value::Float(0.0)),
        Just(Value::Float(f64::INFINITY)),
        any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
        (0i64..3).prop_map(|i| Value::from(format!("s{i}"))),
        any::<u64>().prop_map(|n| Value::from(format!("{:x}", n % 64))),
    ]
}

/// `n` distinct `i64` keys that all hash into radix bucket 0 — the
/// engine's worst case: the partition pass puts *every* key in one
/// bucket, and the other 63 stay empty.
fn bucket0_keys(n: usize) -> Vec<i64> {
    let keys: Vec<i64> = (0i64..)
        .filter(|&k| hash::radix_bucket(hash::hash_i64(k)) == 0)
        .take(n)
        .collect();
    assert_eq!(keys.len(), n, "search space exhausted");
    keys
}

/// An adversarial batch: `rows` records whose keys cycle through
/// `distinct` bucket-0 keys, with an input-position payload so member
/// order and accumulator folds are observable.
fn adversarial_batch(rows: usize, distinct: usize) -> Vec<Record> {
    let keys = bucket0_keys(distinct);
    (0..rows)
        .map(|i| {
            let payload = match i % 5 {
                0 => Value::Float(-0.0),
                1 => Value::Float(f64::NAN),
                2 => Value::Null,
                _ => Value::Int(i as i64),
            };
            Record::new(vec![Value::Int(keys[i % distinct]), payload])
        })
        .collect()
}

fn chunk_of(records: &[Record]) -> Chunk {
    Chunk::from_records(records).expect("rectangular batch")
}

/// Sequential, tiny-morsel, and oversubscribed settings — every
/// comparison must hold at all of them.
fn parallelism_settings() -> Vec<KernelParallelism> {
    vec![
        KernelParallelism::sequential(),
        KernelParallelism::sequential()
            .with_threads(3)
            .with_morsel_size(7)
            .with_min_rows(0),
        KernelParallelism::sequential()
            .with_threads(16)
            .with_morsel_size(1)
            .with_min_rows(0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The fundamental hasher contract: `a == b` implies equal hashes,
    /// for every pair the dirty strategy can produce.
    #[test]
    fn prop_equal_values_hash_equal(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(hash::hash_value(&a), hash::hash_value(&a.clone()));
        if a == b {
            prop_assert_eq!(hash::hash_value(&a), hash::hash_value(&b));
        }
    }

    /// Each typed helper lane agrees with the generic `hash_value` on its
    /// variant — the engine may hash an `i64` lane, a dictionary, or a
    /// `Vec<Value>` for the same logical key and must get the same bits.
    #[test]
    fn prop_typed_lanes_agree_with_hash_value(k in any::<i64>(), bits in any::<u64>(), n in any::<u64>()) {
        let x = f64::from_bits(bits);
        let s = format!("{n:x}");
        prop_assert_eq!(hash::hash_i64(k), hash::hash_value(&Value::Int(k)));
        prop_assert_eq!(hash::hash_f64(x), hash::hash_value(&Value::Float(x)));
        prop_assert_eq!(hash::hash_str(&s), hash::hash_value(&Value::from(s.clone())));
    }
}

/// Float key classes follow `total_cmp`, not `==`: `-0.0`/`0.0` are
/// *different* keys, and NaNs group by bit pattern — equal-payload NaNs
/// together, distinct payloads apart. The mixer is a bijection on the
/// tagged bits, so the distinctions are exact, not probabilistic.
#[test]
fn float_key_classes_match_total_order_equality() {
    assert_ne!(hash::hash_f64(-0.0), hash::hash_f64(0.0));
    assert_eq!(hash::hash_f64(-0.0), hash::hash_f64(-0.0));

    let nan_a = f64::NAN;
    let nan_b = f64::from_bits(f64::NAN.to_bits() ^ 1); // payload-tweaked NaN
    let nan_c = -f64::NAN; // sign-flipped NaN
    assert!(nan_b.is_nan() && nan_c.is_nan());
    assert_eq!(hash::hash_f64(nan_a), hash::hash_f64(f64::NAN));
    assert_ne!(hash::hash_f64(nan_a), hash::hash_f64(nan_b));
    assert_ne!(hash::hash_f64(nan_a), hash::hash_f64(nan_c));

    // And the grouping kernel observes those classes: four float-key
    // classes stay four groups, byte-identical to the row kernel.
    let records: Vec<Record> = [0.0, -0.0, nan_a, nan_b, 0.0, nan_a]
        .iter()
        .enumerate()
        .map(|(i, &f)| Record::new(vec![Value::Float(f), Value::Int(i as i64)]))
        .collect();
    let key = KeyUdf::field(0);
    let grouped = chunked::hash_group(&chunk_of(&records), &key);
    assert_eq!(grouped.len(), 4);
    assert_eq!(grouped, kernels::hash_group(&records, &key));
}

/// A dictionary-encoded string column and inline `Value::Str` keys are
/// the same keys to the engine: the dictionary hashes each distinct
/// string once, and those hashes match `hash_value` on the inline value.
#[test]
fn dict_and_inline_strings_hash_alike() {
    let records: Vec<Record> = (0..48)
        .map(|i| Record::new(vec![Value::from(format!("k{}", i % 5)), Value::Int(i)]))
        .collect();
    for i in 0..5 {
        let s = format!("k{i}");
        assert_eq!(
            hash::hash_str(&s),
            hash::hash_value(&Value::from(s.clone()))
        );
    }
    // Grouping through the dictionary lane equals the row kernel, which
    // compares inline `Value::Str` keys.
    let key = KeyUdf::field(0);
    assert_eq!(
        chunked::hash_group(&chunk_of(&records), &key),
        kernels::hash_group(&records, &key)
    );
}

/// Direct and radix-partitioned index builds induce the same partition
/// of rows: slot numbering may differ, but every row maps to the same
/// canonical first-row, and the distinct count agrees.
#[test]
fn forced_partition_paths_induce_identical_grouping() {
    // Mixed cardinality with collision pressure: 1500 rows, 300 keys.
    let keys: Vec<i64> = (0..1500).map(|i| (i * 7) % 300).collect();
    let hashes: Vec<u64> = keys.iter().map(|&k| hash::hash_i64(k)).collect();
    let eq = |a: u32, b: u32| keys[a as usize] == keys[b as usize];
    let direct = hash::build_index_with(&hashes, eq, false);
    let radix = hash::build_index_with(&hashes, eq, true);
    assert_eq!(direct.n_groups(), radix.n_groups());
    for row in 0..keys.len() {
        assert_eq!(
            direct.first_row[direct.slot_of_row[row] as usize],
            radix.first_row[radix.slot_of_row[row] as usize],
            "row {row} maps to different canonical groups across paths"
        );
    }
}

/// Above the adaptive thresholds (≥ 65536 rows, > 1024 sampled-distinct
/// keys) `build_index` flips to the partitioned path on its own; the
/// grouping kernel must stay byte-identical to the row twin there too.
#[test]
fn auto_radix_path_above_threshold_matches_row_kernel() {
    let records: Vec<Record> = (0..70_000i64)
        .map(|i| Record::new(vec![Value::Int(i % 4099), Value::Int(i)]))
        .collect();
    let key = KeyUdf::field(0);
    let grouped = chunked::hash_group(&chunk_of(&records), &key);
    assert_eq!(grouped.len(), 4099);
    assert_eq!(grouped, kernels::hash_group(&records, &key));
}

/// Collision pileup: hundreds of distinct keys all in radix bucket 0.
/// Grouping, typed reduction, and both joins must remain byte-identical
/// to the row kernels — sequentially and at every morsel setting.
#[test]
fn collision_heavy_kernels_match_row_twins() {
    let records = adversarial_batch(1200, 160);
    let chunk = chunk_of(&records);
    let key = KeyUdf::field(0);

    let row_groups = kernels::hash_group(&records, &key);
    assert_eq!(chunked::hash_group(&chunk, &key), row_groups);

    let reduce = ReduceUdf::from_spec("agg", vec![FieldReduce::First, FieldReduce::SumFloat]);
    let row_reduced = kernels::reduce_by_key(&records, &key, &reduce);
    assert_eq!(chunked::reduce_by_key(&chunk, &key, &reduce), row_reduced);

    // Join against a probe side that hits and misses: half the build keys
    // plus keys from *other* buckets that must not false-match.
    let mut right: Vec<Record> = bucket0_keys(80)
        .into_iter()
        .map(|k| Record::new(vec![Value::Int(k), Value::from("hit")]))
        .collect();
    right.extend((1..40i64).map(|k| Record::new(vec![Value::Int(-k), Value::from("miss")])));
    let rchunk = chunk_of(&right);
    let row_joined = kernels::hash_join(&records, &right, &key, &key);
    assert!(!row_joined.is_empty());
    assert_eq!(
        chunked::hash_join(&chunk, &rchunk, &key, &key).to_records(),
        row_joined
    );
    assert_eq!(
        chunked::sort_merge_join(&chunk, &rchunk, &key, &key).to_records(),
        kernels::sort_merge_join(&records, &right, &key, &key)
    );

    for p in parallelism_settings() {
        assert_eq!(parallel::hash_group(&records, &key, &p), row_groups.clone());
        assert_eq!(
            parallel::reduce_by_key(&records, &key, &reduce, &p),
            row_reduced.clone()
        );
        assert_eq!(
            parallel::hash_join(&records, &right, &key, &key, &p),
            row_joined.clone()
        );
    }
}

/// End to end: an adversarial-keyed plan — group-by feeding a hash join —
/// produces the reference interpreter's records under both schedule
/// modes and every kernel parallelism setting.
#[test]
fn adversarial_keys_end_to_end_under_all_schedules() {
    let facts = adversarial_batch(2000, 120);
    let dims: Vec<Record> = bucket0_keys(120)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Record::new(vec![Value::Int(k), Value::Int(i as i64 * 10)]))
        .collect();

    let build = || {
        let mut b = PlanBuilder::new();
        let f = b.collection("facts", facts.clone());
        let d = b.collection("dims", dims.clone());
        let red = b.reduce_by_key(
            f,
            KeyUdf::field(0),
            ReduceUdf::from_spec("agg", vec![FieldReduce::First, FieldReduce::SumFloat]),
        );
        let j = b.hash_join(red, d, KeyUdf::field(0), KeyUdf::field(0));
        b.collect(j);
        b.build().unwrap()
    };

    let reference: Vec<Vec<Record>> = interpreter::run_plan(&build(), &ExecutionContext::new())
        .unwrap()
        .into_values()
        .map(|d| d.records().to_vec())
        .collect();
    assert_eq!(reference.len(), 1);
    assert!(!reference[0].is_empty());

    for mode in [ScheduleMode::Sequential, ScheduleMode::Parallel] {
        for p in parallelism_settings() {
            let ctx = RheemContext::new()
                .with_platform(Arc::new(JavaPlatform::new()))
                .with_schedule_mode(mode)
                .with_kernel_parallelism(p);
            let result = ctx.execute(build()).unwrap();
            let outputs: Vec<Vec<Record>> = result
                .outputs
                .into_values()
                .map(|d| d.records().to_vec())
                .collect();
            assert_eq!(outputs, reference, "mode {mode:?} diverged");
        }
    }
}
