//! Processing ↔ storage integration (paper §6): plans read and write
//! through the storage abstraction, the WWHow!-style optimizer places
//! datasets, Cartilage plans shape layouts, and hot buffers absorb
//! repeated access — all through the same `StorageSource`/`StorageSink`
//! operators regardless of which store holds the data.

use std::sync::Arc;

use rheem::prelude::*;
use rheem::rec;
use rheem_core::platform::StorageService;
use rheem_storage::{
    AccessPattern, LocalFsStore, MemStore, RelationalStore, SimHdfsConfig, SimHdfsStore,
    StorageRequest, TransformStep, TransformationPlan,
};

fn layer() -> Arc<StorageLayer> {
    Arc::new(
        StorageLayer::new(Arc::new(MemStore::new("mem")))
            .with_store(Arc::new(SimHdfsStore::new(
                "hdfs",
                SimHdfsConfig::default(),
            )))
            .with_store(Arc::new(RelationalStore::new("db")))
            .with_hot_buffer(100_000),
    )
}

fn ctx_with(storage: Arc<StorageLayer>) -> RheemContext {
    RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_platform(Arc::new(
            SparkLikePlatform::new(4).with_overheads(OverheadConfig::none()),
        ))
        .with_storage(storage)
}

#[test]
fn plans_read_and_write_across_stores() {
    let storage = layer();
    let ctx = ctx_with(storage.clone());

    // Seed input on the simulated HDFS.
    let input: Vec<Record> = (0..500i64).map(|i| rec![i, i * 3]).collect();
    storage
        .submit(StorageRequest::Ingest {
            dataset_id: "input".into(),
            data: Dataset::new(input),
            pattern: Some(AccessPattern::scan_heavy(1e8, 10.0)), // → hdfs
        })
        .unwrap();
    assert_eq!(storage.placement("input"), "hdfs");

    // Process it and write the result back; the derived dataset lands on
    // the default store (mem) unless placed explicitly.
    let mut b = PlanBuilder::new();
    let src = b.storage_source("input");
    let f = b.filter(src, FilterUdf::new("even", |r| r.int(0).unwrap() % 2 == 0));
    b.write_storage(f, "derived");
    ctx.execute(b.build().unwrap()).unwrap();

    let derived = StorageService::read(storage.as_ref(), "derived").unwrap();
    assert_eq!(derived.len(), 250);
    // The result is readable by another plan.
    let mut b = PlanBuilder::new();
    let src = b.storage_source("derived");
    let sink = b.count(src);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(
        rheem_core::interpreter::read_count(&result.outputs[&sink]).unwrap(),
        250
    );
}

#[test]
fn migration_is_transparent_to_plans() {
    let storage = layer();
    let ctx = ctx_with(storage.clone());
    let data: Vec<Record> = (0..100i64).map(|i| rec![i]).collect();
    StorageService::write(storage.as_ref(), "d", &Dataset::new(data)).unwrap();

    let run_count = || {
        let mut b = PlanBuilder::new();
        let src = b.storage_source("d");
        let sink = b.count(src);
        let result = ctx.execute(b.build().unwrap()).unwrap();
        rheem_core::interpreter::read_count(&result.outputs[&sink]).unwrap()
    };
    assert_eq!(run_count(), 100);
    storage
        .submit(StorageRequest::Migrate {
            dataset_id: "d".into(),
            to_store: "db".into(),
        })
        .unwrap();
    assert_eq!(storage.placement("d"), "db");
    assert_eq!(run_count(), 100, "same plan, new store, same answer");
}

#[test]
fn cartilage_transformation_feeds_processing() {
    let storage = layer();
    let ctx = ctx_with(storage.clone());

    // Raw CSV lines arrive; a transformation plan parses + filters + sorts
    // them on ingestion, so plans see a clean layout.
    let raw: Vec<Record> = vec![
        rec!["5,charlie"],
        rec!["1,alice"],
        rec!["oops"],
        rec!["3,bob"],
    ];
    StorageService::write(storage.as_ref(), "raw", &Dataset::new(raw)).unwrap();
    storage
        .submit(StorageRequest::Transform {
            source_id: "raw".into(),
            target_id: "people".into(),
            plan: TransformationPlan::named("ingest")
                .then(TransformStep::ParseCsv)
                .then(TransformStep::FilterRows(FilterUdf::new("valid", |r| {
                    r.width() == 2 && r.int(0).is_ok()
                })))
                .then(TransformStep::SortBy {
                    column: 0,
                    descending: false,
                }),
        })
        .unwrap();

    let mut b = PlanBuilder::new();
    let src = b.storage_source("people");
    let sink = b.collect(src);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    let people = &result.outputs[&sink];
    assert_eq!(people.len(), 3);
    assert_eq!(people.records()[0].str(1).unwrap(), "alice");
    assert_eq!(people.records()[2].str(1).unwrap(), "charlie");
}

#[test]
fn repeated_plan_runs_hit_the_hot_buffer() {
    let storage = layer();
    let ctx = ctx_with(storage.clone());
    let data: Vec<Record> = (0..2_000i64).map(|i| rec![i]).collect();
    StorageService::write(storage.as_ref(), "hot", &Dataset::new(data)).unwrap();

    for _ in 0..5 {
        let mut b = PlanBuilder::new();
        let src = b.storage_source("hot");
        b.count(src);
        ctx.execute(b.build().unwrap()).unwrap();
    }
    let stats = storage.hot_stats().unwrap();
    assert!(stats.hits >= 4, "expected buffer hits, got {stats:?}");
}

#[test]
fn local_fs_store_backs_real_plans() {
    let dir = std::env::temp_dir().join(format!("rheem_fs_int_{}", std::process::id()));
    let storage = Arc::new(StorageLayer::new(Arc::new(
        LocalFsStore::new("fs", &dir).unwrap(),
    )));
    let ctx = ctx_with(storage.clone());
    let data: Vec<Record> = (0..50i64).map(|i| rec![i, format!("row-{i}")]).collect();
    StorageService::write(storage.as_ref(), "disk", &Dataset::new(data)).unwrap();

    let mut b = PlanBuilder::new();
    let src = b.storage_source("disk");
    let m = b.map(
        src,
        MapUdf::new("tag", |r| {
            rec![r.int(0).unwrap(), format!("{}!", r.str(1).unwrap())]
        }),
    );
    let sink = b.collect(m);
    let result = ctx.execute(b.build().unwrap()).unwrap();
    assert_eq!(result.outputs[&sink].records()[7].str(1).unwrap(), "row-7!");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_dataset_surfaces_as_clean_error() {
    let storage = layer();
    let ctx = ctx_with(storage);
    let mut b = PlanBuilder::new();
    let src = b.storage_source("nope");
    b.collect(src);
    let err = ctx.execute(b.build().unwrap()).unwrap_err();
    assert!(
        matches!(
            err,
            RheemError::DatasetNotFound(_) | RheemError::Execution { .. }
        ),
        "{err}"
    );
}
