//! The observability layer, end to end: deterministic trace replay across
//! schedule modes, metrics under fault injection, calibration hygiene, and
//! the JSON-lines trace dump.
//!
//! The replay contract: executing the same plan under `Sequential` and
//! `Parallel` scheduling must produce the same *canonical* span tree (wave
//! spans are scheduling artifacts and are skipped by
//! [`rheem_core::canonical_tree`]) and identical deterministic counters —
//! parallelism may interleave callbacks, but never change what happened.

use std::sync::Arc;

use proptest::prelude::*;
use rheem::prelude::*;
use rheem::rec;
use rheem_core::optimizer::enumerate::split_into_atoms;
use rheem_core::{
    canonical_tree, ExecutionPlan, FailureInjector, Observability, RingBufferSink, ScheduleMode,
};
use rheem_platforms::test_context;

/// A shared source fanning out to three hand-pinned branches across three
/// platforms — the shape where Sequential and Parallel wave structures
/// differ the most (one wave per atom vs. one wave for all branches).
fn fanout_exec_plan() -> ExecutionPlan {
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..200i64).map(|i| rec![i % 10, i]).collect());
    let doubled = b.map(
        src,
        MapUdf::new("x2", |r| rec![r.int(0).unwrap(), r.int(1).unwrap() * 2]),
    );
    b.collect(doubled);
    let even = b.filter(src, FilterUdf::new("even", |r| r.int(1).unwrap() % 2 == 0));
    b.collect(even);
    let summed = b.reduce_by_key(
        src,
        KeyUdf::field(0).with_distinct_keys(10.0),
        ReduceUdf::new("sum", |a, x| {
            rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
        }),
    );
    b.collect(summed);
    let physical = b.build().unwrap();
    let assignments: Vec<String> = [
        "java",      // source
        "sparklike", // map branch
        "sparklike",
        "mapreduce", // filter branch
        "mapreduce",
        "java", // reduce branch (merges with the source atom)
        "java",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let atoms = split_into_atoms(&physical, &assignments);
    ExecutionPlan {
        physical: Arc::new(physical),
        assignments,
        atoms,
        estimated_cost: 0.0,
        estimates: vec![],
        enumeration: Default::default(),
    }
}

/// Total wave count plus sorted `(atom_id, wave)` pairs — the wave
/// structure a run reported, which the replay contract requires to be
/// mode-invariant.
type WaveAccounting = (usize, Vec<(usize, usize)>);

fn wave_accounting(result: &rheem_core::executor::JobResult) -> WaveAccounting {
    let mut atoms: Vec<(usize, usize)> = result
        .stats
        .atoms
        .iter()
        .map(|a| (a.atom_id, a.wave))
        .collect();
    atoms.sort_unstable();
    (result.stats.waves, atoms)
}

/// Execute `exec` under `mode` with a fresh observability hub; return the
/// canonical span tree, the deterministic counter snapshot, and the wave
/// accounting.
fn traced_run(
    exec: &ExecutionPlan,
    mode: ScheduleMode,
) -> (String, Vec<(String, u64)>, WaveAccounting) {
    let ring = Arc::new(RingBufferSink::new(4096));
    let observe = Arc::new(Observability::new().with_sink(ring.clone()));
    let ctx = test_context()
        .with_schedule_mode(mode)
        .with_max_parallel_atoms(4)
        .with_observability(observe.clone());
    let result = ctx.execute_plan(exec).unwrap();
    let tree = canonical_tree(&ring.snapshot());
    // Histograms are timing-derived (bucketed wall measurements) and are
    // deliberately excluded from the replay contract; counters are not.
    (
        tree,
        observe.metrics().snapshot().counters,
        wave_accounting(&result),
    )
}

#[test]
fn sequential_and_parallel_runs_trace_the_same_job() {
    let exec = fanout_exec_plan();
    let (seq_tree, seq_counters, seq_waves) = traced_run(&exec, ScheduleMode::Sequential);
    let (par_tree, par_counters, par_waves) = traced_run(&exec, ScheduleMode::Parallel);
    assert_eq!(
        seq_tree, par_tree,
        "canonical span trees must not depend on scheduling"
    );
    assert_eq!(
        seq_counters, par_counters,
        "deterministic counters must not depend on scheduling"
    );
    assert_eq!(
        seq_waves, par_waves,
        "wave accounting must not depend on scheduling"
    );
    // The tree reflects the plan: one job, three atoms (the java source
    // merges with the java reduce branch), kernels under them.
    assert!(seq_tree.contains("job"), "{seq_tree}");
    assert_eq!(seq_tree.matches("atom atom-").count(), 3, "{seq_tree}");
    assert_eq!(seq_tree.matches("kernel n").count(), 7, "{seq_tree}");
    assert!(!seq_tree.contains("wave"), "{seq_tree}");
    // And the counters carry the real totals.
    let get = |name: &str| {
        seq_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("executor.atoms_completed"), 3);
    assert_eq!(get("executor.jobs_completed"), 1);
    assert_eq!(get("executor.atom_retries"), 0);
    assert!(get("executor.records_out") > 0);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[test]
fn injected_failures_are_counted_exactly_attempts_minus_one() {
    let observe = Arc::new(Observability::new());
    let ctx = RheemContext::new()
        .with_platform(Arc::new(JavaPlatform::new()))
        .with_failure_injector(Arc::new(FailureInjector::fail_next("java", 2)))
        .with_max_retries(3)
        .with_observability(observe.clone());
    let mut b = PlanBuilder::new();
    let src = b.collection("s", (0..10i64).map(|i| rec![i]).collect());
    b.collect(src);
    let result = ctx.execute(b.build().unwrap()).unwrap();

    assert_eq!(result.stats.atoms[0].attempts, 3);
    let m = observe.metrics();
    assert_eq!(m.counter_value("executor.atom_retries"), 2);
    assert_eq!(m.counter_value("executor.atom_failures"), 2);
    assert_eq!(m.counter_value("executor.atoms_completed"), 1);
}

#[test]
fn retry_callbacks_fire_in_attempt_order_under_parallelism() {
    use parking_lot::Mutex;
    use rheem_core::ProgressListener;
    use std::collections::HashMap;

    #[derive(Default)]
    struct RetryOrder {
        by_atom: Mutex<HashMap<usize, Vec<usize>>>,
    }
    impl ProgressListener for RetryOrder {
        fn on_atom_retry(&self, atom_id: usize, attempt: usize, _error: &RheemError) {
            self.by_atom
                .lock()
                .entry(atom_id)
                .or_default()
                .push(attempt);
        }
    }

    let order = Arc::new(RetryOrder::default());
    let observe = Arc::new(Observability::new());
    let injector = Arc::new(FailureInjector::none());
    // Four failures spread across the parallel branches' platforms.
    injector.add("sparklike", 2);
    injector.add("mapreduce", 2);
    let ctx = test_context()
        .with_schedule_mode(ScheduleMode::Parallel)
        .with_max_parallel_atoms(4)
        .with_max_retries(3)
        .with_failure_injector(injector)
        .with_progress_listener(order.clone())
        .with_observability(observe.clone());
    ctx.execute_plan(&fanout_exec_plan()).unwrap();

    let by_atom = order.by_atom.lock();
    let total_retries: usize = by_atom.values().map(Vec::len).sum();
    assert_eq!(total_retries, 4, "{by_atom:?}");
    for (atom, attempts) in by_atom.iter() {
        let expected: Vec<usize> = (1..=attempts.len()).collect();
        assert_eq!(
            attempts, &expected,
            "atom {atom} retries must arrive in attempt order"
        );
    }
    assert_eq!(observe.metrics().counter_value("executor.atom_retries"), 4);
}

#[test]
fn failed_attempts_do_not_pollute_the_calibration_table() {
    let run = |injector: Arc<FailureInjector>| {
        let observe = Arc::new(Observability::new());
        let ctx = RheemContext::new()
            .with_platform(Arc::new(JavaPlatform::new()))
            .with_failure_injector(injector)
            .with_max_retries(2)
            .with_observability(observe.clone());
        let mut b = PlanBuilder::new();
        let src = b.collection("s", (0..100i64).map(|i| rec![i % 5, i]).collect());
        let red = b.reduce_by_key(
            src,
            KeyUdf::field(0).with_distinct_keys(5.0),
            ReduceUdf::new("sum", |a, x| {
                rec![a.int(0).unwrap(), a.int(1).unwrap() + x.int(1).unwrap()]
            }),
        );
        b.collect(red);
        // Optimizer-built plan so estimates exist and calibration engages.
        let result = ctx.execute(b.build().unwrap()).unwrap();
        (observe, result.stats.retries)
    };

    let (clean, clean_retries) = run(Arc::new(FailureInjector::none()));
    let (faulty, faulty_retries) = run(Arc::new(FailureInjector::fail_next("java", 2)));
    assert_eq!(clean_retries, 0);
    assert_eq!(faulty_retries, 2);
    // Only the committed (successful) attempt feeds calibration: the same
    // operators were observed the same number of times either way.
    assert_eq!(
        faulty.calibration().total_samples(),
        clean.calibration().total_samples(),
        "failed attempts must not add calibration samples"
    );
    assert!(clean.calibration().total_samples() > 0);
}

// ---------------------------------------------------------------------------
// JSON-lines trace dump
// ---------------------------------------------------------------------------

#[test]
fn json_lines_sink_dumps_one_span_per_line() {
    let path = std::env::temp_dir().join(format!("rheem_trace_{}.jsonl", std::process::id()));
    let sink = Arc::new(rheem_core::JsonLinesSink::to_file(&path).unwrap());
    let observe = Arc::new(Observability::new().with_sink(sink.clone()));
    let ctx = test_context().with_observability(observe);
    ctx.execute_plan(&fanout_exec_plan()).unwrap();
    sink.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    // 1 job + 2 or 3 waves + 3 atoms + 7 kernels.
    assert!(lines.len() >= 13, "{}", text);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\":"), "{line}");
        assert!(line.contains("\"id\":"), "{line}");
    }
    assert!(text.contains("\"kind\":\"job\""));
    assert!(text.contains("\"kind\":\"kernel\""));
}

// ---------------------------------------------------------------------------
// Storage hot-buffer metrics share the same registry
// ---------------------------------------------------------------------------

#[test]
fn hot_buffer_counters_land_in_the_shared_registry() {
    use rheem_core::platform::StorageService;
    use rheem_storage::MemStore;

    let observe = Arc::new(Observability::new());
    let layer = Arc::new(
        StorageLayer::new(Arc::new(MemStore::new("mem")))
            .with_observed_hot_buffer(10_000, observe.metrics()),
    );
    layer
        .write("d", &Dataset::new((0..50i64).map(|i| rec![i]).collect()))
        .unwrap();
    for _ in 0..3 {
        StorageService::read(layer.as_ref(), "d").unwrap();
    }
    let m = observe.metrics();
    assert_eq!(m.counter_value("storage.hot.misses"), 1);
    assert_eq!(m.counter_value("storage.hot.hits"), 2);
    // And the rendered registry carries them alongside executor metrics.
    assert!(m.render().contains("counter storage.hot.hits 2"));
}

// ---------------------------------------------------------------------------
// Property-based replay over random multi-platform plans
// ---------------------------------------------------------------------------

/// Unary pipeline steps (a subset of the platform-independence fuzzer's,
/// restricted to operators whose output is deterministic as a bag and
/// whose record counts don't depend on partitioning).
#[derive(Clone, Debug)]
enum Step {
    MapAdd(i64),
    FilterMod(i64),
    Distinct,
    ReduceSum,
    UnionSelf,
}

fn apply_step(b: &mut PlanBuilder, input: rheem_core::NodeId, step: &Step) -> rheem_core::NodeId {
    match step {
        Step::MapAdd(c) => {
            let c = *c;
            b.map(
                input,
                MapUdf::new("add", move |r| {
                    rec![r.int(0).unwrap().wrapping_add(c), r.int(1).unwrap_or(0)]
                }),
            )
        }
        Step::FilterMod(m) => {
            let m = (*m).max(1);
            b.filter(
                input,
                FilterUdf::new("mod", move |r| r.int(0).unwrap().rem_euclid(m) != 0),
            )
        }
        Step::Distinct => b.distinct(input),
        Step::ReduceSum => b.reduce_by_key(
            input,
            KeyUdf::new("mod5", |r| (r.int(0).unwrap().rem_euclid(5)).into()),
            ReduceUdf::new("sum", |a, x| {
                rec![
                    a.int(0).unwrap().min(x.int(0).unwrap()),
                    a.int(1).unwrap_or(0).wrapping_add(x.int(1).unwrap_or(0))
                ]
            }),
        ),
        Step::UnionSelf => b.union(input, input),
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-100i64..100).prop_map(Step::MapAdd),
        (1i64..9).prop_map(Step::FilterMod),
        Just(Step::Distinct),
        Just(Step::ReduceSum),
        Just(Step::UnionSelf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// For random multi-platform plans, the optimizer picks the same plan
    /// in both contexts (fresh calibration each) and the two schedule
    /// modes replay to the same canonical span tree and counters.
    #[test]
    fn prop_replay_is_schedule_independent(
        seed in 0u64..500,
        len in 1usize..300,
        branches in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..3), 1..4),
    ) {
        let mut b = PlanBuilder::new();
        let data: Vec<Record> = (0..len as i64)
            .map(|i| rec![(i.wrapping_mul(seed as i64 + 7)).rem_euclid(83), 1i64])
            .collect();
        let src = b.collection("fuzz", data);
        for steps in &branches {
            let mut node = src;
            for step in steps {
                node = apply_step(&mut b, node, step);
            }
            b.collect(node);
        }
        let physical = b.build().unwrap();

        let run = |mode: ScheduleMode| {
            let ring = Arc::new(RingBufferSink::new(8192));
            let observe = Arc::new(Observability::new().with_sink(ring.clone()));
            let ctx = test_context()
                .with_schedule_mode(mode)
                .with_max_parallel_atoms(4)
                .with_observability(observe.clone());
            let exec = ctx.optimize(physical.clone()).unwrap();
            let result = ctx.execute_plan(&exec).unwrap();
            (
                exec.assignments.clone(),
                canonical_tree(&ring.snapshot()),
                observe.metrics().snapshot().counters,
                wave_accounting(&result),
            )
        };
        let (seq_assign, seq_tree, seq_counters, seq_waves) = run(ScheduleMode::Sequential);
        let (par_assign, par_tree, par_counters, par_waves) = run(ScheduleMode::Parallel);
        prop_assert_eq!(seq_assign, par_assign);
        prop_assert_eq!(seq_tree, par_tree);
        prop_assert_eq!(seq_counters, par_counters);
        prop_assert_eq!(seq_waves, par_waves);
    }
}
